//! The transport-agnostic relocation state machine.
//!
//! [`RelocationMachine`] is the extracted heart of the paper's Section 4
//! protocol: virtual counterparts, reactive relocation, junction fetch,
//! in-order replay merge and garbage collection — previously an ad-hoc trio
//! of `BTreeMap`s inside the mobility-aware broker.  The machine owns all
//! per-stream relocation state, appends every durable event to its
//! [`HandoffLog`] *before* mutating memory, and communicates with the
//! outside world exclusively through returned [`Effect`]s, so it runs
//! unchanged under the deterministic simulator, a threaded runtime, or a
//! unit test driving it directly.
//!
//! # Stream life cycle
//!
//! Every `(client, filter)` stream moves through four phases:
//!
//! ```text
//!             detach                    ReSubscribe (elsewhere)
//!   ┌───────┐ (counterpart buffers) ┌─────────┐  Relocate/Fetch   ┌────────────────┐
//!   │ Local │──────────────────────▶│  Local  │ ────────────────▶ │ AwaitingReplay │
//!   └───────┘                       │ +buffer │   (route noted)   └───────┬────────┘
//!       ▲                           └─────────┘                           │ Replay
//!       │                                                                 ▼
//!       │          Replay merged / timeout flush                   ┌─────────┐
//!       └────────────────◀──────── [Flushed] ◀─────────────────────│ Holding │
//!            (resources GC'd)                                      └─────────┘
//! ```
//!
//! * **Local** — the stream is served normally; at the *old* border broker a
//!   disconnected stream stays Local with its virtual counterpart buffering
//!   in place of the client.
//! * **Holding** — the *new* border broker created a holding buffer on
//!   re-subscription: fresh deliveries are held back until the replay has
//!   been merged (or the relocation timeout fires).
//! * **AwaitingReplay** — a broker recorded the route a replay will travel
//!   back over (the junction and every broker a `Relocate`/`Fetch` passed).
//! * **Flushed** — terminal: the relocation settled (replay merged or
//!   holding flushed by timeout); its resources — including the timeout tag
//!   guarding it — are reclaimed in the same event, so a settled stream
//!   reads as Local again.

use std::collections::{BTreeMap, BTreeSet};

use rebeca_broker::{BrokerCore, ClientId, Delivery, DeliveryBuffer, Envelope, Message, Outgoing};
use rebeca_filter::Filter;
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{NodeId, SimDuration};

use crate::log::{HandoffLog, HoldingSnapshot, StreamSnapshot, WalRecord};

/// Identity of one relocatable subscription stream.
pub type StreamKey = (ClientId, Filter);

/// Observable phase of a stream's relocation (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelocationPhase {
    /// Served normally (possibly buffering into a virtual counterpart).
    Local,
    /// Fresh deliveries held back at the new border broker, replay awaited.
    Holding,
    /// A replay route is recorded; the replay is expected to pass through.
    AwaitingReplay,
    /// The relocation settled; resources are reclaimed immediately, so this
    /// phase is only observable while the settling event is being handled.
    Flushed,
}

/// A side effect requested by the machine, interpreted by the hosting
/// broker adapter (send over a link, arm a timer, bump a metric).
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Send a message to a node.
    Send(NodeId, Message),
    /// Arm a timer that fires back into [`RelocationMachine::on_timeout`]
    /// with the given tag.
    SetTimer(SimDuration, u64),
    /// Increment a metrics counter by one.
    Incr(&'static str),
    /// Add to a metrics counter.
    Add(&'static str, u64),
}

/// Holding-buffer state at the new border broker for one in-flight
/// relocation.
#[derive(Debug, Clone, Default)]
struct HoldingState {
    /// Envelopes that arrived for the relocating subscription since the
    /// re-subscription, in arrival order.
    envelopes: Vec<Envelope>,
    /// The last sequence number the client reported on re-subscription.
    last_seq: u64,
    /// The timer tag guarding this relocation.
    timeout_tag: u64,
}

/// All relocation state of one `(client, filter)` stream at this broker.
#[derive(Debug, Clone, Default)]
struct StreamState {
    /// Virtual counterpart buffer (`Some` once the client detached here).
    counterpart: Option<DeliveryBuffer>,
    /// The node the (disconnected) client was last reachable at.
    client_node: Option<NodeId>,
    /// Sequence watermark at the time the counterpart was opened.
    next_seq: u64,
    /// Lease start: broker time (microseconds) the counterpart was opened
    /// at.  The lease sweep expires counterparts whose client never
    /// returned within the configured counterpart lease.
    opened_at: u64,
    /// Holding buffer (`Some` at the new border broker mid-relocation).
    holding: Option<HoldingState>,
    /// Next hop for replay messages travelling back towards the new border
    /// broker.
    replay_route: Option<NodeId>,
}

impl StreamState {
    fn is_empty(&self) -> bool {
        self.counterpart.is_none() && self.holding.is_none() && self.replay_route.is_none()
    }
}

/// The relocation protocol engine: explicit transitions over per-stream
/// states, write-ahead logging, and effect-based output.
#[derive(Debug, Clone)]
pub struct RelocationMachine {
    streams: BTreeMap<StreamKey, StreamState>,
    /// Timer tags mapping back to the relocation they guard.  Tags are
    /// removed both when the timer fires *and* when the replay settles the
    /// relocation first, so the map stays empty across settled relocations.
    timeout_tags: BTreeMap<u64, StreamKey>,
    next_timeout_tag: u64,
    holding_count: usize,
    /// Routing re-points of committed relocations, kept so checkpoints can
    /// carry them (recovery must re-install them; see
    /// [`WalRecord::RelocationCommit`]).  Deduplicated, so growth is
    /// bounded by distinct `(filter, link)` pairs, not by relocation count.
    repoints: BTreeSet<(Filter, NodeId)>,
    /// Restart generation: timeout tags are numbered from
    /// `generation << 32`, so timers armed by a previous (crashed)
    /// incarnation — which survive in the simulator's event queue and
    /// cannot be cancelled — can never alias a tag of this one.
    generation: u64,
    relocation_timeout: SimDuration,
    /// Monotonic count of counterparts expired by the lease sweep.
    leases_expired: u64,
    /// When set (the default), `Relocate` floods are scoped to broker links
    /// holding a routing entry that covers the relocating filter (see
    /// [`RelocationMachine::set_scoped_flood`]); when cleared, every broker
    /// link is flooded (the paper's unscoped baseline).
    scoped_flood: bool,
    log: HandoffLog,
}

impl RelocationMachine {
    /// Creates a machine with an empty state over the given log.
    pub fn new(relocation_timeout: SimDuration, log: HandoffLog) -> Self {
        Self {
            streams: BTreeMap::new(),
            timeout_tags: BTreeMap::new(),
            next_timeout_tag: 0,
            holding_count: 0,
            repoints: BTreeSet::new(),
            generation: 0,
            relocation_timeout,
            leases_expired: 0,
            scoped_flood: true,
            log,
        }
    }

    /// Enables or disables scoped relocation flooding.
    ///
    /// When enabled (the default), `Relocate` requests are forwarded only
    /// over broker links whose routing table holds an entry **covering** the
    /// relocating filter.  Under every subscription-propagating strategy the
    /// reverse delivery path towards the old border broker always carries
    /// such an entry (the subscription itself, or the covering filter that
    /// suppressed its propagation), so the scoped flood still reaches the
    /// virtual counterpart — it just skips subtrees that never routed the
    /// subscription.  Under [`RoutingStrategyKind::Flooding`] (no
    /// subscription propagation) and whenever no covering link exists, the
    /// machine falls back to the full flood, so disabling this is purely an
    /// instrumentation baseline.
    pub fn set_scoped_flood(&mut self, enabled: bool) {
        self.scoped_flood = enabled;
    }

    /// Reconstructs a machine (and the mobility-relevant parts of the
    /// static broker: disconnected client records, their routing entries and
    /// sequence watermarks) from the write-ahead log, as a restarted broker
    /// does.  Returns the machine plus the timer tags of recovered holdings,
    /// which the host must re-arm with [`RelocationMachine::timeout`]
    /// externally (a restarted node has no live timer context).
    pub fn recover(
        relocation_timeout: SimDuration,
        log: HandoffLog,
        core: &mut BrokerCore,
    ) -> (Self, Vec<u64>) {
        let recovered = log.recover();
        let mut machine = Self::new(relocation_timeout, log);
        // Tags of the previous incarnation (whose timers may still be
        // queued) all live below the new generation's range.
        machine.generation = recovered.generation + 1;
        machine.next_timeout_tag = machine.generation << 32;
        machine.log.note_recovered(recovered.records_read as u64);
        machine.log.append(&WalRecord::Epoch {
            generation: machine.generation,
        });

        for snap in recovered.streams {
            // Reconstruct the disconnected client record and its
            // subscription so parked deliveries keep feeding the
            // counterpart after the restart.
            if snap.client_node != NodeId(usize::MAX) {
                core.handle_attach(snap.client, snap.client_node);
                if let Some(record) = core.client_mut(snap.client) {
                    record.connected = false;
                    if !record.subscriptions.contains(&snap.filter) {
                        record.subscriptions.push(snap.filter.clone());
                    }
                }
                if !core
                    .engine()
                    .table()
                    .contains_entry(&snap.filter, &snap.client_node)
                {
                    core.engine_mut()
                        .table_mut()
                        .insert(snap.filter.clone(), snap.client_node);
                }
            }
            let next_seq = snap
                .next_seq
                .max(snap.buffered.iter().map(|d| d.seq).max().unwrap_or(0) + 1);
            core.sequences_mut()
                .fast_forward(snap.client, &snap.filter, next_seq);

            let mut buffer = DeliveryBuffer::new();
            for delivery in snap.buffered {
                buffer.push(delivery);
            }
            let state = machine
                .streams
                .entry((snap.client, snap.filter))
                .or_default();
            state.counterpart = Some(buffer);
            state.client_node = Some(snap.client_node);
            state.next_seq = snap.next_seq;
            state.opened_at = snap.opened_at;
        }

        // Re-point delivery paths of relocations that committed before the
        // crash, so post-commit traffic keeps flowing to the new location
        // (kept in the machine as well, so later checkpoints keep carrying
        // them).
        for (filter, towards) in recovered.repoints {
            if !core.engine().table().contains_entry(&filter, &towards) {
                core.engine_mut()
                    .table_mut()
                    .insert(filter.clone(), towards);
            }
            machine.repoints.insert((filter, towards));
        }

        let mut tags = Vec::new();
        for holding in recovered.holdings {
            // Reconstruct the attached client and its subscription, so the
            // replay merge (which looks the client up) and fresh deliveries
            // work after the restart.  Held envelopes from before the crash
            // are not persisted (see the crate docs on scope).
            if holding.client_node != NodeId(usize::MAX) {
                core.handle_attach(holding.client, holding.client_node);
                if let Some(record) = core.client_mut(holding.client) {
                    if !record.subscriptions.contains(&holding.filter) {
                        record.subscriptions.push(holding.filter.clone());
                    }
                }
                if !core
                    .engine()
                    .table()
                    .contains_entry(&holding.filter, &holding.client_node)
                {
                    core.engine_mut()
                        .table_mut()
                        .insert(holding.filter.clone(), holding.client_node);
                }
            }
            let tag = machine.next_timeout_tag;
            machine.next_timeout_tag += 1;
            let key = (holding.client, holding.filter);
            machine.timeout_tags.insert(tag, key.clone());
            let state = machine.streams.entry(key).or_default();
            state.holding = Some(HoldingState {
                envelopes: Vec::new(),
                last_seq: holding.last_seq,
                timeout_tag: tag,
            });
            machine.holding_count += 1;
            tags.push(tag);
        }
        (machine, tags)
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The relocation timeout the machine arms for new holdings.
    pub fn timeout(&self) -> SimDuration {
        self.relocation_timeout
    }

    /// The restart generation (0 for a machine that never recovered; each
    /// recovery increments it and numbers timeout tags from
    /// `generation << 32`).
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Read access to the write-ahead log.
    pub fn log(&self) -> &HandoffLog {
        &self.log
    }

    /// Number of streams with an active virtual counterpart.
    pub fn counterpart_count(&self) -> usize {
        self.streams
            .values()
            .filter(|s| s.counterpart.is_some())
            .count()
    }

    /// Total number of deliveries buffered by virtual counterparts.
    pub fn buffered_deliveries(&self) -> usize {
        self.streams
            .values()
            .filter_map(|s| s.counterpart.as_ref())
            .map(DeliveryBuffer::len)
            .sum()
    }

    /// Number of relocations currently holding back fresh deliveries.
    pub fn pending_relocations(&self) -> usize {
        self.holding_count
    }

    /// Monotonic count of counterparts the lease sweep expired.
    pub fn leases_expired(&self) -> u64 {
        self.leases_expired
    }

    /// Number of live relocation-timeout guards.  Stays zero across settled
    /// relocations: the guard of a relocation that completes before its
    /// timeout is reclaimed on replay completion, not leaked.
    pub fn timeout_tag_count(&self) -> usize {
        self.timeout_tags.len()
    }

    /// The current phase of a stream at this broker.
    pub fn phase(&self, client: ClientId, filter: &Filter) -> RelocationPhase {
        match self.streams.get(&(client, filter.clone())) {
            None => RelocationPhase::Local,
            Some(s) if s.holding.is_some() => RelocationPhase::Holding,
            Some(s) if s.replay_route.is_some() => RelocationPhase::AwaitingReplay,
            Some(s) if s.counterpart.is_some() => RelocationPhase::Local,
            Some(_) => RelocationPhase::Flushed,
        }
    }

    // ------------------------------------------------------------------
    // Durable buffering (old border broker side)
    // ------------------------------------------------------------------

    /// Observes a client disconnect: opens a durable virtual counterpart
    /// (leased from `now_micros`) for every subscription the client leaves
    /// behind.
    pub fn on_detach(&mut self, core: &BrokerCore, client: ClientId, now_micros: u64) {
        let Some(record) = core.client(client) else {
            return;
        };
        let node = record.node;
        for filter in record.subscriptions.clone() {
            let key = (client, filter.clone());
            let state = self.streams.entry(key).or_default();
            if state.counterpart.is_none() {
                let next_seq = core.sequences().peek(client, &filter);
                self.log.append(&WalRecord::StreamOpen {
                    client,
                    client_node: node,
                    filter,
                    next_seq,
                    opened_at: now_micros,
                });
                state.counterpart = Some(DeliveryBuffer::new());
                state.client_node = Some(node);
                state.next_seq = next_seq;
                state.opened_at = now_micros;
            }
        }
        self.maybe_checkpoint();
    }

    /// Moves parked deliveries (addressed to disconnected local clients)
    /// into their virtual counterparts, logging each append.
    pub fn absorb_parked(&mut self, core: &mut BrokerCore, now_micros: u64) {
        let parked = core.take_parked();
        if parked.is_empty() {
            return;
        }
        for delivery in parked {
            let key = (delivery.subscriber, delivery.filter.clone());
            let state = self.streams.entry(key).or_default();
            if state.counterpart.is_none() {
                // A subscription that was never observed detaching (e.g.
                // installed while the client was already away): open the
                // stream on first append.
                let node = core
                    .client(delivery.subscriber)
                    .map(|r| r.node)
                    .unwrap_or(NodeId(usize::MAX));
                self.log.append(&WalRecord::StreamOpen {
                    client: delivery.subscriber,
                    client_node: node,
                    filter: delivery.filter.clone(),
                    next_seq: delivery.seq,
                    opened_at: now_micros,
                });
                state.counterpart = Some(DeliveryBuffer::new());
                state.client_node = Some(node);
                state.next_seq = delivery.seq;
                state.opened_at = now_micros;
            }
            self.log.append(&WalRecord::Buffered {
                delivery: delivery.clone(),
            });
            state
                .counterpart
                .as_mut()
                .expect("counterpart opened above")
                .push(delivery);
        }
        self.maybe_checkpoint();
    }

    /// Lease sweep: expires the virtual counterpart of every stream whose
    /// client detached more than `lease_micros` ago and never returned.
    /// The expiry is logged (write-ahead) before the counterpart, the
    /// departed client's record, its routing entry and its sequence state
    /// are garbage collected — the exact resources a committed relocation
    /// would have reclaimed, minus the replay (there is nobody to replay
    /// to).  Returns the effects (metrics) of the sweep.
    pub fn expire_leases(
        &mut self,
        core: &mut BrokerCore,
        now_micros: u64,
        lease_micros: u64,
    ) -> Vec<Effect> {
        if lease_micros == 0 {
            return Vec::new();
        }
        let expired: Vec<StreamKey> = self
            .streams
            .iter()
            .filter(|(_, s)| {
                s.counterpart.is_some() && now_micros.saturating_sub(s.opened_at) >= lease_micros
            })
            .map(|(key, _)| key.clone())
            .collect();
        let mut out = Vec::new();
        for key in expired {
            let (client, filter) = key.clone();
            // A client that is connected again is not expired, whatever the
            // lease says (belt and braces: a live counterpart and a
            // connected record should never coexist).
            if core.client(client).map(|r| r.connected).unwrap_or(false) {
                continue;
            }
            self.log.append(&WalRecord::StreamExpired {
                client,
                filter: filter.clone(),
            });
            let dropped = self
                .streams
                .get_mut(&key)
                .and_then(|s| s.counterpart.take())
                .map(|b| b.len() as u64)
                .unwrap_or(0);
            if let Some(record) = core.client(client).cloned() {
                core.engine_mut().table_mut().remove(&filter, &record.node);
                core.sequences_mut().remove(client, &filter);
                if let Some(rec) = core.client_mut(client) {
                    rec.subscriptions.retain(|f| f != &filter);
                }
                let now_empty = core
                    .client(client)
                    .map(|r| r.subscriptions.is_empty())
                    .unwrap_or(false);
                if now_empty {
                    core.remove_client(client);
                }
            }
            self.leases_expired += 1;
            out.push(Effect::Incr("mobility.lease_expired"));
            out.push(Effect::Add("mobility.lease_dropped_deliveries", dropped));
            self.gc_stream(&key);
        }
        if !out.is_empty() {
            self.maybe_checkpoint();
        }
        out
    }

    /// Post-processes broker output: deliveries that belong to a relocating
    /// (held) subscription are retained instead of sent.
    pub fn intercept_holding(&mut self, out: Outgoing) -> Outgoing {
        if self.holding_count == 0 {
            return out;
        }
        let mut kept = Vec::with_capacity(out.len());
        for (node, message) in out {
            match message {
                Message::Deliver(delivery) => {
                    let key = (delivery.subscriber, delivery.filter.clone());
                    match self.streams.get_mut(&key).and_then(|s| s.holding.as_mut()) {
                        Some(holding) => holding.envelopes.push(delivery.envelope),
                        None => kept.push((node, Message::Deliver(delivery))),
                    }
                }
                other => kept.push((node, other)),
            }
        }
        kept
    }

    // ------------------------------------------------------------------
    // Transitions
    // ------------------------------------------------------------------

    /// Handles the re-subscription of a roaming client at this (new) border
    /// broker: either replays locally (the client returned to the broker
    /// that holds its counterpart) or enters Holding and floods the
    /// relocation request.
    pub fn on_resubscribe(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        filter: Filter,
        last_seq: u64,
        from: NodeId,
    ) -> Vec<Effect> {
        let mut out = Vec::new();

        // Did this broker already serve the subscription before the client
        // disappeared?  Then it is its own "old border broker" and can
        // replay locally without any relocation round trip.
        let was_local_subscription = core
            .client(client)
            .map(|r| r.subscriptions.contains(&filter))
            .unwrap_or(false);

        // The client is (re-)attached locally and its subscription installed
        // so that *new* notifications start flowing towards this broker.
        // The ordinary Subscribe propagation is replaced by the Relocate
        // control message below, so the forwards are dropped.
        core.handle_attach(client, from);
        drop(core.handle_subscribe(client, filter.clone(), from));

        let key = (client, filter.clone());
        let counterpart_here = self
            .streams
            .get(&key)
            .map(|s| s.counterpart.is_some())
            .unwrap_or(false);

        // Case 1: the client reconnected to the very broker that holds its
        // virtual counterpart — replay locally, no relocation needed.
        if was_local_subscription || counterpart_here {
            let buffer = self
                .streams
                .get_mut(&key)
                .and_then(|s| s.counterpart.take())
                .unwrap_or_default();
            self.log.append(&WalRecord::RelocationCommit {
                client,
                filter: filter.clone(),
                towards: from,
            });
            self.repoints.insert((filter.clone(), from));
            self.gc_stream(&key);
            let replay = buffer.replay_after(last_seq);
            let next_seq = replay
                .iter()
                .map(|d| d.seq)
                .max()
                .unwrap_or(last_seq)
                .saturating_add(1);
            core.sequences_mut().fast_forward(client, &filter, next_seq);
            out.push(Effect::Add("mobility.replayed", replay.len() as u64));
            out.extend(deliver_batch(from, replay));
            self.maybe_checkpoint();
            return out;
        }

        // Case 2: genuine relocation — hold fresh notifications, look for
        // the old path.
        self.log.append(&WalRecord::RelocationBegin {
            client,
            client_node: from,
            filter: filter.clone(),
            last_seq,
        });
        let tag = self.next_timeout_tag;
        self.next_timeout_tag += 1;
        self.timeout_tags.insert(tag, key.clone());
        let state = self.streams.entry(key).or_default();
        state.holding = Some(HoldingState {
            envelopes: Vec::new(),
            last_seq,
            timeout_tag: tag,
        });
        state.client_node = Some(from);
        state.replay_route = Some(from);
        self.holding_count += 1;
        out.push(Effect::SetTimer(self.relocation_timeout, tag));

        let links = relocation_flood_links(core, &filter, None, self.scoped_flood);
        let relocate = Message::Relocate {
            client,
            filter,
            last_seq,
            new_broker: core.id(),
        };
        for link in links {
            out.push(Effect::Incr("mobility.relocate_sent"));
            out.push(Effect::Send(link, relocate.clone()));
        }
        self.maybe_checkpoint();
        out
    }

    /// Handles a relocation request travelling through the broker network:
    /// replays directly when this broker holds the counterpart, otherwise
    /// performs the junction test, re-points the delivery path and keeps the
    /// request flooding.
    pub fn on_relocate(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        filter: Filter,
        last_seq: u64,
        new_broker: NodeId,
        from: NodeId,
    ) -> Vec<Effect> {
        let mut out = Vec::new();
        let key = (client, filter.clone());

        // Remember the way back towards the new border broker for the
        // replay.  The latest flood wins: following the `from` pointers of
        // the current relocation always leads back to the new border broker,
        // whereas a route left over from an *earlier, settled* relocation of
        // the same stream may point anywhere (the pre-engine broker kept the
        // first-ever route, which silently misdirected the replay of a
        // client returning to a previously visited broker).
        self.streams.entry(key.clone()).or_default().replay_route = Some(from);

        // Case 1: this broker is the old border broker itself (it holds the
        // virtual counterpart) — it is its own junction: replay directly
        // and garbage collect.
        let counterpart_here = self
            .streams
            .get(&key)
            .map(|s| s.counterpart.is_some())
            .unwrap_or(false);
        if counterpart_here
            || core
                .client(client)
                .map(|r| !r.connected && r.subscriptions.contains(&filter))
                .unwrap_or(false)
        {
            out.extend(self.replay_and_collect(core, client, &filter, last_seq, from));
            return out;
        }

        // Install the subscription for the new path (without ordinary
        // propagation — the Relocate message itself propagates).
        let already_routed_to_new_path = core.engine().table().contains_entry(&filter, &from);
        if !already_routed_to_new_path {
            core.engine_mut().table_mut().insert(filter.clone(), from);
        }

        // Junction test: an identical filter from a *different* link means
        // the old delivery path runs through this broker (Section 4.1: the
        // broker compares the re-issued subscription against its routing
        // table and advertisements).
        let old_links = core
            .engine()
            .table()
            .destinations_with_identical(&filter, Some(&from));
        let old_broker_links: Vec<NodeId> = old_links
            .into_iter()
            .filter(|l| core.broker_links().contains(l))
            .collect();

        if let Some(&old_link) = old_broker_links.first() {
            // This broker looks like the junction: from here on
            // notifications also flow towards the new path (the entry
            // inserted above), and the buffered ones are fetched from the
            // old border broker.  The old entry is *kept*: it may still
            // serve other subscribers with an identical filter behind the
            // old path.
            out.push(Effect::Incr("mobility.junction_detected"));
            out.push(Effect::Incr("mobility.fetch_sent"));
            out.push(Effect::Send(
                old_link,
                Message::Fetch {
                    client,
                    filter: filter.clone(),
                    last_seq,
                    junction: core.id(),
                },
            ));
        }
        // The relocation request keeps propagating like a subscription even
        // past an apparent junction: with several clients holding identical
        // filters, the "identical filter from another link" test can point
        // away from this client's actual old path, so the flooded request
        // is what guarantees that the old border broker (which holds the
        // virtual counterpart) is always reached.  Redundant fetches and
        // replays are idempotent: whoever asks after the counterpart has
        // been collected gets nothing.
        for link in relocation_flood_links(core, &filter, Some(from), self.scoped_flood) {
            out.push(Effect::Incr("mobility.relocate_sent"));
            out.push(Effect::Send(
                link,
                Message::Relocate {
                    client,
                    filter: filter.clone(),
                    last_seq,
                    new_broker,
                },
            ));
        }
        out
    }

    /// Handles a fetch request travelling down the old delivery path towards
    /// the old border broker.
    pub fn on_fetch(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        filter: Filter,
        last_seq: u64,
        junction: NodeId,
        from: NodeId,
    ) -> Vec<Effect> {
        let mut out = Vec::new();
        let key = (client, filter.clone());

        // The replay will travel back the way the fetch came.
        self.streams.entry(key.clone()).or_default().replay_route = Some(from);

        // Old border broker: replay and clean up.
        let counterpart_here = self
            .streams
            .get(&key)
            .map(|s| s.counterpart.is_some())
            .unwrap_or(false);
        if counterpart_here
            || core
                .client(client)
                .map(|r| r.subscriptions.contains(&filter))
                .unwrap_or(false)
        {
            out.extend(self.replay_and_collect(core, client, &filter, last_seq, from));
            return out;
        }

        // Intermediate broker on the old path: point the delivery path
        // towards the junction as well and forward the fetch towards the
        // old border broker.
        let old_links: Vec<NodeId> = core
            .engine()
            .table()
            .destinations_with_identical(&filter, Some(&from))
            .into_iter()
            .filter(|l| core.broker_links().contains(l))
            .collect();
        if let Some(&next) = old_links.first() {
            if !core.engine().table().contains_entry(&filter, &from) {
                core.engine_mut().table_mut().insert(filter.clone(), from);
            }
            out.push(Effect::Incr("mobility.fetch_forwarded"));
            out.push(Effect::Send(
                next,
                Message::Fetch {
                    client,
                    filter,
                    last_seq,
                    junction,
                },
            ));
        } else {
            out.push(Effect::Incr("mobility.fetch_dead_end"));
        }
        out
    }

    /// Replays the virtual counterpart of `(client, filter)` towards
    /// `towards` and garbage collects every resource associated with the
    /// roaming client at this broker.  The commit is logged *before* the
    /// counterpart is dropped from memory.
    fn replay_and_collect(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        filter: &Filter,
        last_seq: u64,
        towards: NodeId,
    ) -> Vec<Effect> {
        let key = (client, filter.clone());
        self.log.append(&WalRecord::RelocationCommit {
            client,
            filter: filter.clone(),
            towards,
        });
        self.repoints.insert((filter.clone(), towards));
        let buffer = self
            .streams
            .get_mut(&key)
            .and_then(|s| s.counterpart.take())
            .unwrap_or_default();
        let deliveries = buffer.replay_after(last_seq);
        // The old border broker may itself sit on the path between
        // producers and the new border broker (or host producers): future
        // notifications matching the subscription must keep flowing towards
        // the new location, so the delivery path is re-pointed here as
        // well.
        if !core.engine().table().contains_entry(filter, &towards) {
            core.engine_mut()
                .table_mut()
                .insert(filter.clone(), towards);
        }
        let mut out = vec![
            Effect::Incr("mobility.replay_sent"),
            Effect::Add("mobility.replayed", deliveries.len() as u64),
        ];

        // Garbage collection: the subscription of the departed client and
        // its sequence state disappear from this broker; the routing entry
        // pointing at the (gone) client node is dropped.
        if let Some(record) = core.client(client).cloned() {
            core.engine_mut().table_mut().remove(filter, &record.node);
            core.sequences_mut().remove(client, filter);
            if let Some(rec) = core.client_mut(client) {
                rec.subscriptions.retain(|f| f != filter);
            }
            let now_empty = core
                .client(client)
                .map(|r| r.subscriptions.is_empty())
                .unwrap_or(false);
            if now_empty {
                core.remove_client(client);
            }
        }
        out.push(Effect::Incr("mobility.gc_old_broker"));
        self.maybe_checkpoint();

        out.push(Effect::Send(
            towards,
            Message::Replay {
                client,
                filter: filter.clone(),
                deliveries,
            },
        ));
        out
    }

    /// Handles a replay travelling back towards the new border broker: the
    /// new border broker merges replayed and held-back notifications in
    /// order and releases them to the client as one batch; intermediate
    /// brokers forward along the recorded route.
    pub fn on_replay(
        &mut self,
        core: &mut BrokerCore,
        client: ClientId,
        filter: Filter,
        deliveries: Vec<Delivery>,
        _from: NodeId,
    ) -> Vec<Effect> {
        let key = (client, filter.clone());

        // New border broker: merge replayed and held-back notifications in
        // order and release them to the client.
        let holding = self.streams.get_mut(&key).and_then(|s| s.holding.take());
        if let Some(holding) = holding {
            self.holding_count -= 1;
            // The relocation settled before its timeout: reclaim the guard
            // so the tag map does not grow with every completed relocation.
            self.timeout_tags.remove(&holding.timeout_tag);
            self.log.append(&WalRecord::ReplayAck {
                client,
                filter: filter.clone(),
            });

            let client_node = match core.client(client) {
                Some(record) => record.node,
                None => {
                    // The client detached again in the meantime; buffer
                    // everything in a fresh counterpart instead.
                    for delivery in deliveries {
                        self.log.append(&WalRecord::Buffered {
                            delivery: delivery.clone(),
                        });
                        let state = self.streams.entry(key.clone()).or_default();
                        state
                            .counterpart
                            .get_or_insert_with(DeliveryBuffer::new)
                            .push(delivery);
                    }
                    self.maybe_checkpoint();
                    return Vec::new();
                }
            };
            let mut out = Vec::new();
            let mut batch = Vec::new();
            let mut max_seq = holding.last_seq;
            // Publications contained in the replay must not be delivered a
            // second time from the holding buffer (under flooding routing
            // the same notification reaches both the old and the new border
            // broker during the hand-over window).
            let mut replayed_publications = std::collections::BTreeSet::new();
            for delivery in deliveries {
                max_seq = max_seq.max(delivery.seq);
                replayed_publications
                    .insert((delivery.envelope.publisher, delivery.envelope.publisher_seq));
                batch.push(delivery);
            }
            out.push(Effect::Add("mobility.replay_delivered", batch.len() as u64));
            // Continue the sequence numbering where the replay ended, then
            // release the held-back fresh notifications in arrival order.
            core.sequences_mut()
                .fast_forward(client, &filter, max_seq.saturating_add(1));
            for envelope in holding.envelopes {
                if replayed_publications.contains(&(envelope.publisher, envelope.publisher_seq)) {
                    out.push(Effect::Incr("mobility.held_duplicate_suppressed"));
                    continue;
                }
                let seq = core.sequences_mut().next(client, &filter);
                out.push(Effect::Incr("mobility.held_delivered"));
                batch.push(Delivery {
                    subscriber: client,
                    filter: filter.clone(),
                    seq,
                    envelope,
                });
            }
            out.extend(deliver_batch(client_node, batch));
            if let Some(state) = self.streams.get_mut(&key) {
                state.replay_route = None;
            }
            self.gc_stream(&key);
            self.maybe_checkpoint();
            return out;
        }

        // Intermediate broker: forward along the recorded route.
        let route = self
            .streams
            .get_mut(&key)
            .and_then(|s| s.replay_route.take());
        if let Some(next) = route {
            self.gc_stream(&key);
            vec![
                Effect::Incr("mobility.replay_forwarded"),
                Effect::Send(
                    next,
                    Message::Replay {
                        client,
                        filter,
                        deliveries,
                    },
                ),
            ]
        } else {
            vec![Effect::Incr("mobility.replay_dropped")]
        }
    }

    /// Relocation timeout: if the replay never arrived, flush the holding
    /// buffer so the client at least receives the fresh notifications.
    pub fn on_timeout(&mut self, core: &mut BrokerCore, tag: u64) -> Vec<Effect> {
        let Some(key) = self.timeout_tags.remove(&tag) else {
            return Vec::new();
        };
        let holding = self.streams.get_mut(&key).and_then(|s| s.holding.take());
        let Some(holding) = holding else {
            self.gc_stream(&key);
            return Vec::new(); // replay already arrived
        };
        self.holding_count -= 1;
        let (client, filter) = key.clone();
        self.log.append(&WalRecord::ReplayAck {
            client,
            filter: filter.clone(),
        });
        let Some(record) = core.client(client) else {
            self.gc_stream(&key);
            self.maybe_checkpoint();
            return Vec::new();
        };
        let client_node = record.node;
        let mut out = vec![Effect::Incr("mobility.relocation_timeout")];
        core.sequences_mut()
            .fast_forward(client, &filter, holding.last_seq.saturating_add(1));
        let mut batch = Vec::new();
        for envelope in holding.envelopes {
            let seq = core.sequences_mut().next(client, &filter);
            batch.push(Delivery {
                subscriber: client,
                filter: filter.clone(),
                seq,
                envelope,
            });
        }
        out.extend(deliver_batch(client_node, batch));
        if let Some(state) = self.streams.get_mut(&key) {
            state.replay_route = None;
        }
        self.gc_stream(&key);
        self.maybe_checkpoint();
        out
    }

    // ------------------------------------------------------------------
    // Housekeeping
    // ------------------------------------------------------------------

    /// Drops a stream entry whose relocation state is fully reclaimed
    /// (the Flushed → Local collapse of the state diagram).
    fn gc_stream(&mut self, key: &StreamKey) {
        if self
            .streams
            .get(key)
            .map(StreamState::is_empty)
            .unwrap_or(false)
        {
            self.streams.remove(key);
        }
    }

    /// Durable snapshot of the machine (what a checkpoint writes).
    pub fn snapshot(&self) -> (Vec<StreamSnapshot>, Vec<HoldingSnapshot>) {
        let mut streams = Vec::new();
        let mut holdings = Vec::new();
        for ((client, filter), state) in &self.streams {
            if let Some(buffer) = &state.counterpart {
                streams.push(StreamSnapshot {
                    client: *client,
                    client_node: state.client_node.unwrap_or(NodeId(usize::MAX)),
                    filter: filter.clone(),
                    next_seq: state.next_seq,
                    opened_at: state.opened_at,
                    buffered: buffer.replay_after(0),
                });
            }
            if let Some(holding) = &state.holding {
                holdings.push(HoldingSnapshot {
                    client: *client,
                    client_node: state.client_node.unwrap_or(NodeId(usize::MAX)),
                    filter: filter.clone(),
                    last_seq: holding.last_seq,
                });
            }
        }
        (streams, holdings)
    }

    fn maybe_checkpoint(&mut self) {
        if self.log.wants_checkpoint() {
            let (streams, holdings) = self.snapshot();
            let repoints: Vec<(Filter, NodeId)> = self.repoints.iter().cloned().collect();
            self.log
                .compact(streams, holdings, repoints, self.generation);
        }
    }
}

/// The broker links a `Relocate` request is forwarded over.
///
/// Scoped mode keeps only the links whose routing table holds an entry
/// covering the relocating filter: under every subscription-propagating
/// strategy the path back towards the old border broker always carries such
/// an entry (the original subscription, or the covering filter whose
/// propagation suppressed it), so the flood still reaches the virtual
/// counterpart while skipping subtrees that never routed the subscription.
/// Falls back to the full flood under [`RoutingStrategyKind::Flooding`]
/// (no subscription propagation, so covering entries prove nothing) and
/// whenever no covering broker link exists.
fn relocation_flood_links(
    core: &BrokerCore,
    filter: &Filter,
    except: Option<NodeId>,
    scoped: bool,
) -> Vec<NodeId> {
    let full = match except {
        Some(from) => core.broker_links_except(from),
        None => core.broker_links().to_vec(),
    };
    if !scoped || core.engine().kind() == RoutingStrategyKind::Flooding {
        return full;
    }
    let covering = core
        .engine()
        .table()
        .destinations_covering(filter, except.as_ref());
    let scoped_links: Vec<NodeId> = full
        .iter()
        .copied()
        .filter(|l| covering.contains(l))
        .collect();
    if scoped_links.is_empty() {
        full
    } else {
        scoped_links
    }
}

/// Packages replay/flush deliveries for the client link: one
/// [`Message::DeliverBatch`] when there is more than one delivery (so
/// replays are observed on the wire as a single batch message instead of N
/// per-notification sends), a plain [`Message::Deliver`] for a single one.
fn deliver_batch(to: NodeId, mut batch: Vec<Delivery>) -> Vec<Effect> {
    match batch.len() {
        0 => Vec::new(),
        1 => vec![Effect::Send(
            to,
            Message::Deliver(batch.pop().expect("one delivery")),
        )],
        _ => vec![Effect::Send(to, Message::DeliverBatch(batch))],
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_broker::{BrokerRole, Envelope};
    use rebeca_filter::{Constraint, Notification};
    use rebeca_routing::RoutingStrategyKind;

    fn filter() -> Filter {
        Filter::new().with("service", Constraint::Eq("parking".into()))
    }

    fn notification(i: i64) -> Notification {
        Notification::builder()
            .attr("service", "parking")
            .attr("spot", i)
            .build()
    }

    fn core() -> BrokerCore {
        BrokerCore::new(
            NodeId(0),
            BrokerRole::Border,
            vec![NodeId(10), NodeId(11)],
            RoutingStrategyKind::Covering,
        )
    }

    fn machine() -> RelocationMachine {
        RelocationMachine::new(SimDuration::from_secs(10), HandoffLog::in_memory())
    }

    fn sends(effects: &[Effect]) -> Vec<(NodeId, Message)> {
        effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send(to, m) => Some((*to, m.clone())),
                _ => None,
            })
            .collect()
    }

    /// Publishes `n` matching notifications through the core (so parked
    /// deliveries accumulate for disconnected subscribers).
    fn publish(core: &mut BrokerCore, n: u64) {
        core.handle_attach(ClientId::new(9), NodeId(101));
        for i in 0..n {
            core.handle_publish(ClientId::new(9), notification(i as i64), NodeId(101));
        }
    }

    #[test]
    fn detach_then_parked_deliveries_build_a_durable_counterpart() {
        let mut core = core();
        let mut m = machine();
        core.handle_attach(ClientId::new(1), NodeId(100));
        core.handle_subscribe(ClientId::new(1), filter(), NodeId(100));
        core.handle_detach(ClientId::new(1));
        m.on_detach(&core, ClientId::new(1), 0);
        assert_eq!(m.counterpart_count(), 1);
        assert_eq!(m.phase(ClientId::new(1), &filter()), RelocationPhase::Local);

        publish(&mut core, 3);
        m.absorb_parked(&mut core, 0);
        assert_eq!(m.buffered_deliveries(), 3);

        // The WAL alone reconstructs the same counterpart.
        let recovered = m.log().recover();
        assert_eq!(recovered.streams.len(), 1);
        assert_eq!(recovered.streams[0].buffered.len(), 3);
        assert_eq!(recovered.streams[0].client_node, NodeId(100));
    }

    #[test]
    fn resubscribe_enters_holding_and_floods_relocate() {
        let mut core = core();
        let mut m = machine();
        let effects = m.on_resubscribe(&mut core, ClientId::new(1), filter(), 5, NodeId(100));
        assert_eq!(
            m.phase(ClientId::new(1), &filter()),
            RelocationPhase::Holding
        );
        assert_eq!(m.pending_relocations(), 1);
        assert_eq!(m.timeout_tag_count(), 1);
        let sent = sends(&effects);
        assert_eq!(sent.len(), 2, "one Relocate per broker link");
        assert!(sent
            .iter()
            .all(|(_, msg)| matches!(msg, Message::Relocate { last_seq: 5, .. })));
        assert!(effects.iter().any(|e| matches!(e, Effect::SetTimer(_, _))));
    }

    #[test]
    fn replay_merge_settles_holding_and_reclaims_the_timeout_tag() {
        let mut core = core();
        let mut m = machine();
        m.on_resubscribe(&mut core, ClientId::new(1), filter(), 0, NodeId(100));
        assert_eq!(m.timeout_tag_count(), 1);

        let deliveries: Vec<Delivery> = (1..=3)
            .map(|seq| Delivery {
                subscriber: ClientId::new(1),
                filter: filter(),
                seq,
                envelope: Envelope::new(ClientId::new(9), seq, notification(seq as i64)),
            })
            .collect();
        let effects = m.on_replay(
            &mut core,
            ClientId::new(1),
            filter(),
            deliveries,
            NodeId(10),
        );
        // Settled: no pending relocation, and crucially no leaked guard.
        assert_eq!(m.pending_relocations(), 0);
        assert_eq!(m.timeout_tag_count(), 0, "tag must be reclaimed on merge");
        assert_eq!(m.phase(ClientId::new(1), &filter()), RelocationPhase::Local);
        // The replay reaches the client as one batch message.
        let sent = sends(&effects);
        assert_eq!(sent.len(), 1);
        assert!(
            matches!(&sent[0].1, Message::DeliverBatch(ds) if ds.len() == 3),
            "replay must travel as a batch, got {:?}",
            sent[0].1
        );
    }

    #[test]
    fn timeout_flushes_holding_and_late_replay_is_dropped() {
        let mut core = core();
        let mut m = machine();
        let effects = m.on_resubscribe(&mut core, ClientId::new(1), filter(), 0, NodeId(100));
        let tag = effects
            .iter()
            .find_map(|e| match e {
                Effect::SetTimer(_, tag) => Some(*tag),
                _ => None,
            })
            .expect("timer armed");
        let held = Envelope::new(ClientId::new(9), 1, notification(1));
        let kept = m.intercept_holding(vec![(
            NodeId(100),
            Message::Deliver(Delivery {
                subscriber: ClientId::new(1),
                filter: filter(),
                seq: 1,
                envelope: held,
            }),
        )]);
        assert!(kept.is_empty(), "held deliveries are retained");

        let effects = m.on_timeout(&mut core, tag);
        assert_eq!(m.pending_relocations(), 0);
        assert_eq!(m.timeout_tag_count(), 0);
        let sent = sends(&effects);
        assert_eq!(sent.len(), 1, "the held envelope is flushed to the client");
        // A replay arriving after the flush is dropped, not re-held.
        let effects = m.on_replay(
            &mut core,
            ClientId::new(1),
            filter(),
            Vec::new(),
            NodeId(10),
        );
        assert!(sends(&effects).is_empty());
        assert!(effects.contains(&Effect::Incr("mobility.replay_dropped")));
    }

    #[test]
    fn recover_rebuilds_counterparts_and_core_state() {
        let backend = crate::log::MemoryBackend::new();
        let mut core1 = core();
        let mut m = RelocationMachine::new(
            SimDuration::from_secs(10),
            HandoffLog::with_backend(Box::new(backend.clone())),
        );
        core1.handle_attach(ClientId::new(1), NodeId(100));
        core1.handle_subscribe(ClientId::new(1), filter(), NodeId(100));
        core1.handle_detach(ClientId::new(1));
        m.on_detach(&core1, ClientId::new(1), 0);
        publish(&mut core1, 4);
        m.absorb_parked(&mut core1, 0);

        // "Crash": fresh core + machine recovered from the surviving WAL.
        let mut core2 = core();
        let (recovered, tags) = RelocationMachine::recover(
            SimDuration::from_secs(10),
            HandoffLog::with_backend(Box::new(backend)),
            &mut core2,
        );
        assert!(tags.is_empty(), "no holdings were open");
        assert_eq!(recovered.counterpart_count(), 1);
        assert_eq!(recovered.buffered_deliveries(), 4);
        let record = core2
            .client(ClientId::new(1))
            .expect("client reconstructed");
        assert!(!record.connected);
        assert_eq!(record.node, NodeId(100));
        assert!(record.subscriptions.contains(&filter()));
        // The sequence watermark continues where the crashed broker left.
        assert_eq!(core2.sequences().peek(ClientId::new(1), &filter()), 5);
    }

    #[test]
    fn checkpoints_carry_commit_repoints_and_recovery_bumps_the_generation() {
        let backend = crate::log::MemoryBackend::new();
        let mut core1 = core();
        let mut m = RelocationMachine::new(
            SimDuration::from_secs(10),
            HandoffLog::with_backend(Box::new(backend.clone())).checkpoint_every(2),
        );
        // A full relocation commits at this (old border) broker and
        // re-points the delivery path towards link 10.
        core1.handle_attach(ClientId::new(1), NodeId(100));
        core1.handle_subscribe(ClientId::new(1), filter(), NodeId(100));
        core1.handle_detach(ClientId::new(1));
        m.on_detach(&core1, ClientId::new(1), 0);
        m.on_relocate(
            &mut core1,
            ClientId::new(1),
            filter(),
            0,
            NodeId(10),
            NodeId(10),
        );
        // Enough later activity (a second detaching client) to trigger a
        // compaction checkpoint *after* the commit record.
        core1.handle_attach(ClientId::new(2), NodeId(102));
        core1.handle_subscribe(ClientId::new(2), filter(), NodeId(102));
        core1.handle_detach(ClientId::new(2));
        m.on_detach(&core1, ClientId::new(2), 0);
        publish(&mut core1, 3);
        m.absorb_parked(&mut core1, 0);
        let recovered_raw = m.log().recover();
        assert!(
            recovered_raw.records_read < 5,
            "compaction must have collapsed the history (read {} records)",
            recovered_raw.records_read
        );
        assert!(
            recovered_raw.repoints.contains(&(filter(), NodeId(10))),
            "the checkpoint must carry the commit re-point, got {:?}",
            recovered_raw.repoints
        );

        // First restart: the re-point is re-installed and the generation
        // moves past the crashed incarnation's tag range.
        let mut core2 = core();
        let (m2, _) = RelocationMachine::recover(
            SimDuration::from_secs(10),
            HandoffLog::with_backend(Box::new(backend.clone())).checkpoint_every(2),
            &mut core2,
        );
        assert!(core2
            .engine()
            .table()
            .contains_entry(&filter(), &NodeId(10)));
        assert_eq!(m2.generation(), 1);

        // Second restart from the same log: strictly newer generation, so
        // tags can never alias across incarnations.
        let mut core3 = core();
        let (m3, _) = RelocationMachine::recover(
            SimDuration::from_secs(10),
            HandoffLog::with_backend(Box::new(backend)).checkpoint_every(2),
            &mut core3,
        );
        assert_eq!(m3.generation(), 2);
        let effects = {
            let mut m3 = m3;
            m3.on_resubscribe(&mut core3, ClientId::new(9), filter(), 0, NodeId(100))
        };
        let tag = effects
            .iter()
            .find_map(|e| match e {
                Effect::SetTimer(_, tag) => Some(*tag),
                _ => None,
            })
            .expect("timer armed");
        assert_eq!(tag >> 32, 2, "tags are namespaced by generation");
    }

    #[test]
    fn lease_sweep_expires_stale_counterparts_and_reclaims_core_state() {
        let mut core = core();
        let mut m = machine();
        core.handle_attach(ClientId::new(1), NodeId(100));
        core.handle_subscribe(ClientId::new(1), filter(), NodeId(100));
        core.handle_detach(ClientId::new(1));
        m.on_detach(&core, ClientId::new(1), 1_000_000);
        publish(&mut core, 3);
        m.absorb_parked(&mut core, 1_500_000);
        assert_eq!(m.counterpart_count(), 1);

        // Within the lease: nothing happens.
        assert!(m.expire_leases(&mut core, 5_000_000, 10_000_000).is_empty());
        assert_eq!(m.counterpart_count(), 1);
        // Lease of zero disables the sweep entirely.
        assert!(m.expire_leases(&mut core, u64::MAX, 0).is_empty());

        // Past the lease: the counterpart, the client record, its routing
        // entry and its sequence state all go away, write-ahead logged.
        let effects = m.expire_leases(&mut core, 12_000_000, 10_000_000);
        assert!(effects.contains(&Effect::Incr("mobility.lease_expired")));
        assert!(effects.contains(&Effect::Add("mobility.lease_dropped_deliveries", 3)));
        assert_eq!(m.counterpart_count(), 0);
        assert_eq!(m.leases_expired(), 1);
        assert!(core.client(ClientId::new(1)).is_none());
        assert!(!core
            .engine()
            .table()
            .contains_entry(&filter(), &NodeId(100)));

        // The WAL folds to an empty stream set: a restart after the sweep
        // does not resurrect the expired counterpart.
        let recovered = m.log().recover();
        assert!(recovered.streams.is_empty());

        // Idempotent: a second sweep finds nothing.
        assert!(m
            .expire_leases(&mut core, 13_000_000, 10_000_000)
            .is_empty());
    }

    #[test]
    fn checkpoint_compaction_keeps_recovery_equivalent() {
        let backend = crate::log::MemoryBackend::new();
        let mut core1 = core();
        let mut m = RelocationMachine::new(
            SimDuration::from_secs(10),
            HandoffLog::with_backend(Box::new(backend.clone())).checkpoint_every(4),
        );
        core1.handle_attach(ClientId::new(1), NodeId(100));
        core1.handle_subscribe(ClientId::new(1), filter(), NodeId(100));
        core1.handle_detach(ClientId::new(1));
        m.on_detach(&core1, ClientId::new(1), 0);
        publish(&mut core1, 10);
        m.absorb_parked(&mut core1, 0);

        let recovered = HandoffLog::with_backend(Box::new(backend.clone())).recover();
        assert!(recovered.records_read < 11, "the log was compacted");
        assert_eq!(recovered.streams.len(), 1);
        assert_eq!(recovered.streams[0].buffered.len(), 10);
    }
}
