//! Regenerates the Figure 3 experiment: the blackout period after a location
//! change for the sub/unsub baseline, flooding with client-side filtering,
//! and the paper's location-dependent subscriptions.
use rebeca_bench::figures::{figure3, Figure3Params};

fn main() {
    let params = Figure3Params::default();
    println!(
        "Figure 3: blackout after a location change (line of {} brokers, t_d = {} ms per link)\n",
        params.brokers, params.link_delay_ms
    );
    println!(
        "{:<48} {:>13} {:>15}",
        "scheme", "blackout [ms]", "total messages"
    );
    for row in figure3(&params) {
        let blackout = row
            .blackout_ms
            .map(|b| b.to_string())
            .unwrap_or_else(|| "never recovered".to_string());
        println!(
            "{:<48} {:>13} {:>15}",
            row.scheme, blackout, row.total_messages
        );
    }
    println!(
        "\nExpected shape: the baseline starves for about 2*t_d (~{} ms), the other two\nrecover within roughly one client-link round trip.",
        2 * params.link_delay_ms * (params.brokers as u64)
    );
}
