//! Quickstart: a minimal publish/subscribe deployment with one roaming
//! consumer, driven through the interactive session API.
//!
//! Three brokers in a line, a producer publishing parking vacancies at one
//! end, a consumer at the other end that moves to the middle broker halfway
//! through the run.  The relocation protocol makes the move invisible to the
//! application: every vacancy arrives exactly once and in order.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use rebeca::{
    ClientId, Constraint, DelayModel, Filter, Notification, RebecaError, SimTime, SystemBuilder,
    Topology,
};

fn main() -> Result<(), RebecaError> {
    // 1. A broker network: three brokers connected in a line, 5 ms per link.
    let mut system = SystemBuilder::new(&Topology::line(3))
        .link_delay(DelayModel::constant_millis(5))
        .seed(42)
        .build()?;

    // 2. A consumer interested in parking vacancies cheaper than 3 EUR,
    //    connected at one end of the line.
    let consumer = system.connect(ClientId::new(1), 0)?;
    consumer.subscribe(
        &mut system,
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(3.into())),
    )?;

    // 3. A producer of parking vacancies at the far end of the line.
    let producer = system.connect(ClientId::new(2), 2)?;
    system.run_until(SimTime::from_millis(50));

    // 4. Publish twenty vacancies, roaming the consumer to the middle broker
    //    halfway through.  The session calls interleave with `run_until`.
    for i in 0..20u64 {
        if i == 10 {
            consumer.move_to(&mut system, 1)?;
        }
        let vacancy = Notification::builder()
            .attr("service", "parking")
            .attr("cost", (i % 3) as i64)
            .attr("spot", i as i64)
            .build();
        producer.publish(&mut system, vacancy)?;
        system.run_until(SimTime::from_millis(100 + i * 50));
    }
    system.run_until(SimTime::from_secs(3));

    // 5. Inspect the consumer's delivery log.
    let log = consumer.log(&system)?;
    println!("deliveries received : {}", log.len());
    println!(
        "delivery log clean  : {} (no duplicates, FIFO preserved)",
        log.is_clean()
    );
    println!(
        "missing publications: {:?}",
        log.missing_from(producer.client(), 1..=20)
    );
    println!("\nfirst five deliveries:");
    for delivery in log.deliveries().iter().take(5) {
        println!(
            "  seq {:>2}  {}",
            delivery.seq, delivery.envelope.notification
        );
    }

    assert!(log.is_clean());
    assert!(log.missing_from(producer.client(), 1..=20).is_empty());
    println!("\nquickstart finished: the roaming consumer missed nothing.");
    Ok(())
}
