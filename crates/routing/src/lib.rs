//! Content-based routing engine for the Rebeca mobility reproduction.
//!
//! Implements the routing machinery of Section 2.2 of
//! *"Supporting Mobility in Content-Based Publish/Subscribe Middleware"*
//! (Fiege et al., Middleware 2003): broker routing tables whose entries are
//! `(filter, link)` pairs, advertisement tables, and the
//! flooding / simple / identity / covering / merging routing strategies whose
//! covering and merging optimizations the paper's mobility algorithms exploit.
//!
//! The crate is deliberately independent of any concrete broker or network
//! implementation: destinations are a generic type parameter (`D`), so the
//! same engine drives the discrete-event simulation in `rebeca-sim`, the
//! threaded runtime in `rebeca-broker`, and the unit tests in this crate.
//!
//! # Example
//!
//! ```
//! use rebeca_filter::{Constraint, Filter, Notification};
//! use rebeca_routing::{RoutingEngine, RoutingStrategyKind};
//!
//! let mut engine: RoutingEngine<&str> = RoutingEngine::new(RoutingStrategyKind::Covering);
//!
//! let cheap = Filter::new().with("cost", Constraint::Lt(3.into()));
//! let any = Filter::new().with("cost", Constraint::Lt(10.into()));
//! let links = ["north", "south", "east"];
//!
//! // The wide filter from "north" is propagated to the other links; the
//! // covered one from "south" only needs to reach "north" (which has not
//! // been told about any cover yet).
//! assert_eq!(engine.handle_subscribe(any, "north", &links).len(), 2);
//! assert_eq!(engine.handle_subscribe(cheap, "south", &links), vec![("north", Filter::new().with("cost", Constraint::Lt(3.into())))]);
//!
//! // Routing remains exact.
//! let pricey = Notification::builder().attr("cost", 5).build();
//! assert_eq!(engine.route(&pricey, None, &links), vec!["north"]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod advertisement;
mod strategy;
mod table;

pub use advertisement::AdvertisementTable;
pub use strategy::{RoutingEngine, RoutingStrategyKind, UnsubscriptionEffect};
pub use table::RoutingTable;
