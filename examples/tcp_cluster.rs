//! A loopback TCP deployment in one program: the quickstart scenario with
//! brokers and clients in *separate* drivers talking real sockets.
//!
//! The broker side (three brokers in a line, hosted by one [`TcpDriver`])
//! is pumped by a background thread — standing in for the `rebeca-node`
//! broker processes of a real deployment.  The main thread is the client
//! process: it dials the brokers over TCP, publishes parking vacancies and
//! relocates the consumer mid-stream.  Exactly the code that runs under
//! the simulator, on sockets.
//!
//! Run with:
//! ```text
//! cargo run --example tcp_cluster
//! ```
//!
//! For the real multi-process deployment (one OS process per broker) see
//! the README's "Deployment" section and the `rebeca-node` binary.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rebeca::net::{Endpoint, NetConfig, SystemBuilderTcp, TcpDriver};
use rebeca::{
    ClientId, Constraint, DelayModel, Filter, Notification, RebecaError, SimDuration,
    SystemBuilder, Topology,
};

fn builder() -> SystemBuilder {
    SystemBuilder::new(&Topology::line(3))
        .link_delay(DelayModel::constant_millis(2))
        .seed(42)
}

fn main() -> Result<(), RebecaError> {
    // 1. The "broker processes": one TcpDriver hosting all three brokers on
    //    an ephemeral loopback listener, pumped by a background thread.
    let driver = TcpDriver::new(
        NetConfig::new(vec![Endpoint::new("127.0.0.1", 0); 3])
            .host_all()
            .seed(1),
    )
    .map_err(|e| RebecaError::Transport(e.to_string()))?;
    let endpoint = driver.listen_endpoint().clone();
    println!("brokers listening on {endpoint}");
    let mut broker_system = builder().build_with(Box::new(driver))?;
    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let now = broker_system.now();
                broker_system.run_until(now + SimDuration::from_millis(20));
            }
            broker_system
        })
    };

    // 2. The "client process": dials the brokers over TCP.  Identical
    //    session code to the simulator quickstart.
    let mut system = builder().build_tcp(NetConfig::new(vec![endpoint; 3]).seed(2))?;
    let consumer = system.connect(ClientId::new(1), 0)?;
    consumer.subscribe(
        &mut system,
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(3.into())),
    )?;
    let producer = system.connect(ClientId::new(2), 2)?;
    let now = system.now();
    system.run_until(now + SimDuration::from_millis(200));

    // 3. Ten vacancies; the consumer relocates to the middle broker after
    //    the fifth — over TCP, with the same exactly-once guarantee.
    for spot in 0..10i64 {
        if spot == 5 {
            consumer.move_to(&mut system, 1)?;
            println!("consumer relocating to broker 1");
        }
        producer.publish(
            &mut system,
            Notification::builder()
                .attr("service", "parking")
                .attr("spot", spot)
                .attr("cost", 2)
                .build(),
        )?;
        let now = system.now();
        system.run_until(now + SimDuration::from_millis(20));
    }

    // 4. Poll until the stream is complete (wall clocks have no global
    //    "idle": keep running until the log fills or a deadline passes).
    let deadline = system.now() + SimDuration::from_secs(10);
    while system.client_log(ClientId::new(1))?.len() < 10 && system.now() < deadline {
        let now = system.now();
        system.run_until(now + SimDuration::from_millis(25));
    }

    stop.store(true, Ordering::SeqCst);
    let broker_system = pump.join().expect("broker pump thread");

    let log = system.client_log(ClientId::new(1))?;
    println!("consumer received {} vacancies over TCP:", log.len());
    for delivery in log.deliveries() {
        println!(
            "  spot {:?} (publisher seq {})",
            delivery.envelope.notification.get("spot"),
            delivery.envelope.publisher_seq
        );
    }
    assert_eq!(log.len(), 10, "all vacancies arrive");
    assert!(
        log.is_clean(),
        "exactly once, in order: {:?}",
        log.violations()
    );
    println!(
        "clean: no duplicates, no losses, FIFO order (broker-side frames in/out: {}/{})",
        broker_system.metrics().counter("net.frames_in"),
        broker_system.metrics().counter("net.frames_out"),
    );
    Ok(())
}
