//! `rebeca-ctl`: the operator CLI of a TCP deployment.
//!
//! ```text
//! rebeca-ctl status  --config cluster.cfg [--json] [--timeout-ms 2000]
//! rebeca-ctl tail    --config cluster.cfg [--broker N] [--interval-ms 500] [--rounds R]
//! rebeca-ctl publish --config cluster.cfg [--broker N] [--client ID] key=value...
//! ```
//!
//! Reads the same cluster config as `rebeca-node` and talks to the running
//! broker processes:
//!
//! * `status` fans a `StatusRequest` out across every broker of the cluster
//!   and renders the reports — routing-table size, WAL depth and checkpoint
//!   age, restart epoch, relocation counters, hand-off latency quantiles,
//!   per-link liveness.  Unreachable brokers are *reported*, not fatal.
//!   `--json` emits one JSON object per broker (JSON lines), machine-ready.
//! * `tail` streams the cluster's observability journal live: it polls each
//!   broker with a resumable sequence cursor and prints events as they
//!   happen (relocation phases, WAL appends and checkpoints, link churn).
//! * `publish` injects one notification into the running cluster through a
//!   short-lived client session — the smallest possible smoke test that
//!   routing works end to end.

use std::process::ExitCode;
use std::time::Duration;

use rebeca_broker::ClientId;
use rebeca_core::SystemBuilder;
use rebeca_filter::Notification;
use rebeca_net::{admin, AdminError, ClusterConfig, Endpoint, NetConfig, SystemBuilderTcp};
use rebeca_obs::{json_escape, StatusReport};
use rebeca_sim::SimDuration;

const USAGE: &str = "usage:
  rebeca-ctl status  --config FILE [--json] [--timeout-ms MS]
  rebeca-ctl tail    --config FILE [--broker N] [--interval-ms MS] [--rounds R] [--timeout-ms MS]
  rebeca-ctl publish --config FILE [--broker N] [--client ID] key=value...";

struct CommonArgs {
    cluster: ClusterConfig,
    timeout: Duration,
}

fn parse_u64(flag: &str, value: String) -> Result<u64, String> {
    value
        .parse::<u64>()
        .map_err(|_| format!("{flag} expects a number"))
}

/// Parses `key=value` into a notification attribute: integers as integers,
/// everything else as a string.
fn parse_attr(pair: &str) -> Result<(String, Option<i64>, String), String> {
    let (key, value) = pair
        .split_once('=')
        .ok_or_else(|| format!("expected key=value, got {pair:?}"))?;
    if key.is_empty() {
        return Err(format!("empty attribute name in {pair:?}"));
    }
    Ok((
        key.to_string(),
        value.parse::<i64>().ok(),
        value.to_string(),
    ))
}

fn run() -> Result<(), String> {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        return Err(USAGE.to_string());
    }
    let command = args.remove(0);

    // Flags shared by every command.
    let mut config = None;
    let mut timeout_ms = 2_000;
    let mut json = false;
    let mut broker: Option<usize> = None;
    let mut client = 9_001u32;
    let mut interval_ms = 500;
    let mut rounds: Option<u64> = None;
    let mut positional = Vec::new();

    let mut it = args.into_iter();
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().ok_or_else(|| format!("{flag} expects a value"));
        match flag.as_str() {
            "--config" => config = Some(value("--config")?),
            "--timeout-ms" => timeout_ms = parse_u64("--timeout-ms", value("--timeout-ms")?)?,
            "--interval-ms" => interval_ms = parse_u64("--interval-ms", value("--interval-ms")?)?,
            "--rounds" => rounds = Some(parse_u64("--rounds", value("--rounds")?)?),
            "--json" => json = true,
            "--broker" => {
                broker = Some(
                    value("--broker")?
                        .parse::<usize>()
                        .map_err(|_| "--broker expects a broker index".to_string())?,
                )
            }
            "--client" => {
                client = value("--client")?
                    .parse::<u32>()
                    .map_err(|_| "--client expects a client id".to_string())?
            }
            other if other.starts_with("--") => return Err(format!("unknown flag {other:?}")),
            other => positional.push(other.to_string()),
        }
    }

    let config = config.ok_or_else(|| format!("--config is required\n{USAGE}"))?;
    let cluster = ClusterConfig::load(&config).map_err(|e| e.to_string())?;
    if let Some(b) = broker {
        if b >= cluster.endpoints.len() {
            return Err(format!(
                "broker {b} not in config (cluster has {} brokers)",
                cluster.endpoints.len()
            ));
        }
    }
    let common = CommonArgs {
        cluster,
        timeout: Duration::from_millis(timeout_ms),
    };

    match command.as_str() {
        "status" => status(&common, json),
        "tail" => tail(&common, broker, Duration::from_millis(interval_ms), rounds),
        "publish" => publish(
            &common,
            broker.unwrap_or(0),
            ClientId::new(client),
            &positional,
        ),
        other => Err(format!("unknown command {other:?}\n{USAGE}")),
    }
}

/// One fan-out round: fetch every targeted broker's report (or its error).
fn fetch_all(
    common: &CommonArgs,
    only: Option<usize>,
    events_after: Option<u64>,
) -> Vec<(usize, &Endpoint, Result<StatusReport, AdminError>)> {
    common
        .cluster
        .endpoints
        .iter()
        .enumerate()
        .filter(|(i, _)| only.is_none() || only == Some(*i))
        .map(|(i, ep)| (i, ep, admin::fetch_status(ep, events_after, common.timeout)))
        .collect()
}

fn status(common: &CommonArgs, json: bool) -> Result<(), String> {
    let mut unreachable = 0;
    for (i, endpoint, fetched) in fetch_all(common, None, None) {
        match fetched {
            Ok(report) => {
                if json {
                    println!(
                        "{{\"broker\":{i},\"endpoint\":\"{}\",\"reachable\":true,\"report\":{}}}",
                        json_escape(&endpoint.to_string()),
                        report.to_json()
                    );
                } else {
                    print_human(i, endpoint, &report);
                }
            }
            Err(e) => {
                unreachable += 1;
                if json {
                    println!(
                        "{{\"broker\":{i},\"endpoint\":\"{}\",\"reachable\":false,\"error\":\"{}\"}}",
                        json_escape(&endpoint.to_string()),
                        json_escape(&e.to_string())
                    );
                } else {
                    println!("broker {i} @ {endpoint}: UNREACHABLE ({e})");
                }
            }
        }
    }
    if !json && unreachable > 0 {
        println!("{unreachable} broker(s) unreachable");
    }
    Ok(())
}

fn print_human(index: usize, endpoint: &Endpoint, report: &StatusReport) {
    for b in &report.brokers {
        println!(
            "broker {} @ {endpoint}: epoch {} gen {} routing {} wal {} (+{} since ckpt{})",
            b.broker,
            b.restart_epoch,
            b.generation,
            b.routing_entries,
            b.wal_depth,
            b.wal_since_checkpoint,
            match b.last_checkpoint_age_ms {
                Some(age) => format!(", {age}ms old"),
                None => String::new(),
            },
        );
        println!(
            "  relocation: counterparts {} buffered {} pending {}",
            b.counterparts, b.buffered_deliveries, b.pending_relocations
        );
        for (name, count) in &b.relocations {
            println!("    {name} = {count}");
        }
        let h = &b.handoff_latency_micros;
        if !h.is_empty() {
            println!(
                "  handoff latency: n={} p50={}us p95={}us p99={}us",
                h.count(),
                h.p50(),
                h.p95(),
                h.p99()
            );
        }
        for link in &b.links {
            println!(
                "  link -> {}: {}{}",
                link.peer,
                if link.connected { "up" } else { "DOWN" },
                match link.last_heartbeat_age_ms {
                    Some(age) => format!(" (heard {age}ms ago)"),
                    None => String::new(),
                },
            );
        }
    }
    if report.brokers.is_empty() {
        println!("broker {index} @ {endpoint}: reachable, hosts no brokers");
    }
}

fn tail(
    common: &CommonArgs,
    only: Option<usize>,
    interval: Duration,
    rounds: Option<u64>,
) -> Result<(), String> {
    // Per-broker resumable cursor.  The journal's first event has seq 1, so
    // `events_after: Some(0)` means "everything still buffered".
    let mut cursors = vec![0u64; common.cluster.endpoints.len()];
    let mut round = 0u64;
    loop {
        let fetches: Vec<_> = (0..common.cluster.endpoints.len())
            .filter(|i| only.is_none() || only == Some(*i))
            .collect();
        for i in fetches {
            let endpoint = &common.cluster.endpoints[i];
            let report = match admin::fetch_status(endpoint, Some(cursors[i]), common.timeout) {
                Ok(report) => report,
                Err(_) => continue, // a broker being down is not the tail's business
            };
            for event in &report.events {
                if event.seq <= cursors[i] {
                    continue;
                }
                cursors[i] = event.seq;
                println!(
                    "broker={i} seq={} t={}us {} {}",
                    event.seq, event.at_micros, event.kind, event.detail
                );
            }
        }
        round += 1;
        if rounds.is_some_and(|max| round >= max) {
            return Ok(());
        }
        std::thread::sleep(interval);
    }
}

fn publish(
    common: &CommonArgs,
    broker: usize,
    client: ClientId,
    attrs: &[String],
) -> Result<(), String> {
    if attrs.is_empty() {
        return Err(format!(
            "publish needs at least one key=value attribute\n{USAGE}"
        ));
    }
    let mut builder = Notification::builder();
    for pair in attrs {
        let (key, int, text) = parse_attr(pair)?;
        builder = match int {
            Some(v) => builder.attr(key.as_str(), v),
            None => builder.attr(key.as_str(), text.as_str()),
        };
    }
    let notification = builder.build();

    let net = NetConfig::new(common.cluster.endpoints.clone()).seed(common.cluster.seed ^ 0xC71);
    let mut system = SystemBuilder::new(&common.cluster.topology)
        .link_delay(common.cluster.delay)
        .seed(common.cluster.seed)
        .build_tcp(net)
        .map_err(|e| e.to_string())?;
    let session = system.connect(client, broker).map_err(|e| e.to_string())?;
    // Let the attach reach the broker before publishing through it.
    let now = system.now();
    system.run_until(now + SimDuration::from_millis(300));
    session
        .publish(&mut system, notification)
        .map_err(|e| e.to_string())?;
    // Flush the frame out before tearing the driver down.
    let now = system.now();
    system.run_until(now + SimDuration::from_millis(300));
    println!("published to broker {broker} as client {}", client.raw());
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("rebeca-ctl: {e}");
            ExitCode::FAILURE
        }
    }
}
