//! Simulation metrics: named counters, gauges, log2 latency histograms, a
//! bounded structured event journal, and time-series sampling.
//!
//! The experiment harness reproduces the paper's Figure 9 (total number of
//! messages over time) by periodically sampling counters; individual
//! protocols additionally record semantic counters such as
//! `"notification.delivered"` or `"admin.location_update"`.  The
//! observability layer (PR 6) extends the store with the mergeable
//! [`Histogram`] and [`EventJournal`] primitives of `rebeca-obs`, so one
//! `Metrics` value carries everything a driver needs to answer a status
//! request.
//!
//! Hot-path cost: counter and gauge names are keyed by
//! [`Cow<'static, str>`](std::borrow::Cow), so recording under a `&'static
//! str` name (the common case — every protocol counter is a literal or a
//! pre-interned table entry) allocates nothing, on the first write or any
//! later one.

use std::borrow::Cow;
use std::collections::BTreeMap;

use rebeca_obs::{EventJournal, Histogram, SpanBuffer, SpanRecord};
use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A metric name: borrowed for `&'static str` callers (no allocation),
/// owned for the rare dynamically built name.
pub type MetricName = Cow<'static, str>;

/// A named-counter store with gauges, histograms, an event journal, and
/// optional time-series snapshots.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    counters: BTreeMap<MetricName, u64>,
    gauges: BTreeMap<MetricName, u64>,
    histograms: BTreeMap<MetricName, Histogram>,
    journal: EventJournal,
    spans: SpanBuffer,
    series: Vec<Sample>,
}

/// One time-series sample: the value of a counter at a point in virtual time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// When the sample was taken.
    pub time: SimTime,
    /// Counter name.
    pub counter: String,
    /// Counter value at that time.
    pub value: u64,
}

impl Metrics {
    /// Creates an empty metrics store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a counter by one.
    pub fn incr(&mut self, name: impl Into<MetricName>) {
        self.add(name, 1);
    }

    /// Adds `amount` to a counter.
    pub fn add(&mut self, name: impl Into<MetricName>, amount: u64) {
        *self.counters.entry(name.into()).or_insert(0) += amount;
    }

    /// The current value of a counter (0 when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of every counter whose name starts with the given prefix.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// Sets a gauge to an instantaneous value (last write wins).
    pub fn set_gauge(&mut self, name: impl Into<MetricName>, value: u64) {
        self.gauges.insert(name.into(), value);
    }

    /// The current value of a gauge (0 when never set).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_ref(), *v))
    }

    /// Records one sample into a named log2 histogram (created on first
    /// use).
    pub fn observe(&mut self, name: impl Into<MetricName>, value: u64) {
        self.histograms
            .entry(name.into())
            .or_default()
            .record(value);
    }

    /// A named histogram, when at least one sample was recorded under it.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &Histogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_ref(), v))
    }

    /// Read access to the structured event journal.
    pub fn journal(&self) -> &EventJournal {
        &self.journal
    }

    /// `true` when journal recording is enabled — the cheap guard hot
    /// paths check before formatting an event's detail string.
    pub fn journal_enabled(&self) -> bool {
        self.journal.enabled()
    }

    /// Changes the journal's retention capacity (0 disables recording).
    pub fn set_journal_capacity(&mut self, capacity: usize) {
        self.journal.set_capacity(capacity);
    }

    /// Appends a structured event to the journal (no-op when disabled).
    /// Returns the assigned sequence number.
    pub fn record_event(
        &mut self,
        at: SimTime,
        kind: impl Into<String>,
        detail: impl Into<String>,
    ) -> Option<u64> {
        self.journal.record(at.as_micros(), kind, detail)
    }

    /// Read access to the trace span buffer.
    pub fn spans(&self) -> &SpanBuffer {
        &self.spans
    }

    /// `true` when span recording is enabled — the cheap guard trace call
    /// sites check before building a [`SpanRecord`].
    pub fn span_enabled(&self) -> bool {
        self.spans.enabled()
    }

    /// Changes the span buffer's retention capacity (0 disables recording).
    pub fn set_span_capacity(&mut self, capacity: usize) {
        self.spans.set_capacity(capacity);
    }

    /// Appends a trace span (no-op when disabled).  Returns the assigned
    /// sequence number.
    pub fn record_span(&mut self, span: SpanRecord) -> Option<u64> {
        self.spans.record(span)
    }

    /// Records the current value of `counter` as a time-series sample.
    pub fn sample(&mut self, time: SimTime, counter: &str) {
        let value = self.counter(counter);
        self.series.push(Sample {
            time,
            counter: counter.to_string(),
            value,
        });
    }

    /// Records the current prefix-sum of `prefix` as a time-series sample
    /// stored under the prefix name.
    pub fn sample_prefix(&mut self, time: SimTime, prefix: &str) {
        let value = self.counter_prefix_sum(prefix);
        self.series.push(Sample {
            time,
            counter: prefix.to_string(),
            value,
        });
    }

    /// The recorded samples for one counter, in recording order.
    pub fn series(&self, counter: &str) -> Vec<(SimTime, u64)> {
        self.series
            .iter()
            .filter(|s| s.counter == counter)
            .map(|s| (s.time, s.value))
            .collect()
    }

    /// All recorded samples.
    pub fn all_samples(&self) -> &[Sample] {
        &self.series
    }

    /// Resets every counter, gauge, histogram, journal entry, span and
    /// sample.  The journal's and span buffer's capacities and sequence
    /// counters are kept, so tails spanning a reset still see monotonic
    /// numbering.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.gauges.clear();
        self.histograms.clear();
        self.journal.clear();
        self.spans.clear();
        self.series.clear();
    }

    /// Merges another metrics store into this one: counters are added,
    /// gauges keep the maximum of both sides (the mergeable reading of an
    /// instantaneous value — high-watermark semantics), histograms merge
    /// bucket-wise, journal entries are appended with fresh sequence
    /// numbers, samples are appended.
    pub fn merge(&mut self, other: &Metrics) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        for (name, value) in &other.gauges {
            let slot = self.gauges.entry(name.clone()).or_insert(0);
            *slot = (*slot).max(*value);
        }
        for (name, histogram) in &other.histograms {
            self.histograms
                .entry(name.clone())
                .or_default()
                .merge(histogram);
        }
        self.journal.merge(&other.journal);
        self.spans.merge(&other.spans);
        self.series.extend(other.series.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("msg");
        m.incr("msg");
        m.add("msg", 3);
        assert_eq!(m.counter("msg"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn owned_names_work_alongside_static_ones() {
        let mut m = Metrics::new();
        m.incr("broker.rx.publish");
        m.incr(format!("broker.{}", "rx.publish"));
        assert_eq!(m.counter("broker.rx.publish"), 2);
    }

    #[test]
    fn prefix_sums_aggregate_related_counters() {
        let mut m = Metrics::new();
        m.add("admin.sub", 2);
        m.add("admin.unsub", 3);
        m.add("notification.delivered", 7);
        assert_eq!(m.counter_prefix_sum("admin."), 5);
        assert_eq!(m.counter_prefix_sum("notification."), 7);
        assert_eq!(m.counter_prefix_sum(""), 12);
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let mut m = Metrics::new();
        m.set_gauge("wal.depth", 5);
        m.set_gauge("wal.depth", 2);
        assert_eq!(m.gauge("wal.depth"), 2);
        assert_eq!(m.gauge("missing"), 0);
        let names: Vec<&str> = m.gauges().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["wal.depth"]);
    }

    #[test]
    fn histograms_record_and_expose_quantiles() {
        let mut m = Metrics::new();
        assert!(m.histogram("latency").is_none());
        for _ in 0..99 {
            m.observe("latency", 100);
        }
        m.observe("latency", 10_000);
        let h = m.histogram("latency").unwrap();
        assert_eq!(h.count(), 100);
        assert_eq!(h.p50(), 127);
        assert_eq!(h.p99(), 127);
        assert_eq!(h.quantile(1.0), 16_383);
    }

    #[test]
    fn journal_records_behind_the_guard() {
        let mut m = Metrics::new();
        assert!(m.journal_enabled());
        assert_eq!(
            m.record_event(SimTime::from_millis(5), "wal.append", "records=1"),
            Some(0)
        );
        m.set_journal_capacity(0);
        assert!(!m.journal_enabled());
        assert_eq!(m.record_event(SimTime::from_millis(6), "x", ""), None);
    }

    #[test]
    fn spans_record_behind_the_guard_and_merge_renumbered() {
        fn span(id: u64) -> SpanRecord {
            SpanRecord {
                seq: 0,
                trace_id: 9,
                span_id: id,
                parent_span: 0,
                broker: 0,
                kind: "publish".into(),
                start_micros: 1,
                end_micros: 2,
                detail: String::new(),
            }
        }
        let mut m = Metrics::new();
        assert!(m.span_enabled());
        assert_eq!(m.record_span(span(1)), Some(0));
        let mut other = Metrics::new();
        other.record_span(span(2));
        m.merge(&other);
        let seqs: Vec<u64> = m.spans().spans().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        m.set_span_capacity(0);
        assert!(!m.span_enabled());
        assert_eq!(m.record_span(span(3)), None);
        m.set_span_capacity(4);
        m.reset();
        assert!(m.spans().is_empty());
        assert_eq!(m.record_span(span(4)), Some(2)); // numbering survives reset
    }

    #[test]
    fn time_series_sampling() {
        let mut m = Metrics::new();
        m.add("msg", 10);
        m.sample(SimTime::from_secs(1), "msg");
        m.add("msg", 5);
        m.sample(SimTime::from_secs(2), "msg");
        assert_eq!(
            m.series("msg"),
            vec![(SimTime::from_secs(1), 10), (SimTime::from_secs(2), 15)]
        );
        assert_eq!(m.all_samples().len(), 2);
    }

    #[test]
    fn prefix_sampling_records_totals() {
        let mut m = Metrics::new();
        m.add("admin.sub", 1);
        m.add("admin.unsub", 2);
        m.sample_prefix(SimTime::from_secs(1), "admin.");
        assert_eq!(m.series("admin."), vec![(SimTime::from_secs(1), 3)]);
    }

    #[test]
    fn reset_clears_everything_but_keeps_journal_numbering() {
        let mut m = Metrics::new();
        m.incr("a");
        m.set_gauge("g", 1);
        m.observe("h", 10);
        m.record_event(SimTime::ZERO, "k", "");
        m.sample(SimTime::ZERO, "a");
        m.reset();
        assert_eq!(m.counter("a"), 0);
        assert_eq!(m.gauge("g"), 0);
        assert!(m.histogram("h").is_none());
        assert!(m.journal().is_empty());
        assert!(m.all_samples().is_empty());
        // Sequence numbering continues across the reset.
        assert_eq!(m.record_event(SimTime::ZERO, "k", ""), Some(1));
    }

    #[test]
    fn merge_combines_all_stores() {
        let mut a = Metrics::new();
        a.add("x", 1);
        a.set_gauge("depth", 7);
        a.observe("lat", 100);
        a.record_event(SimTime::from_secs(1), "a", "");
        let mut b = Metrics::new();
        b.add("x", 2);
        b.add("y", 3);
        b.set_gauge("depth", 4);
        b.observe("lat", 100);
        b.record_event(SimTime::from_secs(2), "b", "");
        b.sample(SimTime::from_secs(1), "y");
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 3);
        assert_eq!(a.gauge("depth"), 7); // max wins
        assert_eq!(a.histogram("lat").unwrap().count(), 2);
        let seqs: Vec<u64> = a.journal().events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1]); // merged entry renumbered
        assert_eq!(a.all_samples().len(), 1);
    }

    #[test]
    fn counters_iterate_in_name_order() {
        let mut m = Metrics::new();
        m.incr("z");
        m.incr("a");
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
