//! Broker routing tables.
//!
//! Each broker maintains a routing table whose entries are pairs `(F, L)` of
//! a filter and the link it was received from, denoting that notifications
//! matching `F` are to be forwarded along `L` (Section 2.2 of the paper).
//!
//! # Subscription subgrouping
//!
//! Real subscription populations are heavily skewed: thousands of clients
//! subscribe with byte-identical filters (every subscriber of one stock
//! ticker, one parking lot, one chat group).  The table therefore clusters
//! identical filters into **subgroups**: the predicate index
//! ([`rebeca_matcher::ShardedFilterIndex`]) holds **one key per distinct
//! filter**, while a subgroup record keeps per-destination reference counts
//! and the member entry ids underneath.  Matching, covering and identity
//! queries run over the compacted index (cost proportional to *distinct*
//! filters), while per-instance bookkeeping (`remove` of exactly one
//! instance, insertion order, multiset equality) stays exact through the
//! entry table.  [`RoutingTable::destinations_with_identical`] and
//! [`RoutingTable::contains_entry`] become O(1) hash lookups.
//!
//! [`RoutingTable::matching_destinations`] runs the counting algorithm over
//! subgroups instead of scanning all filters (and
//! [`RoutingTable::matching_destinations_batch`] matches whole notification
//! queues with the index's batch kernel), while the covering-based queries
//! ([`RoutingTable::is_covered`], [`RoutingTable::remove_covered_by`],
//! [`RoutingTable::covered_entries`]) run the same counting walk over
//! deduplicated predicates in the covering domain.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use rebeca_filter::{Filter, Notification};
use rebeca_matcher::ShardedFilterIndex;

/// One subgroup: all table entries sharing one distinct filter.
#[derive(Debug, Clone)]
struct Subgroup<D> {
    /// The shared filter (stored once; entries refer to it by subgroup id).
    filter: Filter,
    /// Reference count per destination — how many member entries point at
    /// each link.  A destination is routed to iff its count is non-zero.
    dests: BTreeMap<D, u32>,
    /// Member entry ids in insertion order.
    members: Vec<u64>,
}

/// A routing table mapping destinations (links) to the filters subscribed
/// from that direction.
///
/// The table stores *every* active subscription (with multiplicity), so the
/// routing decision is always exact regardless of which optimization the
/// surrounding [`RoutingEngine`](crate::RoutingEngine) applies to the
/// *forwarding* of administration messages.  Identical filters share one
/// subgroup (and one predicate-index key), so index size and matching cost
/// scale with the number of *distinct* filters, not subscriptions.
#[derive(Debug, Clone)]
pub struct RoutingTable<D> {
    /// Entry ids per destination, in insertion order.
    dests: BTreeMap<D, Vec<u64>>,
    /// Entry id → `(destination, subgroup id)`.
    entries: HashMap<u64, (D, u64)>,
    /// Subgroup id → shared filter + per-destination refcounts + members.
    subgroups: HashMap<u64, Subgroup<D>>,
    /// Distinct filter → its subgroup id.
    by_filter: HashMap<Filter, u64>,
    /// Predicate index keyed by **subgroup id** (one key per distinct
    /// filter).
    index: ShardedFilterIndex<u64>,
    next_entry: u64,
    next_sgid: u64,
}

impl<D: Ord + Clone> Default for RoutingTable<D> {
    fn default() -> Self {
        Self {
            dests: BTreeMap::new(),
            entries: HashMap::new(),
            subgroups: HashMap::new(),
            by_filter: HashMap::new(),
            index: ShardedFilterIndex::new(),
            next_entry: 0,
            next_sgid: 0,
        }
    }
}

impl<D: Ord + Clone> RoutingTable<D> {
    /// Creates an empty routing table (default shard count).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty routing table whose index uses `shards` worker
    /// shards.  Results are independent of the shard count; the parameter
    /// only tunes the index layout.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            index: ShardedFilterIndex::with_shards(shards),
            ..Self::default()
        }
    }

    /// The shared filter of an entry's subgroup.
    fn filter_of(&self, id: u64) -> &Filter {
        &self.subgroups[&self.entries[&id].1].filter
    }

    /// Adds an entry `(filter, destination)`.
    pub fn insert(&mut self, filter: Filter, destination: D) {
        let id = self.next_entry;
        self.next_entry += 1;
        let sgid = match self.by_filter.get(&filter) {
            Some(&sgid) => sgid,
            None => {
                let sgid = self.next_sgid;
                self.next_sgid += 1;
                self.index.insert(sgid, &filter);
                self.by_filter.insert(filter.clone(), sgid);
                self.subgroups.insert(
                    sgid,
                    Subgroup {
                        filter,
                        dests: BTreeMap::new(),
                        members: Vec::new(),
                    },
                );
                sgid
            }
        };
        let sub = self.subgroups.get_mut(&sgid).expect("live subgroup");
        *sub.dests.entry(destination.clone()).or_insert(0) += 1;
        sub.members.push(id);
        self.dests.entry(destination.clone()).or_default().push(id);
        self.entries.insert(id, (destination, sgid));
    }

    /// Drops entry `id` from its subgroup, removing the subgroup (and its
    /// index key) when the last member is gone.  Returns the shared filter.
    fn release_member(&mut self, sgid: u64, id: u64, dest: &D) -> Filter {
        let last = {
            let sub = self.subgroups.get_mut(&sgid).expect("live subgroup");
            sub.members.retain(|&i| i != id);
            let count = sub.dests.get_mut(dest).expect("live destination count");
            *count -= 1;
            if *count == 0 {
                sub.dests.remove(dest);
            }
            sub.members.is_empty()
        };
        if last {
            let sub = self.subgroups.remove(&sgid).expect("live subgroup");
            self.index.remove(&sgid);
            self.by_filter.remove(&sub.filter);
            sub.filter
        } else {
            self.subgroups[&sgid].filter.clone()
        }
    }

    fn remove_id(&mut self, id: u64) -> Option<(D, Filter)> {
        let (dest, sgid) = self.entries.remove(&id)?;
        if let Some(ids) = self.dests.get_mut(&dest) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.dests.remove(&dest);
            }
        }
        let filter = self.release_member(sgid, id, &dest);
        Some((dest, filter))
    }

    /// Removes **one** instance of the exact filter for the destination.
    /// Returns `true` when an entry was removed.
    pub fn remove(&mut self, filter: &Filter, destination: &D) -> bool {
        let Some(&sgid) = self.by_filter.get(filter) else {
            return false;
        };
        let Some(ids) = self.dests.get(destination) else {
            return false;
        };
        let found = ids.iter().find(|id| self.entries[id].1 == sgid).copied();
        match found {
            Some(id) => {
                self.remove_id(id);
                true
            }
            None => false,
        }
    }

    /// Removes every entry for the destination and returns the filters.
    pub fn remove_destination(&mut self, destination: &D) -> Vec<Filter> {
        let ids = self.dests.remove(destination).unwrap_or_default();
        ids.into_iter()
            .map(|id| {
                let (_, sgid) = self.entries.remove(&id).expect("live entry");
                self.release_member(sgid, id, destination)
            })
            .collect()
    }

    /// Entry ids whose filter is covered by `filter`, in deterministic
    /// (destination, insertion) order.
    fn covered_ids(&self, filter: &Filter) -> Vec<u64> {
        // The index answers per *subgroup*; expand each covered subgroup to
        // its member entries and report grouped by destination, insertion
        // order within each (matching the pre-index behaviour) — but sort
        // only the covered ids instead of walking the whole table.
        let mut keyed: Vec<((&D, usize), u64)> = self
            .index
            .covered_keys(filter)
            .into_iter()
            .flat_map(|sgid| self.subgroups[sgid].members.iter().copied())
            .map(|id| {
                let dest = &self.entries[&id].0;
                let pos = self.dests[dest]
                    .iter()
                    .position(|&i| i == id)
                    .expect("id in its destination's list");
                ((dest, pos), id)
            })
            .collect();
        keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        keyed.into_iter().map(|(_, id)| id).collect()
    }

    /// Removes every entry (for any destination) covered by `filter` and
    /// returns the removed `(destination, filter)` pairs.
    pub fn remove_covered_by(&mut self, filter: &Filter) -> Vec<(D, Filter)> {
        self.covered_ids(filter)
            .into_iter()
            .map(|id| self.remove_id(id).expect("live entry"))
            .collect()
    }

    /// The `(destination, filter)` entries covered by `filter` (including
    /// exact matches), answered by the index's exact covering query.
    pub fn covered_entries(&self, filter: &Filter) -> Vec<(&D, &Filter)> {
        self.covered_ids(filter)
            .into_iter()
            .map(|id| {
                let (d, sgid) = &self.entries[&id];
                (d, &self.subgroups[sgid].filter)
            })
            .collect()
    }

    /// The destinations whose filters match the notification.  The optional
    /// `exclude` destination (usually the link the notification came from)
    /// is never returned.
    ///
    /// Runs the index's counting algorithm over subgroups: cost is
    /// proportional to the matching *distinct* filters, not the table size.
    pub fn matching_destinations(&self, n: &Notification, exclude: Option<&D>) -> Vec<D> {
        let mut dests: Vec<D> = Vec::new();
        self.for_each_matching_destination(n, exclude, |d| dests.push(d.clone()));
        dests
    }

    /// Visits each destination with a matching filter exactly once, in
    /// ascending destination order, skipping `exclude`.  Unlike
    /// [`RoutingTable::matching_destinations`] it neither materializes the
    /// matching entry-id vector nor clones the destinations — only the
    /// deduplication set (one `&D` per distinct matching destination) is
    /// built per call.
    pub fn for_each_matching_destination(
        &self,
        n: &Notification,
        exclude: Option<&D>,
        mut visit: impl FnMut(&D),
    ) {
        let mut dests: BTreeSet<&D> = BTreeSet::new();
        self.index.for_each_match(n, |sgid| {
            for dest in self.subgroups[sgid].dests.keys() {
                if Some(dest) != exclude {
                    dests.insert(dest);
                }
            }
        });
        for d in dests {
            visit(d);
        }
    }

    /// The matching destinations of a whole queue of notifications, via the
    /// index's batch kernel (every posting list is walked once per
    /// 64-notification chunk; chunks fan out across worker threads on
    /// multicore machines).  Equivalent to calling
    /// [`RoutingTable::matching_destinations`] per notification.
    pub fn matching_destinations_batch<N>(&self, ns: &[N], exclude: Option<&D>) -> Vec<Vec<D>>
    where
        N: std::borrow::Borrow<Notification> + Sync,
        D: Sync,
    {
        self.index
            .match_batch(ns)
            .into_iter()
            .map(|sgids| {
                let dests: BTreeSet<&D> = sgids
                    .into_iter()
                    .flat_map(|sgid| self.subgroups[sgid].dests.keys())
                    .filter(|d| Some(*d) != exclude)
                    .collect();
                dests.into_iter().cloned().collect()
            })
            .collect()
    }

    /// The destinations holding at least one filter that *overlaps* the given
    /// filter (used to decide where a new subscription or a fetch request has
    /// to travel).  Scans subgroups (distinct filters), not entries.
    pub fn destinations_overlapping(&self, filter: &Filter, exclude: Option<&D>) -> Vec<D> {
        let dests: BTreeSet<&D> = self
            .subgroups
            .values()
            .filter(|sub| sub.filter.overlaps(filter))
            .flat_map(|sub| sub.dests.keys())
            .filter(|d| Some(*d) != exclude)
            .collect();
        dests.into_iter().cloned().collect()
    }

    /// The destinations holding at least one filter that **covers** `filter`
    /// (including identical ones), via the index's exact covering query.
    /// Used by the mobility layer to scope relocation floods to links that
    /// actually lie on a delivery path for the relocating subscription.
    pub fn destinations_covering(&self, filter: &Filter, exclude: Option<&D>) -> Vec<D> {
        let dests: BTreeSet<&D> = self
            .index
            .covering_keys(filter)
            .into_iter()
            .flat_map(|sgid| self.subgroups[sgid].dests.keys())
            .filter(|d| Some(*d) != exclude)
            .collect();
        dests.into_iter().cloned().collect()
    }

    /// The destinations holding at least one filter identical to `filter` —
    /// a single subgroup lookup.
    pub fn destinations_with_identical(&self, filter: &Filter, exclude: Option<&D>) -> Vec<D> {
        match self.by_filter.get(filter) {
            Some(sgid) => self.subgroups[sgid]
                .dests
                .keys()
                .filter(|d| Some(*d) != exclude)
                .cloned()
                .collect(),
            None => Vec::new(),
        }
    }

    /// All filters currently stored for a destination, in insertion order.
    pub fn filters_for(&self, destination: &D) -> Vec<&Filter> {
        self.dests
            .get(destination)
            .map(|ids| ids.iter().map(|&id| self.filter_of(id)).collect())
            .unwrap_or_default()
    }

    /// `true` when the exact filter is stored for the destination — a single
    /// subgroup lookup.
    pub fn contains_entry(&self, filter: &Filter, destination: &D) -> bool {
        self.by_filter
            .get(filter)
            .is_some_and(|sgid| self.subgroups[sgid].dests.contains_key(destination))
    }

    /// Iterates over every `(destination, filter)` entry in deterministic
    /// (destination, insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = (&D, &Filter)> {
        self.dests
            .iter()
            .flat_map(move |(d, ids)| ids.iter().map(move |&id| (d, self.filter_of(id))))
    }

    /// All destinations currently present in the table.
    pub fn destinations(&self) -> impl Iterator<Item = &D> {
        self.dests.keys()
    }

    /// Returns `true` when any stored filter (from any destination other than
    /// `exclude`) covers the given filter, via the index's exact covering
    /// query.
    pub fn is_covered(&self, filter: &Filter, exclude: Option<&D>) -> bool {
        match exclude {
            None => self.index.covers_any(filter),
            Some(excl) => self
                .index
                .covering_keys(filter)
                .into_iter()
                .any(|sgid| self.subgroups[sgid].dests.keys().any(|d| d != excl)),
        }
    }

    /// Returns `true` when any stored filter from any destination other than
    /// `exclude` equals the given filter — a single subgroup lookup.
    pub fn contains_identical(&self, filter: &Filter, exclude: Option<&D>) -> bool {
        self.by_filter.get(filter).is_some_and(|sgid| {
            self.subgroups[sgid]
                .dests
                .keys()
                .any(|d| Some(d) != exclude)
        })
    }

    /// Total number of `(filter, destination)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of subgroups — distinct filters across all destinations.  The
    /// predicate index holds exactly this many keys; `len() /
    /// subgroup_count()` is the table's compaction ratio.
    pub fn subgroup_count(&self) -> usize {
        self.subgroups.len()
    }
}

impl<D: Ord + Clone> PartialEq for RoutingTable<D> {
    /// Logical equality: the same destinations hold the same multisets of
    /// filters (entry ids, subgroup ids and index internals are
    /// representation).
    fn eq(&self, other: &Self) -> bool {
        if self.dests.len() != other.dests.len() {
            return false;
        }
        self.dests
            .iter()
            .zip(other.dests.iter())
            .all(|((d1, ids1), (d2, ids2))| {
                if d1 != d2 || ids1.len() != ids2.len() {
                    return false;
                }
                let mut f1: Vec<&Filter> = ids1.iter().map(|&id| self.filter_of(id)).collect();
                let mut f2: Vec<&Filter> = ids2.iter().map(|&id| other.filter_of(id)).collect();
                f1.sort_unstable();
                f2.sort_unstable();
                f1 == f2
            })
    }
}

impl<D: Ord + Clone + fmt::Debug> fmt::Display for RoutingTable<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (dest, filter) in self.iter() {
            writeln!(f, "{filter}  ->  {dest:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_filter::Constraint;

    fn parking(max: i64) -> Filter {
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(max.into()))
    }

    fn vacancy(cost: i64) -> Notification {
        Notification::builder()
            .attr("service", "parking")
            .attr("cost", cost)
            .build()
    }

    #[test]
    fn insert_and_route() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(10), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.matching_destinations(&vacancy(2), None), vec![1, 2]);
        assert_eq!(t.matching_destinations(&vacancy(5), None), vec![2]);
        assert!(t.matching_destinations(&vacancy(20), None).is_empty());
    }

    #[test]
    fn exclusion_of_the_source_link() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(3), 2);
        assert_eq!(t.matching_destinations(&vacancy(1), Some(&1)), vec![2]);
    }

    #[test]
    fn remove_only_one_instance() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(3), 1);
        assert_eq!(t.subgroup_count(), 1);
        assert!(t.remove(&parking(3), &1));
        assert_eq!(t.len(), 1);
        assert!(t.remove(&parking(3), &1));
        assert!(t.is_empty());
        assert_eq!(t.subgroup_count(), 0);
        assert!(!t.remove(&parking(3), &1));
    }

    #[test]
    fn remove_destination_drops_all_its_filters() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(5), 1);
        t.insert(parking(5), 2);
        let removed = t.remove_destination(&1);
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.subgroup_count(), 1);
    }

    #[test]
    fn remove_covered_by_prunes_across_destinations() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(5), 2);
        t.insert(parking(20), 3);
        let removed = t.remove_covered_by(&parking(10));
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.filters_for(&3).len(), 1);
    }

    #[test]
    fn covering_and_identity_queries() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(10), 1);
        assert!(t.is_covered(&parking(3), None));
        assert!(!t.is_covered(&parking(20), None));
        assert!(!t.is_covered(&parking(3), Some(&1)));
        assert!(t.contains_identical(&parking(10), None));
        assert!(!t.contains_identical(&parking(3), None));
        assert!(t.contains_entry(&parking(10), &1));
        assert!(!t.contains_entry(&parking(10), &2));
    }

    #[test]
    fn overlapping_destinations() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(10), 1);
        let weather = Filter::new().with("service", Constraint::Eq("weather".into()));
        t.insert(weather.clone(), 2);
        assert_eq!(t.destinations_overlapping(&parking(3), None), vec![1]);
        assert_eq!(t.destinations_overlapping(&weather, None), vec![2]);
    }

    #[test]
    fn iteration_and_destinations() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 2);
        t.insert(parking(5), 1);
        let dests: Vec<u32> = t.destinations().copied().collect();
        assert_eq!(dests, vec![1, 2]);
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn covered_entries_lists_destination_and_filter() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(20), 2);
        let covered = t.covered_entries(&parking(10));
        assert_eq!(covered, vec![(&1, &parking(3))]);
    }

    #[test]
    fn batch_matching_agrees_with_per_notification_routing() {
        for shards in [1, 4] {
            let mut t: RoutingTable<u32> = RoutingTable::with_shards(shards);
            for i in 0..40 {
                t.insert(parking((i % 7) as i64), i % 5);
            }
            let ns: Vec<Notification> = (0..90).map(|i| vacancy((i % 9) as i64)).collect();
            let batch = t.matching_destinations_batch(&ns, Some(&2));
            assert_eq!(batch.len(), ns.len());
            for (n, dests) in ns.iter().zip(&batch) {
                assert_eq!(
                    dests,
                    &t.matching_destinations(n, Some(&2)),
                    "{shards} shards"
                );
            }
        }
    }

    #[test]
    fn destination_visitor_agrees_with_matching_destinations() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(3), 2);
        t.insert(parking(10), 3);
        let mut seen = Vec::new();
        t.for_each_matching_destination(&vacancy(1), Some(&2), |d| seen.push(*d));
        assert_eq!(seen, t.matching_destinations(&vacancy(1), Some(&2)));
        assert_eq!(seen, vec![1, 3]);
    }

    #[test]
    fn logical_equality_ignores_entry_ids() {
        let mut a: RoutingTable<u32> = RoutingTable::new();
        a.insert(parking(3), 1);
        a.insert(parking(5), 1);
        let mut b: RoutingTable<u32> = RoutingTable::new();
        b.insert(parking(5), 1);
        b.insert(parking(3), 1);
        assert_eq!(a, b);
        b.insert(parking(9), 2);
        assert_ne!(a, b);
    }

    #[test]
    fn subgrouping_compacts_identical_filters() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        for i in 0..100 {
            t.insert(parking((i % 4) as i64), i % 7);
        }
        assert_eq!(t.len(), 100);
        assert_eq!(t.subgroup_count(), 4);
        // Removing one instance keeps the subgroup alive for the rest.
        assert!(t.remove(&parking(0), &0));
        assert_eq!(t.subgroup_count(), 4);
        assert_eq!(t.len(), 99);
        let with_zero = t.destinations_with_identical(&parking(0), None);
        assert!(with_zero.contains(&0), "dest 0 still holds instances");
    }

    #[test]
    fn subgroup_destination_refcounts_gate_matching() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(3), 1);
        t.insert(parking(3), 2);
        assert_eq!(t.subgroup_count(), 1);
        assert_eq!(t.matching_destinations(&vacancy(1), None), vec![1, 2]);
        // One of destination 1's two instances goes away: still routed.
        assert!(t.remove(&parking(3), &1));
        assert_eq!(t.matching_destinations(&vacancy(1), None), vec![1, 2]);
        // The second removal drops destination 1 from the subgroup.
        assert!(t.remove(&parking(3), &1));
        assert_eq!(t.matching_destinations(&vacancy(1), None), vec![2]);
    }
}
