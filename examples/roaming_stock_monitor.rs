//! Roaming stock monitor: the paper's example of making an *existing*
//! application mobile without changing its interface (physical mobility,
//! Section 4).
//!
//! A stock-quote monitor subscribes to price updates for a handful of
//! symbols.  Its user commutes between home, the train and the office — the
//! client disconnects and re-attaches at a different border broker twice,
//! while three exchanges keep publishing quotes.  The application code never
//! changes: the relocation protocol buffers and replays quotes so the monitor
//! sees a gapless, duplicate-free, in-order stream.
//!
//! Run with:
//! ```text
//! cargo run --example roaming_stock_monitor
//! ```

use rebeca::{
    BrokerConfig, ClientAction, ClientId, Constraint, DelayModel, Filter, LogicalMobilityMode,
    MobilitySystem, Notification, SimDuration, SimTime, Topology,
};

fn quote(symbol: &str, price: i64, update: i64) -> Notification {
    Notification::builder()
        .attr("service", "stock")
        .attr("symbol", symbol)
        .attr("price", price)
        .attr("update", update)
        .build()
}

fn main() {
    // A metropolitan broker network: a balanced binary tree of 7 brokers.
    // Broker 3 serves the home district, broker 5 the train line, broker 6
    // the office district; the exchanges feed in at brokers 1 and 2.
    let mut system = MobilitySystem::new(
        &Topology::balanced_tree(2, 2),
        BrokerConfig::default(),
        DelayModel::constant_millis(8),
        2024,
    );

    let monitor = ClientId(1);
    let watchlist = Filter::new()
        .with("service", Constraint::Eq("stock".into()))
        .with("symbol", Constraint::any_of(["REBECA", "SIENA", "ELVIN"]));

    let home = system.broker_node(3);
    let train = system.broker_node(5);
    let office = system.broker_node(6);

    system.add_client(
        monitor,
        LogicalMobilityMode::LocationDependent,
        &[3, 5, 6],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach { broker: home },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(watchlist.clone()),
            ),
            // 7:30 — leave home, connect from the train.
            (
                SimTime::from_secs(2),
                ClientAction::MoveTo { broker: train },
            ),
            // 8:00 — arrive at the office.
            (
                SimTime::from_secs(4),
                ClientAction::MoveTo { broker: office },
            ),
        ],
    );

    // Two exchanges publishing quotes for the watched and some unwatched
    // symbols.
    let symbols = ["REBECA", "SIENA", "ELVIN", "GRYPHON", "JEDI"];
    for (e, broker_index) in [(ClientId(10), 1usize), (ClientId(11), 2usize)] {
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: system.broker_node(broker_index),
            },
        )];
        let mut t = SimTime::from_millis(100);
        let mut update = 0i64;
        while t < SimTime::from_secs(6) {
            let symbol = symbols[(update as usize) % symbols.len()];
            script.push((
                t,
                ClientAction::Publish(quote(symbol, 100 + update % 17, update)),
            ));
            update += 1;
            t += SimDuration::from_millis(80);
        }
        system.add_client(
            e,
            LogicalMobilityMode::LocationDependent,
            &[broker_index],
            script,
        );
    }

    system.run_until(SimTime::from_secs(8));

    let log = system.client_log(monitor);
    println!("quotes delivered to the roaming monitor: {}", log.len());
    println!(
        "delivery log clean (no dup, FIFO)      : {}",
        log.is_clean()
    );
    for publisher in [ClientId(10), ClientId(11)] {
        println!(
            "  exchange {publisher}: received {} distinct updates, {} duplicates",
            log.distinct_publisher_seqs(publisher).len(),
            log.duplicate_publications(publisher)
        );
    }
    let watched: Vec<&str> = ["REBECA", "SIENA", "ELVIN"].to_vec();
    assert!(log.deliveries().iter().all(|d| {
        d.envelope
            .notification
            .get("symbol")
            .and_then(|v| v.as_str())
            .map(|s| watched.contains(&s))
            .unwrap_or(false)
    }));
    assert!(log.is_clean());
    println!("\nroaming stock monitor finished: two hand-overs, zero gaps, zero duplicates.");
}
