//! The session API against the scripted adapter: driving the same scenario
//! both ways must produce *identical* consumer state, because the scripted
//! path is a thin adapter over the session machinery.

use rebeca_broker::ClientId;
use rebeca_core::{ClientAction, LogicalMobilityMode, MobilitySystem, RebecaError, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_sim::{DelayModel, SimTime, Topology};

fn subscription() -> Filter {
    Filter::new()
        .with("service", Constraint::Eq("parking".into()))
        .with("cost", Constraint::Lt(3.into()))
}

fn vacancy(i: u64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("cost", (i % 3) as i64)
        .attr("spot", i as i64)
        .build()
}

fn quickstart_system() -> MobilitySystem {
    SystemBuilder::new(&Topology::line(3))
        .link_delay(DelayModel::constant_millis(5))
        .seed(42)
        .build()
        .expect("non-empty topology")
}

/// The quickstart scenario, pre-scripted: every `(time, action)` pair is
/// known up front.
fn run_scripted() -> MobilitySystem {
    let mut sys = quickstart_system();
    sys.add_client(
        ClientId::new(1),
        LogicalMobilityMode::LocationDependent,
        &[0, 1],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(0).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(subscription()),
            ),
            (
                SimTime::from_millis(500),
                ClientAction::MoveTo {
                    broker: sys.broker_node(1).unwrap(),
                },
            ),
        ],
    )
    .unwrap();
    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(2).unwrap(),
        },
    )];
    for i in 0..20u64 {
        script.push((
            SimTime::from_millis(100 + i * 50),
            ClientAction::Publish(vacancy(i)),
        ));
    }
    sys.add_client(
        ClientId::new(2),
        LogicalMobilityMode::LocationDependent,
        &[2],
        script,
    )
    .unwrap();
    sys.run_until(SimTime::from_secs(3));
    sys
}

/// The same scenario driven interactively: sessions issue each action at the
/// moment the scripted run would have executed it.
fn run_session() -> Result<MobilitySystem, RebecaError> {
    let mut sys = quickstart_system();
    let consumer = sys.connect(ClientId::new(1), 0)?;
    consumer.subscribe(&mut sys, subscription())?;
    let producer = sys.connect(ClientId::new(2), 2)?;
    for i in 0..20u64 {
        sys.run_until(SimTime::from_millis(100 + i * 50));
        if i == 8 {
            // t = 500 ms: the scripted consumer's move executes before the
            // producer's publication of the same instant (script order);
            // mirror that order here.
            consumer.move_to(&mut sys, 1)?;
        }
        producer.publish(&mut sys, vacancy(i))?;
    }
    sys.run_until(SimTime::from_secs(3));
    Ok(sys)
}

/// The headline equivalence: byte-identical `ConsumerLog`s from the
/// scripted and the session-driven quickstart.
#[test]
fn scripted_and_session_runs_are_byte_identical() {
    let scripted = run_scripted();
    let session = run_session().expect("session run");

    let scripted_log = scripted.client_log(ClientId::new(1)).unwrap();
    let session_log = session.client_log(ClientId::new(1)).unwrap();

    assert!(scripted_log.is_clean() && session_log.is_clean());
    assert_eq!(scripted_log.len(), 20);
    assert_eq!(
        scripted_log, session_log,
        "scripted and session-driven runs must record identical deliveries"
    );
    // Literally byte-identical, not just structurally equal.
    assert_eq!(
        format!("{scripted_log:?}").into_bytes(),
        format!("{session_log:?}").into_bytes()
    );
}

/// `poll_deliveries` and the persistent log observe the same stream: the
/// mailbox drains incrementally, the log keeps everything.
#[test]
fn mailbox_drains_what_the_log_keeps() {
    let mut sys = quickstart_system();
    let consumer = sys.connect(ClientId::new(1), 0).unwrap();
    consumer.subscribe(&mut sys, subscription()).unwrap();
    let producer = sys.connect(ClientId::new(2), 2).unwrap();
    sys.run_until(SimTime::from_millis(50));

    let mut polled = Vec::new();
    for i in 0..12u64 {
        producer.publish(&mut sys, vacancy(i)).unwrap();
        sys.run_until(SimTime::from_millis(50 + (i + 1) * 25));
        polled.extend(consumer.poll_deliveries(&mut sys).unwrap());
    }
    sys.run_until(SimTime::from_secs(2));
    polled.extend(consumer.poll_deliveries(&mut sys).unwrap());

    let log = consumer.log(&sys).unwrap();
    assert_eq!(polled.len(), log.len());
    assert_eq!(polled.as_slice(), log.deliveries());
}

/// Detach parks the stream at the border broker; a later move resumes it
/// without loss (the counterpart keeps buffering while detached).
#[test]
fn detach_then_move_resumes_the_stream() {
    let mut sys = quickstart_system();
    let consumer = sys.connect(ClientId::new(1), 0).unwrap();
    consumer.subscribe(&mut sys, subscription()).unwrap();
    let producer = sys.connect(ClientId::new(2), 2).unwrap();
    sys.run_until(SimTime::from_millis(50));

    for i in 0..4u64 {
        producer.publish(&mut sys, vacancy(i)).unwrap();
    }
    sys.run_until(SimTime::from_millis(200));
    consumer.detach(&mut sys).unwrap();
    sys.run_until(SimTime::from_millis(250));
    // Published while the consumer is offline: buffered by the counterpart.
    for i in 4..8u64 {
        producer.publish(&mut sys, vacancy(i)).unwrap();
    }
    sys.run_until(SimTime::from_millis(400));
    consumer.move_to(&mut sys, 1).unwrap();
    sys.run_until(SimTime::from_secs(12));

    let log = consumer.log(&sys).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(producer.client()),
        (1..=8).collect::<Vec<u64>>(),
        "offline publications must be replayed after re-attachment"
    );
}

/// Unsubscribing through a session stops the stream.
#[test]
fn unsubscribe_stops_the_stream() {
    let mut sys = quickstart_system();
    let consumer = sys.connect(ClientId::new(1), 0).unwrap();
    consumer.subscribe(&mut sys, subscription()).unwrap();
    let producer = sys.connect(ClientId::new(2), 2).unwrap();
    sys.run_until(SimTime::from_millis(50));

    producer.publish(&mut sys, vacancy(0)).unwrap();
    sys.run_until(SimTime::from_millis(200));
    consumer.unsubscribe(&mut sys, subscription()).unwrap();
    sys.run_until(SimTime::from_millis(300));
    producer.publish(&mut sys, vacancy(1)).unwrap();
    sys.run_until(SimTime::from_secs(1));

    let log = consumer.log(&sys).unwrap();
    assert_eq!(log.len(), 1, "only the pre-unsubscribe publication arrives");
}

/// Session operations on a client the system does not know fail with a
/// typed error (the handle outlives nothing — there is no dangling state).
#[test]
fn sessions_of_unknown_clients_error() {
    let mut a = quickstart_system();
    let mut b = quickstart_system();
    let foreign = a.connect(ClientId::new(7), 0).unwrap();
    // Using a session handle against a system that never connected the
    // client is reported, not a panic.
    assert_eq!(
        foreign.subscribe(&mut b, subscription()).unwrap_err(),
        RebecaError::UnknownClient(ClientId::new(7))
    );
    assert_eq!(
        foreign.poll_deliveries(&mut b).unwrap_err(),
        RebecaError::UnknownClient(ClientId::new(7))
    );
}
