//! The shared index engine behind [`FilterIndex`](crate::FilterIndex) and
//! [`ShardedFilterIndex`](crate::ShardedFilterIndex).
//!
//! An [`IndexCore`] owns one or more [`PredStore`] shards (attribute
//! partitions, interned constraints) plus the entry table mapping external
//! keys to indexed filters.  Attributes are assigned to shards by a fixed
//! FNV-1a hash of the attribute name, so the assignment is deterministic
//! across runs and independent of process hash seeds; with a single store
//! every attribute trivially lands in shard 0 and no hashing happens.
//!
//! # Single-notification matching
//!
//! [`IndexCore::for_each_match`] runs the classic counting walk: per
//! notification attribute, the owning shard's satisfied predicates are
//! enumerated and their posting lists bump per-entry counters in a
//! [`MatchScratch`]; an entry matches when its counter reaches its
//! constraint count.  Shards are walked sequentially into one scratch — the
//! partial per-shard counts merge by simple accumulation, so the result is
//! byte-identical to the unsharded walk.
//!
//! # Batch matching
//!
//! [`IndexCore::match_batch_fids`] matches up to 64 notifications per
//! *lane chunk* using per-predicate bitmasks: each satisfied predicate
//! accumulates a mask of the lanes satisfying it, and every posting list is
//! then walked **once per chunk** (folding the mask into a per-entry
//! AND-accumulator) instead of once per notification.  An entry matches
//! lane `j` exactly when all of its predicates were seen and bit `j`
//! survived the conjunction.  Chunks are independent, so a queue of
//! notifications fans out across `std::thread::scope` workers, one scratch
//! per worker.

use std::collections::{BTreeSet, HashMap};
use std::hash::Hash;

use rebeca_filter::{Filter, Notification};
use smallvec::SmallVec;

use crate::scratch::{with_thread_scratch, MatchScratch, LANE_COUNT};
use crate::store::PredStore;

/// Deterministic attribute → shard assignment (FNV-1a, fixed seed).
#[inline]
fn attr_hash(name: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Deterministic structural hash of a filter (`DefaultHasher` uses fixed
/// SipHash keys, and `Filter` iterates in canonical attribute order, so
/// equal filters always collide).  Used as the identity-bucket key; matches
/// are verified exactly, so hash collisions cost time, never correctness.
pub(crate) fn filter_fingerprint(filter: &Filter) -> u64 {
    use std::hash::Hasher;
    let mut h = std::collections::hash_map::DefaultHasher::new();
    filter.len().hash(&mut h);
    for (name, constraint) in filter.iter() {
        name.hash(&mut h);
        constraint.hash(&mut h);
    }
    h.finish()
}

/// Location of one constraint of an indexed filter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
struct PredRef {
    store: u32,
    attr: u32,
    pred: u32,
}

/// One indexed filter.
#[derive(Debug, Clone)]
struct IndexEntry<K> {
    key: K,
    constraint_count: u32,
    preds: Vec<PredRef>,
    /// Structural hash of the filter, keying the identity buckets.
    fingerprint: u64,
}

/// The sharded predicate index engine.
#[derive(Debug, Clone)]
pub(crate) struct IndexCore<K> {
    stores: Vec<PredStore>,
    keys: HashMap<K, u32>,
    entries: Vec<Option<IndexEntry<K>>>,
    free: Vec<u32>,
    /// Filters with zero constraints (they match everything and cover
    /// nothing but other universal filters); kept sorted for determinism.
    universal: BTreeSet<u32>,
    /// Identity buckets: structural filter hash → entries with that hash.
    /// `covers_any` answers a probe identical to any stored filter in
    /// O(|probe|) from here (covering is reflexive), which is the common
    /// case for subscription churn — crowds re-subscribing with the same
    /// handful of filters.
    identity: HashMap<u64, SmallVec<u32, 2>>,
}

impl<K> IndexCore<K> {
    pub(crate) fn with_shards(shards: usize) -> Self {
        let shards = shards.max(1);
        IndexCore {
            stores: (0..shards).map(|_| PredStore::default()).collect(),
            keys: HashMap::new(),
            entries: Vec::new(),
            free: Vec::new(),
            universal: BTreeSet::new(),
            identity: HashMap::new(),
        }
    }

    pub(crate) fn shard_count(&self) -> usize {
        self.stores.len()
    }

    #[inline]
    fn shard_of(&self, name: &str) -> usize {
        if self.stores.len() == 1 {
            0
        } else {
            (attr_hash(name) % self.stores.len() as u64) as usize
        }
    }

    #[inline]
    fn entry(&self, fid: u32) -> &IndexEntry<K> {
        self.entries[fid as usize].as_ref().expect("live entry")
    }

    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    pub(crate) fn predicate_count(&self) -> usize {
        self.stores.iter().map(PredStore::pred_count).sum()
    }

    pub(crate) fn interned_constraint_count(&self) -> usize {
        self.stores.iter().map(PredStore::interned_count).sum()
    }
}

impl<K: Eq + Hash + Clone> IndexCore<K> {
    pub(crate) fn contains_key(&self, key: &K) -> bool {
        self.keys.contains_key(key)
    }

    pub(crate) fn insert(&mut self, key: K, filter: &Filter) {
        if self.keys.contains_key(&key) {
            self.remove(&key);
        }
        let fid = match self.free.pop() {
            Some(fid) => fid,
            None => {
                self.entries.push(None);
                (self.entries.len() - 1) as u32
            }
        };
        let solo = filter.len() == 1;
        let mut preds = Vec::with_capacity(filter.len());
        for (name, constraint) in filter.iter() {
            let store_id = self.shard_of(name);
            let store = &mut self.stores[store_id];
            let attr = store.ensure_attr(name);
            let pred = store.add_constraint(attr, constraint, fid, solo);
            preds.push(PredRef {
                store: store_id as u32,
                attr,
                pred,
            });
        }
        if preds.is_empty() {
            self.universal.insert(fid);
        }
        let fingerprint = filter_fingerprint(filter);
        self.identity.entry(fingerprint).or_default().push(fid);
        self.entries[fid as usize] = Some(IndexEntry {
            key: key.clone(),
            constraint_count: preds.len() as u32,
            preds,
            fingerprint,
        });
        self.keys.insert(key, fid);
    }

    pub(crate) fn remove(&mut self, key: &K) -> bool {
        let Some(fid) = self.keys.remove(key) else {
            return false;
        };
        let entry = self.entries[fid as usize].take().expect("live entry");
        let solo = entry.constraint_count == 1;
        for PredRef { store, attr, pred } in entry.preds {
            self.stores[store as usize].remove_constraint(attr, pred, fid, solo);
        }
        let bucket = self
            .identity
            .get_mut(&entry.fingerprint)
            .expect("identity bucket");
        let pos = bucket
            .iter()
            .position(|&f| f == fid)
            .expect("fid in identity bucket");
        bucket.remove(pos);
        if bucket.is_empty() {
            self.identity.remove(&entry.fingerprint);
        }
        self.universal.remove(&fid);
        self.free.push(fid);
        true
    }

    /// `true` when a stored filter is structurally identical to `filter`.
    ///
    /// Resolves the probe's constraints against the shard stores (pure
    /// lookups, no interning) and compares the resulting predicate list
    /// against each entry in the probe's identity bucket — `Filter`
    /// iterates in canonical attribute order, so equal filters resolve to
    /// equal predicate lists in equal order.
    pub(crate) fn has_identical(&self, filter: &Filter) -> bool {
        let Some(bucket) = self.identity.get(&filter_fingerprint(filter)) else {
            return false;
        };
        let mut resolved: SmallVec<PredRef, 8> = SmallVec::new();
        for (name, constraint) in filter.iter() {
            let store_id = self.shard_of(name);
            let store = &self.stores[store_id];
            let Some(attr) = store.attr_id(name) else {
                return false;
            };
            let Some(pred) = store.resolve_pred(attr, constraint) else {
                return false;
            };
            resolved.push(PredRef {
                store: store_id as u32,
                attr,
                pred,
            });
        }
        bucket.iter().any(|&fid| {
            let entry = self.entry(fid);
            entry.constraint_count as usize == resolved.len()
                && entry.preds.as_slice() == resolved.as_slice()
        })
    }

    pub(crate) fn clear(&mut self) {
        *self = IndexCore::with_shards(self.stores.len());
    }

    /// Visits the key of every matching filter: universal filters first (in
    /// insertion-slot order), then each remaining match once, in the
    /// deterministic order its counter completes during the walk.
    pub(crate) fn for_each_match<'a>(
        &'a self,
        notification: &Notification,
        scratch: &mut MatchScratch,
        visit: &mut impl FnMut(&'a K),
    ) {
        for &fid in &self.universal {
            visit(&self.entry(fid).key);
        }
        scratch.begin(self.entries.len());
        for (name, value) in notification.iter() {
            let store = &self.stores[self.shard_of(name)];
            let Some(attr_id) = store.attr_id(name) else {
                continue;
            };
            store.for_each_satisfied(attr_id, value, &mut |pred| {
                for &fid in &pred.postings {
                    let entry = self.entry(fid);
                    if scratch.bump(fid) == entry.constraint_count {
                        visit(&entry.key);
                    }
                }
            });
        }
    }

    pub(crate) fn matching_keys<'a>(
        &'a self,
        notification: &Notification,
        scratch: &mut MatchScratch,
    ) -> Vec<&'a K> {
        let mut result = Vec::new();
        self.for_each_match(notification, scratch, &mut |k| result.push(k));
        result
    }

    pub(crate) fn any_match(
        &self,
        notification: &Notification,
        scratch: &mut MatchScratch,
    ) -> bool {
        if !self.universal.is_empty() {
            return true;
        }
        scratch.begin(self.entries.len());
        for (name, value) in notification.iter() {
            let store = &self.stores[self.shard_of(name)];
            let Some(attr_id) = store.attr_id(name) else {
                continue;
            };
            let mut found = false;
            store.for_each_satisfied(attr_id, value, &mut |pred| {
                if found {
                    return;
                }
                for &fid in &pred.postings {
                    if scratch.bump(fid) == self.entry(fid).constraint_count {
                        found = true;
                        return;
                    }
                }
            });
            if found {
                return true;
            }
        }
        false
    }

    fn keys_of(&self, mut fids: Vec<u32>) -> Vec<&K> {
        fids.sort_unstable();
        fids.iter().map(|&fid| &self.entry(fid).key).collect()
    }

    /// Keys of **exactly** the stored filters covering `filter`, sorted by
    /// insertion slot.
    pub(crate) fn covering_keys(&self, filter: &Filter, scratch: &mut MatchScratch) -> Vec<&K> {
        let mut fids: Vec<u32> = self.universal.iter().copied().collect();
        scratch.begin(self.entries.len());
        for (name, constraint) in filter.iter() {
            let store = &self.stores[self.shard_of(name)];
            let Some(attr_id) = store.attr_id(name) else {
                continue;
            };
            store.for_each_covering(attr_id, constraint, &mut |pred| {
                for &fid in &pred.postings {
                    if scratch.bump(fid) == self.entry(fid).constraint_count {
                        fids.push(fid);
                    }
                }
            });
        }
        self.keys_of(fids)
    }

    /// `true` when at least one stored filter covers `filter`.
    ///
    /// Fast paths, in order: a stored universal filter covers everything; a
    /// stored filter identical to the probe covers it reflexively (one hash
    /// lookup); a stored single-constraint filter covering one probe
    /// constraint covers the whole probe (answered by the per-attribute
    /// covering summaries).  Only when all three miss does the counting
    /// walk over the covering partitions run.
    pub(crate) fn covers_any(&self, filter: &Filter, scratch: &mut MatchScratch) -> bool {
        if !self.universal.is_empty() {
            return true;
        }
        if self.has_identical(filter) {
            return true;
        }
        for (name, constraint) in filter.iter() {
            let store = &self.stores[self.shard_of(name)];
            if let Some(attr_id) = store.attr_id(name) {
                if store.solo_covers(attr_id, constraint) {
                    return true;
                }
            }
        }
        scratch.begin(self.entries.len());
        for (name, constraint) in filter.iter() {
            let store = &self.stores[self.shard_of(name)];
            let Some(attr_id) = store.attr_id(name) else {
                continue;
            };
            let mut found = false;
            store.for_each_covering(attr_id, constraint, &mut |pred| {
                if found {
                    return;
                }
                for &fid in &pred.postings {
                    if scratch.bump(fid) == self.entry(fid).constraint_count {
                        found = true;
                        return;
                    }
                }
            });
            if found {
                return true;
            }
        }
        false
    }

    /// Keys of **exactly** the stored filters `filter` covers, sorted by
    /// insertion slot.
    ///
    /// Runs an *anchored* walk: a covered filter must constrain every probe
    /// attribute, so only the probe attribute with the smallest candidate
    /// posting volume is enumerated, and each candidate is verified exactly
    /// against the remaining probe constraints through its own predicate
    /// list.  With a selective anchor (e.g. the group id of a subscription
    /// class) the walk is proportional to the covered group's size, not to
    /// the table size.
    pub(crate) fn covered_keys(&self, filter: &Filter) -> Vec<&K> {
        if filter.is_empty() {
            // The universal filter covers everything.
            return self.keys_of(self.keys.values().copied().collect());
        }
        let mut probes = Vec::with_capacity(filter.len());
        for (name, constraint) in filter.iter() {
            let store_id = self.shard_of(name);
            let Some(attr_id) = self.stores[store_id].attr_id(name) else {
                // Some attribute of `filter` is constrained by no stored
                // filter at all — nothing can be covered.
                return Vec::new();
            };
            probes.push((store_id as u32, attr_id, constraint));
        }
        let anchor = probes
            .iter()
            .enumerate()
            .min_by_key(|&(_, &(s, a, c))| self.stores[s as usize].covered_volume(a, c))
            .map(|(i, _)| i)
            .expect("non-empty probe");
        let (astore, aattr, aconstraint) = probes[anchor];
        let mut fids = Vec::new();
        self.stores[astore as usize].for_each_covered(aattr, aconstraint, &mut |pred| {
            'candidate: for &fid in &pred.postings {
                let entry = self.entry(fid);
                if (entry.constraint_count as usize) < probes.len() {
                    continue;
                }
                for (i, &(s, a, c)) in probes.iter().enumerate() {
                    if i == anchor {
                        // The anchor constraint was verified by the walk.
                        continue;
                    }
                    let Some(pr) = entry.preds.iter().find(|p| p.store == s && p.attr == a) else {
                        continue 'candidate;
                    };
                    if !c.covers(self.stores[s as usize].constraint_of(a, pr.pred)) {
                        continue 'candidate;
                    }
                }
                fids.push(fid);
            }
        });
        self.keys_of(fids)
    }

    /// Keys of the stored filters constraining **exactly** the same
    /// attribute set as `filter`, sorted by insertion slot.
    pub(crate) fn same_attr_keys(&self, filter: &Filter, scratch: &mut MatchScratch) -> Vec<&K> {
        if filter.is_empty() {
            return self.keys_of(self.universal.iter().copied().collect());
        }
        let needed = filter.len() as u32;
        let mut fids = Vec::new();
        scratch.begin(self.entries.len());
        for (name, _) in filter.iter() {
            let store = &self.stores[self.shard_of(name)];
            let Some(attr_id) = store.attr_id(name) else {
                return Vec::new();
            };
            for fid in store.attr_filters(attr_id) {
                let entry = self.entry(fid);
                // Reaching `needed` hits means the filter constrains every
                // attribute of the probe; an equal constraint count then
                // means it constrains nothing else.
                if scratch.bump(fid) == needed && entry.constraint_count == needed {
                    fids.push(fid);
                }
            }
        }
        self.keys_of(fids)
    }

    /// Matches one chunk of at most [`LANE_COUNT`] notifications, returning
    /// each lane's matching keys in insertion-slot order.
    fn match_chunk_keys<'a, N: std::borrow::Borrow<Notification>>(
        &'a self,
        chunk: &[N],
        scratch: &mut MatchScratch,
    ) -> Vec<Vec<&'a K>> {
        debug_assert!(chunk.len() <= LANE_COUNT);
        scratch.begin_entries_batch(self.entries.len());
        // Every store's predicate slots are mapped into one dense scratch
        // range (`base[s] + slot`), so a single pass over each lane's
        // attributes — one shard lookup per attribute — marks masks for all
        // shards at once.
        let mut bases = Vec::with_capacity(self.stores.len());
        let mut total_slots = 0usize;
        for store in &self.stores {
            bases.push(total_slots as u32);
            total_slots += store.mask_slot_count();
        }
        scratch.begin_preds(total_slots);
        {
            // Phase 1: per-predicate lane masks.  A predicate satisfied by
            // several lanes accumulates all their bits before its postings
            // are touched at all.
            let MatchScratch {
                pred_stamps,
                pred_masks,
                pred_epoch,
                touched_preds,
                ..
            } = scratch;
            let epoch = *pred_epoch;
            for (lane, n) in chunk.iter().enumerate() {
                let lane_bit = 1u64 << lane;
                for (name, value) in n.borrow().iter() {
                    let store_id = self.shard_of(name);
                    let store = &self.stores[store_id];
                    let Some(attr_id) = store.attr_id(name) else {
                        continue;
                    };
                    let base = bases[store_id];
                    store.for_each_satisfied(attr_id, value, &mut |pred| {
                        let slot = (base + pred.mask_slot) as usize;
                        if pred_stamps[slot] == epoch {
                            pred_masks[slot] |= lane_bit;
                        } else {
                            pred_stamps[slot] = epoch;
                            pred_masks[slot] = lane_bit;
                            touched_preds.push((store_id as u32, attr_id, pred.id));
                        }
                    });
                }
            }
        }
        {
            // Phase 2: fold each touched predicate's mask into its postings'
            // conjunction accumulators — one posting-list walk per chunk.
            // Dense chunks (most entries touched) stop recording touched
            // entries once the harvest would switch to a linear stamp scan
            // anyway.
            let MatchScratch {
                pred_masks,
                touched_preds,
                entry_stamps,
                entry_masks,
                entry_counts,
                entry_epoch,
                touched_entries,
                ..
            } = scratch;
            let epoch = *entry_epoch;
            let dense_limit = self.entries.len() / 8;
            for &(store_id, attr_id, pred_id) in touched_preds.iter() {
                let store = &self.stores[store_id as usize];
                let pred = store.pred(attr_id, pred_id);
                let mask = pred_masks[(bases[store_id as usize] + pred.mask_slot) as usize];
                for &fid in pred.postings.as_slice() {
                    let f = fid as usize;
                    if entry_stamps[f] == epoch {
                        entry_masks[f] &= mask;
                        entry_counts[f] += 1;
                    } else {
                        entry_stamps[f] = epoch;
                        entry_masks[f] = mask;
                        entry_counts[f] = 1;
                        if touched_entries.len() <= dense_limit {
                            touched_entries.push(fid);
                        }
                    }
                }
            }
        }
        // Harvest: an entry matches lane `j` when every one of its
        // predicates was satisfied by some lane (count reached) and bit `j`
        // survived the conjunction.  Universal entries match every lane.
        let full: u64 = if chunk.len() == LANE_COUNT {
            u64::MAX
        } else {
            (1u64 << chunk.len()) - 1
        };
        let mut candidates: Vec<(u32, u64, &K)> = Vec::new();
        let push_candidate =
            |candidates: &mut Vec<(u32, u64, &'a K)>, scratch: &MatchScratch, fid: u32| {
                let f = fid as usize;
                let mask = scratch.entry_masks[f];
                if mask != 0 {
                    let entry = self.entry(fid);
                    if scratch.entry_counts[f] == entry.constraint_count {
                        candidates.push((fid, mask, &entry.key));
                    }
                }
            };
        // Candidates must come out in insertion-slot order.  When most
        // entries were touched, a linear scan over the stamp array is far
        // cheaper than sorting the touched list (phase 2 stops recording
        // past that threshold); when few were, sorting the short list wins.
        if scratch.touched_entries.len() * 8 >= self.entries.len() {
            for f in 0..self.entries.len() {
                if scratch.entry_stamps[f] == scratch.entry_epoch {
                    push_candidate(&mut candidates, scratch, f as u32);
                }
            }
        } else {
            let mut touched_entries = std::mem::take(&mut scratch.touched_entries);
            touched_entries.sort_unstable();
            for &fid in &touched_entries {
                push_candidate(&mut candidates, scratch, fid);
            }
            scratch.touched_entries = touched_entries;
        }
        if !self.universal.is_empty() {
            candidates.extend(
                self.universal
                    .iter()
                    .map(|&fid| (fid, full, &self.entry(fid).key)),
            );
            candidates.sort_unstable_by_key(|&(fid, _, _)| fid);
        }
        let mut out: Vec<Vec<&'a K>> = (0..chunk.len()).map(|_| Vec::new()).collect();
        for (_, mask, key) in candidates {
            let mut m = mask;
            while m != 0 {
                let lane = m.trailing_zeros() as usize;
                out[lane].push(key);
                m &= m - 1;
            }
        }
        out
    }

    /// Matches every notification of `ns`, fanning lane chunks across
    /// `workers` scoped threads (sequential when `workers <= 1` or the
    /// batch fits one chunk).  Per-lane results are keys in insertion-slot
    /// order.
    pub(crate) fn match_batch<'a, N>(&'a self, ns: &[N], workers: usize) -> Vec<Vec<&'a K>>
    where
        N: std::borrow::Borrow<Notification> + Sync,
        K: Sync,
    {
        let chunks: Vec<&[N]> = ns.chunks(LANE_COUNT).collect();
        let workers = workers.clamp(1, chunks.len().max(1));
        if workers <= 1 {
            return with_thread_scratch(|scratch| {
                let mut out = Vec::with_capacity(ns.len());
                for chunk in chunks {
                    out.extend(self.match_chunk_keys(chunk, scratch));
                }
                out
            });
        }
        // Deal chunks round-robin so workers stay balanced even when the
        // queue length is not a multiple of the worker count.
        type ChunkSlot<'s, 'a, K> = (usize, &'s mut Vec<Vec<&'a K>>);
        let mut results: Vec<Vec<Vec<&'a K>>> = Vec::with_capacity(chunks.len());
        results.resize_with(chunks.len(), Vec::new);
        std::thread::scope(|scope| {
            let mut worker_slots: Vec<Vec<ChunkSlot<'_, 'a, K>>> =
                (0..workers).map(|_| Vec::new()).collect();
            for (i, slot) in results.iter_mut().enumerate() {
                worker_slots[i % workers].push((i, slot));
            }
            for assigned in worker_slots {
                let chunks = &chunks;
                scope.spawn(move || {
                    let mut scratch = MatchScratch::new();
                    for (i, slot) in assigned {
                        *slot = self.match_chunk_keys(chunks[i], &mut scratch);
                    }
                });
            }
        });
        results.into_iter().flatten().collect()
    }
}

/// Default worker count for auto-parallel batch matching.
pub(crate) fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}
