//! First-class network addressing: the `host:port` endpoint of a broker or
//! client process.
//!
//! Topology config files and the `rebeca-node` command line address nodes
//! by [`Endpoint`] instead of raw socket addresses, so typos surface as
//! typed parse errors before any socket is opened.

use std::fmt;
use std::net::{SocketAddr, ToSocketAddrs};
use std::str::FromStr;

/// A `host:port` network endpoint.
///
/// The host may be a hostname, an IPv4 address, or a bracketed IPv6 address
/// (`[::1]:7000`); resolution happens at connect time via
/// [`Endpoint::socket_addr`].
///
/// ```
/// use rebeca_net::Endpoint;
///
/// let ep: Endpoint = "127.0.0.1:7101".parse().unwrap();
/// assert_eq!(ep.host(), "127.0.0.1");
/// assert_eq!(ep.port(), 7101);
/// assert_eq!(ep.to_string(), "127.0.0.1:7101");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Endpoint {
    host: String,
    port: u16,
}

impl Endpoint {
    /// Creates an endpoint from a host and port.
    pub fn new(host: impl Into<String>, port: u16) -> Self {
        Self {
            host: host.into(),
            port,
        }
    }

    /// The host part (hostname or IP literal, without IPv6 brackets).
    pub fn host(&self) -> &str {
        &self.host
    }

    /// The port part.
    pub fn port(&self) -> u16 {
        self.port
    }

    /// Resolves the endpoint to a socket address (the first resolution
    /// result is used).
    pub fn socket_addr(&self) -> std::io::Result<SocketAddr> {
        let rendered = self.to_string();
        rendered
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::other(format!("{rendered} resolved to no address")))
    }
}

impl fmt::Display for Endpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.host.contains(':') {
            write!(f, "[{}]:{}", self.host, self.port)
        } else {
            write!(f, "{}:{}", self.host, self.port)
        }
    }
}

/// Error parsing an [`Endpoint`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseEndpointError {
    /// The string has no `:` separating host from port.
    MissingPort(String),
    /// The host part is empty.
    EmptyHost(String),
    /// The port part is not a valid `u16`.
    BadPort(String),
    /// The host looks like a bare IPv6 literal; brackets are required to
    /// disambiguate the port separator (`[::1]:80`).
    UnbracketedIpv6(String),
}

impl fmt::Display for ParseEndpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseEndpointError::MissingPort(s) => {
                write!(f, "endpoint {s:?} has no :port suffix")
            }
            ParseEndpointError::EmptyHost(s) => write!(f, "endpoint {s:?} has an empty host"),
            ParseEndpointError::BadPort(s) => {
                write!(f, "endpoint {s:?} has an invalid port (expected 0-65535)")
            }
            ParseEndpointError::UnbracketedIpv6(s) => {
                write!(
                    f,
                    "endpoint {s:?} looks like a bare IPv6 literal; write it as [addr]:port"
                )
            }
        }
    }
}

impl std::error::Error for ParseEndpointError {}

impl FromStr for Endpoint {
    type Err = ParseEndpointError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        // `[v6]:port` or `host:port` (split at the LAST colon so bare IPv6
        // literals without brackets fail loudly instead of mis-splitting).
        let (host, port) = match s.strip_prefix('[') {
            Some(rest) => {
                let end = rest
                    .find(']')
                    .ok_or_else(|| ParseEndpointError::MissingPort(s.to_string()))?;
                let host = &rest[..end];
                let after = rest[end + 1..]
                    .strip_prefix(':')
                    .ok_or_else(|| ParseEndpointError::MissingPort(s.to_string()))?;
                (host, after)
            }
            None => {
                let (host, port) = s
                    .rsplit_once(':')
                    .ok_or_else(|| ParseEndpointError::MissingPort(s.to_string()))?;
                if host.contains(':') {
                    // Only a bracketed host may contain colons; a bare IPv6
                    // literal would otherwise silently mis-split at its
                    // last group.
                    return Err(ParseEndpointError::UnbracketedIpv6(s.to_string()));
                }
                (host, port)
            }
        };
        if host.is_empty() {
            return Err(ParseEndpointError::EmptyHost(s.to_string()));
        }
        let port = port
            .parse::<u16>()
            .map_err(|_| ParseEndpointError::BadPort(s.to_string()))?;
        Ok(Endpoint::new(host, port))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_host_port_pairs() {
        let ep: Endpoint = "127.0.0.1:7101".parse().unwrap();
        assert_eq!(ep, Endpoint::new("127.0.0.1", 7101));
        let named: Endpoint = "localhost:80".parse().unwrap();
        assert_eq!(named.host(), "localhost");
        assert_eq!(named.port(), 80);
    }

    #[test]
    fn parses_bracketed_ipv6() {
        let ep: Endpoint = "[::1]:7000".parse().unwrap();
        assert_eq!(ep.host(), "::1");
        assert_eq!(ep.port(), 7000);
        assert_eq!(ep.to_string(), "[::1]:7000");
        assert_eq!(ep.to_string().parse::<Endpoint>().unwrap(), ep);
    }

    #[test]
    fn display_roundtrips() {
        for s in ["127.0.0.1:7101", "example.org:443", "[::1]:9"] {
            let ep: Endpoint = s.parse().unwrap();
            assert_eq!(ep.to_string(), s);
            assert_eq!(ep.to_string().parse::<Endpoint>().unwrap(), ep);
        }
    }

    #[test]
    fn rejects_malformed_endpoints() {
        assert!(matches!(
            "localhost".parse::<Endpoint>(),
            Err(ParseEndpointError::MissingPort(_))
        ));
        assert!(matches!(
            ":80".parse::<Endpoint>(),
            Err(ParseEndpointError::EmptyHost(_))
        ));
        assert!(matches!(
            "host:notaport".parse::<Endpoint>(),
            Err(ParseEndpointError::BadPort(_))
        ));
        assert!(matches!(
            "host:70000".parse::<Endpoint>(),
            Err(ParseEndpointError::BadPort(_))
        ));
        assert!(matches!(
            "[::1:80".parse::<Endpoint>(),
            Err(ParseEndpointError::MissingPort(_))
        ));
        // Bare IPv6 literals must be bracketed — the last-colon split would
        // otherwise silently produce a bogus host.
        assert!(matches!(
            "::1:80".parse::<Endpoint>(),
            Err(ParseEndpointError::UnbracketedIpv6(_))
        ));
        assert!(matches!(
            "2001:db8::1".parse::<Endpoint>(),
            Err(ParseEndpointError::UnbracketedIpv6(_))
        ));
        // Errors render the offending input.
        let err = "localhost".parse::<Endpoint>().unwrap_err();
        assert!(err.to_string().contains("localhost"));
    }

    #[test]
    fn loopback_resolves() {
        let ep: Endpoint = "127.0.0.1:7101".parse().unwrap();
        let addr = ep.socket_addr().unwrap();
        assert_eq!(addr.port(), 7101);
        assert!(addr.ip().is_loopback());
    }
}
