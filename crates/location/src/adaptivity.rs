//! The adaptivity scheme of Section 5.3: deriving the per-hop uncertainty
//! steps `q_i` from the client residence time `Δ` and the per-hop
//! subscription-processing delays `δ_i`.
//!
//! Along a producer→consumer path with brokers `B_1 … B_k`, the filter on the
//! link between `B_i` and `B_{i+1}` is set to `F_i = ploc(x, q_i)` where `x`
//! is the consumer's current location.  The paper's rule for choosing `q_i`
//! is:
//!
//! > Whenever the sum of `δ_i` results in a value larger than the next
//! > multiple of `Δ` then the value of `ploc` must "take a step".
//!
//! In addition the algorithm always provides information for "the next" user
//! location (so every non-client-side hop has at least one step of
//! uncertainty), which makes the trivial *global sub/unsub* and *flooding*
//! implementations the two degenerate instances of the scheme (Table 3).

use std::collections::BTreeSet;

use serde::{Deserialize, Serialize};

use crate::graph::MovementGraph;
use crate::space::LocationId;

/// Sentinel used for "all locations" (flooding) hops.
const UNBOUNDED: usize = usize::MAX;

/// Per-hop uncertainty steps `q_0, q_1, …, q_k` for one producer→consumer
/// path.
///
/// Index 0 is the *client-side filter* at the consumer's local broker, which
/// always does perfect filtering (`q_0 = 0`); index `i ≥ 1` is the filter on
/// the link between broker `B_i` and `B_{i+1}`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdaptivityPlan {
    steps: Vec<usize>,
}

impl AdaptivityPlan {
    /// Computes the plan for a client that stays `delta_micros` at each
    /// location, over a path whose hop-wise subscription-processing delays
    /// are `hop_delays_micros` (`δ_1 … δ_k`, in path order starting at the
    /// consumer's local broker).
    ///
    /// `q_0 = 0` and for `i ≥ 1`
    /// `q_i = max(1, |{ j ≥ 1 : j·Δ < δ_1 + … + δ_i }|)`.
    ///
    /// # Panics
    ///
    /// Panics when `delta_micros` is zero (an infinitely fast client; use
    /// [`AdaptivityPlan::flooding`] for that limit).
    pub fn adaptive(delta_micros: u64, hop_delays_micros: &[u64]) -> Self {
        assert!(delta_micros > 0, "residence time Δ must be positive");
        let mut steps = Vec::with_capacity(hop_delays_micros.len() + 1);
        steps.push(0);
        let mut prefix_sum = 0u64;
        for &delay in hop_delays_micros {
            prefix_sum = prefix_sum.saturating_add(delay);
            // Number of positive multiples of Δ strictly below the prefix sum.
            let exceeded = if prefix_sum == 0 {
                0
            } else {
                ((prefix_sum - 1) / delta_micros) as usize
            };
            steps.push(exceeded.max(1));
        }
        Self { steps }
    }

    /// The trivial *global sub/unsub* plan (top of Table 3): the client moves
    /// slowly enough that one step of uncertainty per hop suffices
    /// (`q_i = 1` for all `i ≥ 1`).
    pub fn global_sub_unsub(hops: usize) -> Self {
        let mut steps = vec![1; hops + 1];
        steps[0] = 0;
        Self { steps }
    }

    /// The *flooding* plan (bottom of Table 3): every non-client-side hop
    /// subscribes to every location (`q_i = ∞`).
    pub fn flooding(hops: usize) -> Self {
        let mut steps = vec![UNBOUNDED; hops + 1];
        steps[0] = 0;
        Self { steps }
    }

    /// The plan of the Section 5.2 example (Table 2): one additional step of
    /// uncertainty per hop, `q_i = i`.
    pub fn one_step_per_hop(hops: usize) -> Self {
        Self {
            steps: (0..=hops).collect(),
        }
    }

    /// Reassembles a plan from raw per-hop steps (as returned by
    /// [`AdaptivityPlan::steps`]) — the inverse used by wire codecs that
    /// ship plans between processes.
    pub fn from_steps(steps: Vec<usize>) -> Self {
        Self { steps }
    }

    /// The uncertainty steps, index 0 being the client-side filter.
    pub fn steps(&self) -> &[usize] {
        &self.steps
    }

    /// Number of hops covered by the plan (`k`; the plan has `k + 1`
    /// entries).
    pub fn hops(&self) -> usize {
        self.steps.len().saturating_sub(1)
    }

    /// The uncertainty step for hop `i`.  Paths longer than the plan reuse
    /// the last entry (the plan saturates).
    pub fn step_at(&self, hop: usize) -> usize {
        self.steps
            .get(hop)
            .or(self.steps.last())
            .copied()
            .unwrap_or(0)
    }

    /// `true` when hop `i` should subscribe to every location (flooding).
    pub fn is_unbounded(&self, hop: usize) -> bool {
        self.step_at(hop) == UNBOUNDED
    }

    /// Computes the concrete location sets `F_i = ploc(x, q_i)` for every hop
    /// of the plan, for a client currently at `x`.
    ///
    /// Unbounded hops map to the full location set of the movement graph.
    pub fn location_sets(&self, graph: &MovementGraph, x: LocationId) -> Vec<BTreeSet<LocationId>> {
        self.steps
            .iter()
            .map(|&q| {
                if q == UNBOUNDED {
                    graph.all_locations()
                } else {
                    graph.ploc(x, q)
                }
            })
            .collect()
    }

    /// The location set for a single hop (see [`AdaptivityPlan::location_sets`]).
    pub fn location_set_at(
        &self,
        graph: &MovementGraph,
        x: LocationId,
        hop: usize,
    ) -> BTreeSet<LocationId> {
        let q = self.step_at(hop);
        if q == UNBOUNDED {
            graph.all_locations()
        } else {
            graph.ploc(x, q)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_timing_example_reproduces_table_4_steps() {
        // Δ = 100 ms, δ = [120, 50, 50, 20] ms (Section 5.3 / Figure 8).
        let plan = AdaptivityPlan::adaptive(100_000, &[120_000, 50_000, 50_000, 20_000]);
        assert_eq!(plan.steps(), &[0, 1, 1, 2, 2]);
    }

    #[test]
    fn table_4_location_sets_match_the_paper() {
        let g = MovementGraph::paper_example();
        let plan = AdaptivityPlan::adaptive(100_000, &[120_000, 50_000, 50_000]);
        // steps = [0, 1, 1, 2]; rows of Table 4 for x = a:
        let a = g.space().id("a").unwrap();
        let sets = plan.location_sets(&g, a);
        let names = |s: &BTreeSet<LocationId>| {
            s.iter()
                .map(|l| g.space().name(*l).unwrap().to_string())
                .collect::<Vec<_>>()
        };
        assert_eq!(names(&sets[0]), ["a"]);
        assert_eq!(names(&sets[1]), ["a", "b", "c"]);
        assert_eq!(names(&sets[2]), ["a", "b", "c"]);
        assert_eq!(names(&sets[3]), ["a", "b", "c", "d"]);
    }

    #[test]
    fn slow_client_degenerates_to_global_sub_unsub() {
        // All hop delays far below Δ: every hop gets exactly one step.
        let plan = AdaptivityPlan::adaptive(10_000_000, &[5_000, 5_000, 5_000]);
        assert_eq!(plan.steps(), AdaptivityPlan::global_sub_unsub(3).steps());
    }

    #[test]
    fn fast_client_approaches_flooding() {
        // Δ = 1 ms, δ_i = 100 ms: uncertainty grows by ~100 per hop.
        let plan = AdaptivityPlan::adaptive(1_000, &[100_000, 100_000]);
        assert_eq!(plan.step_at(1), 99);
        assert_eq!(plan.step_at(2), 199);
        // On a small graph this is effectively flooding.
        let g = MovementGraph::paper_example();
        let a = g.space().id("a").unwrap();
        assert_eq!(plan.location_set_at(&g, a, 1), g.all_locations());
    }

    #[test]
    fn flooding_plan_subscribes_everywhere_except_client_side() {
        let g = MovementGraph::paper_example();
        let a = g.space().id("a").unwrap();
        let plan = AdaptivityPlan::flooding(3);
        let sets = plan.location_sets(&g, a);
        assert_eq!(sets[0].len(), 1);
        for s in &sets[1..] {
            assert_eq!(s, &g.all_locations());
        }
        assert!(plan.is_unbounded(1));
        assert!(!plan.is_unbounded(0));
    }

    #[test]
    fn one_step_per_hop_reproduces_table_2_column_structure() {
        let plan = AdaptivityPlan::one_step_per_hop(3);
        assert_eq!(plan.steps(), &[0, 1, 2, 3]);
        let g = MovementGraph::paper_example();
        let a = g.space().id("a").unwrap();
        let sets = plan.location_sets(&g, a);
        assert_eq!(sets[0].len(), 1); // {a}
        assert_eq!(sets[1].len(), 3); // {a,b,c}
        assert_eq!(sets[2].len(), 4); // {a,b,c,d}
        assert_eq!(sets[3].len(), 4);
    }

    #[test]
    fn step_at_saturates_beyond_the_plan() {
        let plan = AdaptivityPlan::one_step_per_hop(2);
        assert_eq!(plan.step_at(5), 2);
        assert_eq!(plan.hops(), 2);
    }

    #[test]
    fn boundary_multiple_of_delta_does_not_take_a_step() {
        // Prefix sum exactly equal to a multiple of Δ does not exceed it.
        let plan = AdaptivityPlan::adaptive(100, &[100, 100]);
        assert_eq!(plan.steps(), &[0, 1, 1]);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_delta_panics() {
        AdaptivityPlan::adaptive(0, &[10]);
    }

    #[test]
    fn monotonicity_of_steps() {
        // Steps never decrease along the path (prefix sums only grow).
        let plan = AdaptivityPlan::adaptive(50, &[30, 80, 10, 200, 5]);
        let steps = plan.steps();
        for w in steps.windows(2).skip(1) {
            assert!(w[0] <= w[1], "steps must be non-decreasing: {steps:?}");
        }
    }
}
