//! Link delay models.
//!
//! The paper postulates no upper bound on message delivery delay but assumes
//! that delays follow some probability distribution so that an expected
//! delivery time can be computed.  Links in the simulator sample their
//! per-message delay from one of these models; the seeded random number
//! generator lives in the network, so simulations stay deterministic.

use rand::Rng;
use serde::{Deserialize, Serialize};

use crate::time::SimDuration;

/// A distribution of per-message link delays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DelayModel {
    /// Every message takes exactly this many microseconds.
    Constant(u64),
    /// Delays are drawn uniformly from `[min_micros, max_micros]`.
    Uniform {
        /// Smallest possible delay in microseconds.
        min_micros: u64,
        /// Largest possible delay in microseconds.
        max_micros: u64,
    },
    /// A base delay plus uniformly distributed jitter in
    /// `[0, jitter_micros]`.
    Jittered {
        /// Deterministic part of the delay in microseconds.
        base_micros: u64,
        /// Maximum additional jitter in microseconds.
        jitter_micros: u64,
    },
}

impl DelayModel {
    /// A constant delay given in milliseconds (the unit the paper uses for
    /// its `t_d` and `δ_i` examples).
    pub const fn constant_millis(millis: u64) -> Self {
        DelayModel::Constant(millis * 1_000)
    }

    /// Samples one delay.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> SimDuration {
        let micros = match *self {
            DelayModel::Constant(c) => c,
            DelayModel::Uniform {
                min_micros,
                max_micros,
            } => {
                if min_micros >= max_micros {
                    min_micros
                } else {
                    rng.gen_range(min_micros..=max_micros)
                }
            }
            DelayModel::Jittered {
                base_micros,
                jitter_micros,
            } => base_micros + rng.gen_range(0..=jitter_micros),
        };
        SimDuration::from_micros(micros)
    }

    /// The smallest delay the model can produce.
    pub fn min_micros(&self) -> u64 {
        match *self {
            DelayModel::Constant(c) => c,
            DelayModel::Uniform { min_micros, .. } => min_micros,
            DelayModel::Jittered { base_micros, .. } => base_micros,
        }
    }

    /// The largest delay the model can produce.
    pub fn max_micros(&self) -> u64 {
        match *self {
            DelayModel::Constant(c) => c,
            DelayModel::Uniform {
                min_micros,
                max_micros,
            } => max_micros.max(min_micros),
            DelayModel::Jittered {
                base_micros,
                jitter_micros,
            } => base_micros + jitter_micros,
        }
    }

    /// The expected (mean) delay of the model in microseconds.
    pub fn mean_micros(&self) -> u64 {
        match *self {
            DelayModel::Constant(c) => c,
            DelayModel::Uniform {
                min_micros,
                max_micros,
            } => (min_micros + max_micros.max(min_micros)) / 2,
            DelayModel::Jittered {
                base_micros,
                jitter_micros,
            } => base_micros + jitter_micros / 2,
        }
    }
}

impl Default for DelayModel {
    /// A 5 ms constant link delay, the default used by the experiment
    /// harness.
    fn default() -> Self {
        DelayModel::constant_millis(5)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn constant_model_always_returns_the_same_delay() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let m = DelayModel::Constant(250);
        for _ in 0..10 {
            assert_eq!(m.sample(&mut rng).as_micros(), 250);
        }
        assert_eq!(m.min_micros(), 250);
        assert_eq!(m.max_micros(), 250);
        assert_eq!(m.mean_micros(), 250);
    }

    #[test]
    fn uniform_model_stays_within_bounds() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let m = DelayModel::Uniform {
            min_micros: 100,
            max_micros: 200,
        };
        for _ in 0..100 {
            let d = m.sample(&mut rng).as_micros();
            assert!((100..=200).contains(&d));
        }
        assert_eq!(m.mean_micros(), 150);
    }

    #[test]
    fn degenerate_uniform_bounds_fall_back_to_min() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let m = DelayModel::Uniform {
            min_micros: 500,
            max_micros: 100,
        };
        assert_eq!(m.sample(&mut rng).as_micros(), 500);
        assert_eq!(m.max_micros(), 500);
    }

    #[test]
    fn jittered_model_adds_bounded_jitter() {
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let m = DelayModel::Jittered {
            base_micros: 1_000,
            jitter_micros: 50,
        };
        for _ in 0..100 {
            let d = m.sample(&mut rng).as_micros();
            assert!((1_000..=1_050).contains(&d));
        }
        assert_eq!(m.min_micros(), 1_000);
        assert_eq!(m.max_micros(), 1_050);
        assert_eq!(m.mean_micros(), 1_025);
    }

    #[test]
    fn sampling_is_deterministic_for_a_fixed_seed() {
        let m = DelayModel::Uniform {
            min_micros: 0,
            max_micros: 1_000_000,
        };
        let mut a = rand::rngs::StdRng::seed_from_u64(42);
        let mut b = rand::rngs::StdRng::seed_from_u64(42);
        let sa: Vec<u64> = (0..20).map(|_| m.sample(&mut a).as_micros()).collect();
        let sb: Vec<u64> = (0..20).map(|_| m.sample(&mut b).as_micros()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    fn default_is_five_milliseconds() {
        assert_eq!(DelayModel::default().mean_micros(), 5_000);
        assert_eq!(DelayModel::constant_millis(7), DelayModel::Constant(7_000));
    }
}
