//! The static Rebeca broker: the unchanged pub/sub middleware that the
//! mobility extension of `rebeca-core` builds on.
//!
//! [`BrokerCore`] is a *pure state machine*: every handler consumes one
//! incoming message (already demultiplexed into typed parameters) and returns
//! the messages to emit, as `(destination node, message)` pairs.  It is
//! therefore runnable both inside the discrete-event simulator and in the
//! threaded runtime, and straightforward to unit-test in isolation.
//!
//! Responsibilities (Section 2 of the paper):
//!
//! * maintain the routing and advertisement tables via the configured
//!   [`RoutingStrategyKind`];
//! * accept local clients (attach/detach), their subscriptions and
//!   publications;
//! * forward notifications towards matching subscriptions;
//! * annotate deliveries to local consumers with per-`(client, filter)`
//!   sequence numbers (the numbers the relocation protocol relies on).
//!
//! Deliveries addressed to a *disconnected* local client are not sent (the
//! link is down); they are parked and can be drained by the caller — the
//! mobility layer turns them into the virtual counterpart's buffer, while the
//! plain static broker simply drops them (which is exactly the naive
//! behaviour whose notification loss Figure 2 of the paper illustrates).

use std::collections::{BTreeMap, HashMap};

use serde::{Deserialize, Serialize};

use rebeca_filter::{Filter, Notification};
use rebeca_obs::TraceContext;
use rebeca_routing::{AdvertisementTable, RoutingEngine, RoutingStrategyKind};
use rebeca_sim::NodeId;

use crate::ids::ClientId;
use crate::message::{Delivery, Envelope, Message};
use crate::seqnum::SequenceRegistry;

/// The role of a broker in the topology (Figure 1 of the paper).
///
/// Local brokers are part of the client library and are not modelled as
/// separate nodes; a border broker is simply a broker with attached clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum BrokerRole {
    /// Connected only to other brokers.
    #[default]
    Inner,
    /// May accept local clients.
    Border,
}

/// Bookkeeping for one local client of a border broker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientRecord {
    /// The simulation node the client is reachable at.
    pub node: NodeId,
    /// The client's active subscriptions at this broker.
    pub subscriptions: Vec<Filter>,
    /// Whether the client is currently connected (reachable).
    pub connected: bool,
}

/// Messages a broker wants to emit, as `(destination node, message)` pairs.
pub type Outgoing = Vec<(NodeId, Message)>;

/// A trace span drafted by the pure broker core.  The core knows the causal
/// structure (ids, parents, stage names) but has no clock and no metrics
/// store; the runtime layer drains the drafts
/// ([`BrokerCore::take_trace_spans`]) and stamps them with the broker index
/// and timestamps before recording them into the span buffer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceSpanDraft {
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// The causal parent's span id (0 for a trace root).
    pub parent_span: u64,
    /// Stage name (`"publish"`, `"match"`, `"route"`, `"deliver"`).
    pub kind: &'static str,
    /// Free-form `key=value` detail text.
    pub detail: String,
}

/// The static (mobility-unaware) Rebeca broker state machine.
#[derive(Debug, Clone)]
pub struct BrokerCore {
    id: NodeId,
    role: BrokerRole,
    broker_links: Vec<NodeId>,
    clients: BTreeMap<ClientId, ClientRecord>,
    engine: RoutingEngine<NodeId>,
    ads: AdvertisementTable<NodeId>,
    seq: SequenceRegistry,
    /// Next per-publisher sequence number.  Looked up on every publish and
    /// never iterated in order, so a hash map beats the ordered map it
    /// replaced.
    publisher_seq: HashMap<ClientId, u64>,
    parked: Vec<Delivery>,
    /// When set, envelopes published by *local* clients are also copied to
    /// [`BrokerCore::take_published`].  The retention layer of `rebeca-core`
    /// drains the copies into its segment store; origin-broker recording
    /// guarantees each publication is retained by exactly one broker.
    record_published: bool,
    recent_published: Vec<Envelope>,
    /// Trace sampling rate in parts per 65536 (0 = tracing off, the
    /// default).  Sampling is a pure hash of `(publisher, publisher_seq)`,
    /// so every broker — and every driver — samples the same publications.
    trace_rate: u32,
    /// Per-broker span-id nonce (deterministic under the simulator's total
    /// event order).
    trace_nonce: u64,
    trace_spans: Vec<TraceSpanDraft>,
}

impl BrokerCore {
    /// Creates a broker with the given identity, role, neighbouring broker
    /// links and routing strategy.
    pub fn new(
        id: NodeId,
        role: BrokerRole,
        broker_links: Vec<NodeId>,
        strategy: RoutingStrategyKind,
    ) -> Self {
        Self {
            id,
            role,
            broker_links,
            clients: BTreeMap::new(),
            engine: RoutingEngine::new(strategy),
            ads: AdvertisementTable::new(),
            seq: SequenceRegistry::new(),
            publisher_seq: HashMap::new(),
            parked: Vec::new(),
            record_published: false,
            recent_published: Vec::new(),
            trace_rate: 0,
            trace_nonce: 0,
            trace_spans: Vec::new(),
        }
    }

    /// The broker's own node id.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The broker's role.
    pub fn role(&self) -> BrokerRole {
        self.role
    }

    /// The neighbouring broker nodes.
    pub fn broker_links(&self) -> &[NodeId] {
        &self.broker_links
    }

    /// The neighbouring broker nodes except `exclude` (the flood-forwarding
    /// set for a message that arrived over `exclude`).
    pub fn broker_links_except(&self, exclude: NodeId) -> Vec<NodeId> {
        self.broker_links
            .iter()
            .copied()
            .filter(|&l| l != exclude)
            .collect()
    }

    /// Read access to the routing engine.
    pub fn engine(&self) -> &RoutingEngine<NodeId> {
        &self.engine
    }

    /// Mutable access to the routing engine (used by the relocation protocol
    /// to re-point delivery paths).
    pub fn engine_mut(&mut self) -> &mut RoutingEngine<NodeId> {
        &mut self.engine
    }

    /// Read access to the advertisement table.
    pub fn advertisements(&self) -> &AdvertisementTable<NodeId> {
        &self.ads
    }

    /// Read access to the per-`(client, filter)` sequence registry.
    pub fn sequences(&self) -> &SequenceRegistry {
        &self.seq
    }

    /// Mutable access to the sequence registry (the relocation protocol fast
    /// forwards streams it takes over).
    pub fn sequences_mut(&mut self) -> &mut SequenceRegistry {
        &mut self.seq
    }

    /// The record of a local client, if attached here.
    pub fn client(&self, client: ClientId) -> Option<&ClientRecord> {
        self.clients.get(&client)
    }

    /// Mutable record of a local client.
    pub fn client_mut(&mut self, client: ClientId) -> Option<&mut ClientRecord> {
        self.clients.get_mut(&client)
    }

    /// All local clients.
    pub fn clients(&self) -> impl Iterator<Item = (ClientId, &ClientRecord)> {
        self.clients.iter().map(|(id, r)| (*id, r))
    }

    /// Looks a local client up by its node id.
    pub fn client_by_node(&self, node: NodeId) -> Option<ClientId> {
        self.clients
            .iter()
            .find(|(_, r)| r.node == node)
            .map(|(id, _)| *id)
    }

    /// Removes a local client entirely (garbage collection after relocation),
    /// returning its record.
    pub fn remove_client(&mut self, client: ClientId) -> Option<ClientRecord> {
        self.seq.remove_client(client);
        self.clients.remove(&client)
    }

    /// Deliveries to disconnected local clients that accumulated since the
    /// last call.  The mobility layer turns them into buffered state; the
    /// static broker drops them.
    pub fn take_parked(&mut self) -> Vec<Delivery> {
        std::mem::take(&mut self.parked)
    }

    /// Enables (or disables) recording of locally published envelopes for
    /// [`BrokerCore::take_published`].  Off by default; switched on by the
    /// retention layer.
    pub fn set_record_published(&mut self, enabled: bool) {
        self.record_published = enabled;
        if !enabled {
            self.recent_published.clear();
        }
    }

    /// Envelopes published by local clients since the last call (empty
    /// unless [`BrokerCore::set_record_published`] enabled recording).
    pub fn take_published(&mut self) -> Vec<Envelope> {
        std::mem::take(&mut self.recent_published)
    }

    /// Sets the trace sampling rate in parts per 65536 (0 disables tracing,
    /// the default; see [`rebeca_obs::rate_per_64k`]).
    pub fn set_trace_sampling(&mut self, rate_per_64k: u32) {
        self.trace_rate = rate_per_64k;
    }

    /// The trace sampling rate in parts per 65536.
    pub fn trace_sampling(&self) -> u32 {
        self.trace_rate
    }

    /// Span drafts accumulated since the last call.  The runtime layer
    /// stamps them with timestamps and the broker index and records them
    /// into the metrics span buffer.  Cheap when tracing is off: taking an
    /// empty `Vec` neither allocates nor deallocates.
    pub fn take_trace_spans(&mut self) -> Vec<TraceSpanDraft> {
        std::mem::take(&mut self.trace_spans)
    }

    /// Drafts a span and returns its id.
    fn new_span(
        &mut self,
        trace_id: u64,
        parent_span: u64,
        kind: &'static str,
        detail: String,
    ) -> u64 {
        let span_id = rebeca_obs::span_id(trace_id, self.id.index() as u64, self.trace_nonce);
        self.trace_nonce += 1;
        self.trace_spans.push(TraceSpanDraft {
            trace_id,
            span_id,
            parent_span,
            kind,
            detail,
        });
        span_id
    }

    /// Stamps a freshly published envelope with a trace context when the
    /// deterministic sampler selects it, drafting the root `publish` span.
    fn sample_publication(&mut self, envelope: &mut Envelope) {
        if self.trace_rate == 0 {
            return;
        }
        if let Some(trace_id) = rebeca_obs::sample_publication(
            envelope.publisher.raw() as u64,
            envelope.publisher_seq,
            self.trace_rate,
        ) {
            let detail = format!(
                "publisher={} seq={}",
                envelope.publisher.raw(),
                envelope.publisher_seq
            );
            let span = self.new_span(trace_id, 0, "publish", detail);
            envelope.trace = Some(TraceContext {
                trace_id,
                parent_span: span,
                sampled: true,
            });
        }
    }

    // ------------------------------------------------------------------
    // Handlers
    // ------------------------------------------------------------------

    /// A client attaches at this (border) broker.
    pub fn handle_attach(&mut self, client: ClientId, node: NodeId) -> Outgoing {
        let record = self.clients.entry(client).or_insert(ClientRecord {
            node,
            subscriptions: Vec::new(),
            connected: true,
        });
        record.node = node;
        record.connected = true;
        Vec::new()
    }

    /// A client detaches (or is detected as unreachable).  Its subscriptions
    /// stay in place so that the mobility layer can keep buffering for it.
    pub fn handle_detach(&mut self, client: ClientId) -> Outgoing {
        if let Some(record) = self.clients.get_mut(&client) {
            record.connected = false;
        }
        Vec::new()
    }

    /// A subscription arrives, either from a local client (`from` is the
    /// client's node) or from a neighbouring broker.
    pub fn handle_subscribe(
        &mut self,
        subscriber: ClientId,
        filter: Filter,
        from: NodeId,
    ) -> Outgoing {
        if let Some(client) = self.client_by_node(from) {
            if let Some(record) = self.clients.get_mut(&client) {
                if !record.subscriptions.contains(&filter) {
                    record.subscriptions.push(filter.clone());
                }
            }
        }
        let links = self.broker_links.clone();
        self.engine
            .handle_subscribe(filter, from, &links)
            .into_iter()
            .map(|(link, forward)| {
                (
                    link,
                    Message::Subscribe {
                        subscriber,
                        filter: forward,
                    },
                )
            })
            .collect()
    }

    /// A subscription is retracted.
    pub fn handle_unsubscribe(
        &mut self,
        subscriber: ClientId,
        filter: Filter,
        from: NodeId,
    ) -> Outgoing {
        if let Some(client) = self.client_by_node(from) {
            if let Some(record) = self.clients.get_mut(&client) {
                record.subscriptions.retain(|f| f != &filter);
            }
        }
        let links = self.broker_links.clone();
        self.engine
            .handle_unsubscribe(&filter, &from, &links)
            .forwards
            .into_iter()
            .map(|(link, forward)| {
                (
                    link,
                    Message::Unsubscribe {
                        subscriber,
                        filter: forward,
                    },
                )
            })
            .collect()
    }

    /// An advertisement arrives.  Advertisements are flooded through the
    /// broker network (each broker forwards new ones on every other link).
    pub fn handle_advertise(
        &mut self,
        publisher: ClientId,
        filter: Filter,
        from: NodeId,
    ) -> Outgoing {
        if self.ads.insert(filter.clone(), from) {
            self.broker_links
                .iter()
                .filter(|&&l| l != from)
                .map(|&l| {
                    (
                        l,
                        Message::Advertise {
                            publisher,
                            filter: filter.clone(),
                        },
                    )
                })
                .collect()
        } else {
            Vec::new()
        }
    }

    /// An advertisement is retracted.
    pub fn handle_unadvertise(
        &mut self,
        publisher: ClientId,
        filter: Filter,
        from: NodeId,
    ) -> Outgoing {
        if self.ads.remove(&filter, &from) {
            self.broker_links
                .iter()
                .filter(|&&l| l != from)
                .map(|&l| {
                    (
                        l,
                        Message::Unadvertise {
                            publisher,
                            filter: filter.clone(),
                        },
                    )
                })
                .collect()
        } else {
            Vec::new()
        }
    }

    /// A local client publishes a notification.  The border broker assigns
    /// the per-publisher sequence number and routes the resulting envelope.
    pub fn handle_publish(
        &mut self,
        publisher: ClientId,
        notification: Notification,
        from: NodeId,
    ) -> Outgoing {
        let counter = self.publisher_seq.entry(publisher).or_insert(0);
        *counter += 1;
        let mut envelope = Envelope::new(publisher, *counter, notification);
        self.sample_publication(&mut envelope);
        if self.record_published {
            self.recent_published.push(envelope.clone());
        }
        self.route_envelope(envelope, Some(from))
    }

    /// A local client publishes a whole queue of notifications at once.
    /// The border broker assigns consecutive per-publisher sequence numbers
    /// and routes the queue through the batch matching path.
    pub fn handle_publish_batch(
        &mut self,
        publisher: ClientId,
        notifications: Vec<Notification>,
        from: NodeId,
    ) -> Outgoing {
        let counter = self.publisher_seq.entry(publisher).or_insert(0);
        let mut envelopes: Vec<Envelope> = notifications
            .into_iter()
            .map(|notification| {
                *counter += 1;
                Envelope::new(publisher, *counter, notification)
            })
            .collect();
        if self.trace_rate != 0 {
            for envelope in &mut envelopes {
                self.sample_publication(envelope);
            }
        }
        if self.record_published {
            self.recent_published.extend(envelopes.iter().cloned());
        }
        self.route_envelope_batch(envelopes, Some(from))
    }

    /// A routed notification arrives from a neighbouring broker.
    pub fn handle_notification(&mut self, envelope: Envelope, from: NodeId) -> Outgoing {
        self.route_envelope(envelope, Some(from))
    }

    /// A queue of routed notifications arrives from a neighbouring broker:
    /// drain it through batch matching, then re-group the survivors per
    /// next-hop link.
    pub fn handle_notification_batch(
        &mut self,
        envelopes: Vec<Envelope>,
        from: NodeId,
    ) -> Outgoing {
        self.route_envelope_batch(envelopes, Some(from))
    }

    /// Routes an envelope: forwards it to matching neighbouring brokers and
    /// delivers it (with sequence annotation) to matching local clients.
    pub fn route_envelope(&mut self, envelope: Envelope, exclude: Option<NodeId>) -> Outgoing {
        if let Some(ctx) = envelope.trace.filter(|ctx| ctx.sampled) {
            return self.route_envelope_traced(envelope, exclude, ctx);
        }
        let mut out = Vec::new();

        // Broker-to-broker forwarding, via the routing engine's visitor walk
        // (skips the matching-key and cloned-destination vectors).
        let all_links = self.broker_links.clone();
        let broker_links = &self.broker_links;
        self.engine.for_each_route(
            &envelope.notification,
            exclude.as_ref(),
            &all_links,
            |dest| {
                if broker_links.contains(dest) {
                    out.push((*dest, Message::Notification(envelope.clone())));
                }
            },
        );

        self.deliver_locally(&envelope, exclude, &mut out);
        out
    }

    /// The traced twin of [`BrokerCore::route_envelope`]: drafts a `match`
    /// span, a per-next-hop `route` span (rewriting each forwarded copy's
    /// parent to it, so the receiving broker's `match` attaches under the
    /// hop that carried it), and re-parents the local copy under the `match`
    /// span so `deliver` spans nest correctly.
    fn route_envelope_traced(
        &mut self,
        mut envelope: Envelope,
        exclude: Option<NodeId>,
        ctx: TraceContext,
    ) -> Outgoing {
        let match_span = self.new_span(
            ctx.trace_id,
            ctx.parent_span,
            "match",
            format!(
                "publisher={} seq={}",
                envelope.publisher.raw(),
                envelope.publisher_seq
            ),
        );

        // Each forwarded copy gets its own parent, so destinations are
        // collected first (the engine walk borrows the routing state).
        let all_links = self.broker_links.clone();
        let broker_links = &self.broker_links;
        let mut dests: Vec<NodeId> = Vec::new();
        self.engine.for_each_route(
            &envelope.notification,
            exclude.as_ref(),
            &all_links,
            |dest| {
                if broker_links.contains(dest) {
                    dests.push(*dest);
                }
            },
        );

        let mut out = Vec::with_capacity(dests.len());
        for dest in dests {
            let route_span = self.new_span(
                ctx.trace_id,
                match_span,
                "route",
                format!("dest={}", dest.index()),
            );
            let mut copy = envelope.clone();
            copy.trace = Some(TraceContext {
                trace_id: ctx.trace_id,
                parent_span: route_span,
                sampled: true,
            });
            out.push((dest, Message::Notification(copy)));
        }

        envelope.trace = Some(TraceContext {
            trace_id: ctx.trace_id,
            parent_span: match_span,
            sampled: true,
        });
        self.deliver_locally(&envelope, exclude, &mut out);
        out
    }

    /// Routes a queue of envelopes through the batch matcher: one matching
    /// pass for the whole queue, survivors re-grouped into per-link
    /// [`Message::NotificationBatch`]s (a single survivor travels as a
    /// plain [`Message::Notification`]), local deliveries as usual.
    pub fn route_envelope_batch(
        &mut self,
        envelopes: Vec<Envelope>,
        exclude: Option<NodeId>,
    ) -> Outgoing {
        match envelopes.len() {
            0 => return Vec::new(),
            1 => {
                let envelope = envelopes.into_iter().next().expect("one envelope");
                return self.route_envelope(envelope, exclude);
            }
            _ => {}
        }
        // A batch carrying at least one sampled envelope routes envelope by
        // envelope so per-envelope `route` spans can rewrite each copy's
        // parent.  Tracing trades the batch fast path for causality on the
        // (sampled) slice of traffic; unsampled batches are unaffected.
        if envelopes.iter().any(|e| e.trace.is_some()) {
            let mut out = Vec::new();
            for envelope in envelopes {
                out.append(&mut self.route_envelope(envelope, exclude));
            }
            return out;
        }
        let all_links = self.broker_links.clone();
        let destinations = {
            let ns: Vec<&Notification> = envelopes.iter().map(|e| &e.notification).collect();
            self.engine.route_batch(&ns, exclude.as_ref(), &all_links)
        };
        let mut per_dest: BTreeMap<NodeId, Vec<Envelope>> = BTreeMap::new();
        for (envelope, dests) in envelopes.iter().zip(&destinations) {
            for dest in dests {
                if self.broker_links.contains(dest) {
                    per_dest.entry(*dest).or_default().push(envelope.clone());
                }
            }
        }
        let mut out: Outgoing = per_dest
            .into_iter()
            .map(|(dest, mut batch)| {
                if batch.len() == 1 {
                    (
                        dest,
                        Message::Notification(batch.pop().expect("one envelope")),
                    )
                } else {
                    (dest, Message::NotificationBatch(batch))
                }
            })
            .collect();
        for envelope in &envelopes {
            self.deliver_locally(envelope, exclude, &mut out);
        }
        out
    }

    /// Delivers an envelope (with per-`(client, filter)` sequence
    /// annotation) to matching local clients, parking deliveries addressed
    /// to disconnected ones.
    fn deliver_locally(
        &mut self,
        envelope: &Envelope,
        exclude: Option<NodeId>,
        out: &mut Outgoing,
    ) {
        let matches: Vec<(ClientId, NodeId, bool, Filter)> = self
            .clients
            .iter()
            .filter(|(_, record)| Some(record.node) != exclude)
            .flat_map(|(client, record)| {
                record
                    .subscriptions
                    .iter()
                    .filter(|f| f.matches(&envelope.notification))
                    .map(|f| (*client, record.node, record.connected, f.clone()))
                    .collect::<Vec<_>>()
            })
            .collect();
        for (client, node, connected, filter) in matches {
            let seq = self.seq.next(client, &filter);
            let delivery = Delivery {
                subscriber: client,
                filter,
                seq,
                envelope: envelope.clone(),
            };
            if connected {
                if let Some(ctx) = envelope.trace.filter(|ctx| ctx.sampled) {
                    self.new_span(
                        ctx.trace_id,
                        ctx.parent_span,
                        "deliver",
                        format!("client={} seq={}", client.raw(), seq),
                    );
                }
                out.push((node, Message::Deliver(delivery)));
            } else {
                // Parked (counterpart-buffered) deliveries get their span at
                // replay time instead — the `replay` stage the mobility
                // layer records when the hold settles.
                self.parked.push(delivery);
            }
        }
    }

    /// Dispatches a raw [`Message`] to the appropriate handler.  Mobility
    /// control messages are **not** handled here (the static broker does not
    /// understand them); they are returned as `Err` so the caller — the
    /// mobility-aware broker of `rebeca-core` — can process them.
    pub fn handle_message(&mut self, from: NodeId, message: Message) -> Result<Outgoing, Message> {
        match message {
            Message::Attach { client } => Ok(self.handle_attach(client, from)),
            Message::Detach { client } => Ok(self.handle_detach(client)),
            Message::Publish {
                publisher,
                notification,
            } => Ok(self.handle_publish(publisher, notification, from)),
            Message::PublishBatch {
                publisher,
                notifications,
            } => Ok(self.handle_publish_batch(publisher, notifications, from)),
            Message::Notification(envelope) => Ok(self.handle_notification(envelope, from)),
            Message::NotificationBatch(envelopes) => {
                Ok(self.handle_notification_batch(envelopes, from))
            }
            Message::Subscribe { subscriber, filter } => {
                Ok(self.handle_subscribe(subscriber, filter, from))
            }
            Message::Unsubscribe { subscriber, filter } => {
                Ok(self.handle_unsubscribe(subscriber, filter, from))
            }
            Message::Advertise { publisher, filter } => {
                Ok(self.handle_advertise(publisher, filter, from))
            }
            Message::Unadvertise { publisher, filter } => {
                Ok(self.handle_unadvertise(publisher, filter, from))
            }
            other => Err(other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_filter::Constraint;

    fn parking() -> Filter {
        Filter::new().with("service", Constraint::Eq("parking".into()))
    }

    fn weather() -> Filter {
        Filter::new().with("service", Constraint::Eq("weather".into()))
    }

    fn vacancy() -> Notification {
        Notification::builder()
            .attr("service", "parking")
            .attr("cost", 2)
            .build()
    }

    /// Broker 0 with broker links to nodes 10 and 11; client c1 at node 100.
    fn broker() -> BrokerCore {
        BrokerCore::new(
            NodeId(0),
            BrokerRole::Border,
            vec![NodeId(10), NodeId(11)],
            RoutingStrategyKind::Covering,
        )
    }

    #[test]
    fn local_subscription_is_forwarded_to_all_broker_links() {
        let mut b = broker();
        b.handle_attach(ClientId::new(1), NodeId(100));
        let out = b.handle_subscribe(ClientId::new(1), parking(), NodeId(100));
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|(_, m)| matches!(m, Message::Subscribe { .. })));
        assert_eq!(b.client(ClientId::new(1)).unwrap().subscriptions.len(), 1);
    }

    #[test]
    fn remote_subscription_is_forwarded_to_the_other_links_only() {
        let mut b = broker();
        let out = b.handle_subscribe(ClientId::new(5), parking(), NodeId(10));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeId(11));
    }

    #[test]
    fn covered_subscription_is_not_forwarded_to_links_that_know_a_cover() {
        let mut b = broker();
        let wide = Filter::new().with("service", Constraint::Exists);
        // The wide filter from link 10 is forwarded to link 11 only.
        assert_eq!(
            b.handle_subscribe(ClientId::new(5), wide, NodeId(10)).len(),
            1
        );
        // A covered filter from link 11 does not need to be propagated to
        // link 11 again (it came from there) nor re-announced to it; only
        // link 10 — which has not been told about any cover — learns it.
        let out = b.handle_subscribe(ClientId::new(6), parking(), NodeId(11));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeId(10));
        // A third covered filter from a local client adds no new forwards at
        // all: both broker links already know a cover.
        b.handle_attach(ClientId::new(1), NodeId(100));
        let wide2 = Filter::new().with("service", Constraint::Exists);
        b.handle_subscribe(ClientId::new(5), wide2, NodeId(11));
        assert!(b
            .handle_subscribe(ClientId::new(1), parking(), NodeId(100))
            .is_empty());
    }

    #[test]
    fn publication_reaches_local_subscriber_with_sequence_numbers() {
        let mut b = broker();
        b.handle_attach(ClientId::new(1), NodeId(100));
        b.handle_subscribe(ClientId::new(1), parking(), NodeId(100));
        b.handle_attach(ClientId::new(2), NodeId(101));

        let out = b.handle_publish(ClientId::new(2), vacancy(), NodeId(101));
        // Delivered locally only (no remote subscriptions).
        let delivers: Vec<&Delivery> = out
            .iter()
            .filter_map(|(_, m)| match m {
                Message::Deliver(d) => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(delivers.len(), 1);
        assert_eq!(delivers[0].seq, 1);
        assert_eq!(delivers[0].subscriber, ClientId::new(1));
        assert_eq!(delivers[0].envelope.publisher, ClientId::new(2));
        assert_eq!(delivers[0].envelope.publisher_seq, 1);

        // A second publication gets the next sequence numbers.
        let out = b.handle_publish(ClientId::new(2), vacancy(), NodeId(101));
        let d = out
            .iter()
            .find_map(|(_, m)| match m {
                Message::Deliver(d) => Some(d),
                _ => None,
            })
            .unwrap();
        assert_eq!(d.seq, 2);
        assert_eq!(d.envelope.publisher_seq, 2);
    }

    #[test]
    fn remote_notification_is_forwarded_towards_matching_subscriptions() {
        let mut b = broker();
        // Subscription from broker link 11.
        b.handle_subscribe(ClientId::new(5), parking(), NodeId(11));
        let envelope = Envelope::new(ClientId::new(9), 1, vacancy());
        let out = b.handle_notification(envelope, NodeId(10));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeId(11));
        assert!(matches!(out[0].1, Message::Notification(_)));
    }

    #[test]
    fn notifications_do_not_bounce_back_to_their_source_link() {
        let mut b = broker();
        b.handle_subscribe(ClientId::new(5), parking(), NodeId(10));
        let envelope = Envelope::new(ClientId::new(9), 1, vacancy());
        let out = b.handle_notification(envelope, NodeId(10));
        assert!(out.is_empty());
    }

    #[test]
    fn non_matching_notifications_are_dropped() {
        let mut b = broker();
        b.handle_attach(ClientId::new(1), NodeId(100));
        b.handle_subscribe(ClientId::new(1), weather(), NodeId(100));
        let out = b.handle_publish(ClientId::new(1), vacancy(), NodeId(100));
        assert!(out.is_empty());
    }

    #[test]
    fn deliveries_to_disconnected_clients_are_parked() {
        let mut b = broker();
        b.handle_attach(ClientId::new(1), NodeId(100));
        b.handle_subscribe(ClientId::new(1), parking(), NodeId(100));
        b.handle_detach(ClientId::new(1));
        b.handle_attach(ClientId::new(2), NodeId(101));
        let out = b.handle_publish(ClientId::new(2), vacancy(), NodeId(101));
        assert!(
            out.is_empty(),
            "nothing must be sent to a disconnected client"
        );
        let parked = b.take_parked();
        assert_eq!(parked.len(), 1);
        assert_eq!(parked[0].seq, 1);
        assert!(b.take_parked().is_empty());
    }

    #[test]
    fn advertisements_flood_once() {
        let mut b = broker();
        let out = b.handle_advertise(ClientId::new(9), parking(), NodeId(10));
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].0, NodeId(11));
        // Duplicate advertisement from the same link is suppressed.
        assert!(b
            .handle_advertise(ClientId::new(9), parking(), NodeId(10))
            .is_empty());
        // Retraction propagates once.
        assert_eq!(
            b.handle_unadvertise(ClientId::new(9), parking(), NodeId(10))
                .len(),
            1
        );
        assert!(b
            .handle_unadvertise(ClientId::new(9), parking(), NodeId(10))
            .is_empty());
    }

    #[test]
    fn unsubscribe_removes_the_client_subscription_and_propagates() {
        let mut b = broker();
        b.handle_attach(ClientId::new(1), NodeId(100));
        b.handle_subscribe(ClientId::new(1), parking(), NodeId(100));
        let out = b.handle_unsubscribe(ClientId::new(1), parking(), NodeId(100));
        assert_eq!(out.len(), 2);
        assert!(b.client(ClientId::new(1)).unwrap().subscriptions.is_empty());
        // Publishing afterwards delivers nothing.
        b.handle_attach(ClientId::new(2), NodeId(101));
        assert!(b
            .handle_publish(ClientId::new(2), vacancy(), NodeId(101))
            .is_empty());
    }

    #[test]
    fn publish_batch_assigns_consecutive_seqs_and_matches_per_notification() {
        let mut b = broker();
        b.handle_attach(ClientId::new(1), NodeId(100));
        b.handle_subscribe(ClientId::new(1), parking(), NodeId(100));
        b.handle_attach(ClientId::new(2), NodeId(101));

        // A batch of three: two matching, one not.
        let miss = Notification::builder().attr("service", "weather").build();
        let out = b.handle_publish_batch(
            ClientId::new(2),
            vec![vacancy(), miss, vacancy()],
            NodeId(101),
        );
        let delivers: Vec<&Delivery> = out
            .iter()
            .filter_map(|(_, m)| match m {
                Message::Deliver(d) => Some(d),
                _ => None,
            })
            .collect();
        assert_eq!(delivers.len(), 2);
        assert_eq!(delivers[0].envelope.publisher_seq, 1);
        assert_eq!(delivers[1].envelope.publisher_seq, 3);
        assert_eq!(delivers[0].seq, 1);
        assert_eq!(delivers[1].seq, 2);

        // A later single publish continues the same sequence.
        let out = b.handle_publish(ClientId::new(2), vacancy(), NodeId(101));
        let d = out
            .iter()
            .find_map(|(_, m)| match m {
                Message::Deliver(d) => Some(d),
                _ => None,
            })
            .unwrap();
        assert_eq!(d.envelope.publisher_seq, 4);
    }

    #[test]
    fn notification_batches_are_regrouped_per_link() {
        let mut b = broker();
        // Two remote subscriptions behind different links.
        b.handle_subscribe(ClientId::new(5), parking(), NodeId(10));
        b.handle_subscribe(ClientId::new(6), weather(), NodeId(11));
        let envelope = |seq: u64, service: &str| {
            Envelope::new(
                ClientId::new(9),
                seq,
                Notification::builder()
                    .attr("service", service)
                    .attr("cost", 2)
                    .build(),
            )
        };
        // Arrives from a third direction: parking notifications go to link
        // 10 as a batch, the weather one to link 11 as a single message.
        let batch = vec![
            envelope(1, "parking"),
            envelope(2, "weather"),
            envelope(3, "parking"),
        ];
        let mut out = b.handle_message(NodeId(100), Message::NotificationBatch(batch.clone()));
        // NodeId(100) is no broker link, so nothing bounces back there.
        let out = out.as_mut().expect("static message");
        out.sort_by_key(|(dest, _)| *dest);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].0, NodeId(10));
        match &out[0].1 {
            Message::NotificationBatch(envs) => {
                assert_eq!(
                    envs.iter().map(|e| e.publisher_seq).collect::<Vec<_>>(),
                    vec![1, 3]
                );
            }
            other => panic!("expected a batch towards link 10, got {other:?}"),
        }
        assert_eq!(out[1].0, NodeId(11));
        assert!(matches!(&out[1].1, Message::Notification(e) if e.publisher_seq == 2));

        // The batch path agrees with routing each envelope individually.
        let mut single_dests: Vec<NodeId> = batch
            .iter()
            .flat_map(|e| {
                b.handle_notification(e.clone(), NodeId(100))
                    .into_iter()
                    .map(|(d, _)| d)
            })
            .collect();
        single_dests.sort_unstable();
        assert_eq!(single_dests, vec![NodeId(10), NodeId(10), NodeId(11)]);
    }

    #[test]
    fn batched_deliveries_to_disconnected_clients_are_parked() {
        let mut b = broker();
        b.handle_attach(ClientId::new(1), NodeId(100));
        b.handle_subscribe(ClientId::new(1), parking(), NodeId(100));
        b.handle_detach(ClientId::new(1));
        b.handle_attach(ClientId::new(2), NodeId(101));
        let out = b.handle_publish_batch(ClientId::new(2), vec![vacancy(), vacancy()], NodeId(101));
        assert!(out.is_empty());
        let parked = b.take_parked();
        assert_eq!(parked.len(), 2);
        assert_eq!(parked[0].seq, 1);
        assert_eq!(parked[1].seq, 2);
    }

    #[test]
    fn handle_message_dispatches_and_rejects_mobility_messages() {
        let mut b = broker();
        let ok = b.handle_message(
            NodeId(100),
            Message::Attach {
                client: ClientId::new(1),
            },
        );
        assert!(ok.is_ok());
        let err = b.handle_message(
            NodeId(10),
            Message::Fetch {
                client: ClientId::new(1),
                filter: parking(),
                last_seq: 0,
                junction: NodeId(0),
            },
        );
        assert!(err.is_err());
    }

    #[test]
    fn client_bookkeeping_accessors() {
        let mut b = broker();
        b.handle_attach(ClientId::new(1), NodeId(100));
        assert_eq!(b.client_by_node(NodeId(100)), Some(ClientId::new(1)));
        assert_eq!(b.client_by_node(NodeId(7)), None);
        assert_eq!(b.clients().count(), 1);
        assert!(b.remove_client(ClientId::new(1)).is_some());
        assert!(b.remove_client(ClientId::new(1)).is_none());
        assert_eq!(b.role(), BrokerRole::Border);
        assert_eq!(b.id(), NodeId(0));
        assert_eq!(b.broker_links(), &[NodeId(10), NodeId(11)]);
    }

    #[test]
    fn tracing_off_stamps_no_context_and_drafts_no_spans() {
        let mut b = broker();
        b.handle_attach(ClientId::new(1), NodeId(100));
        b.handle_subscribe(ClientId::new(1), parking(), NodeId(100));
        b.handle_attach(ClientId::new(2), NodeId(101));
        let out = b.handle_publish(ClientId::new(2), vacancy(), NodeId(101));
        let d = out
            .iter()
            .find_map(|(_, m)| match m {
                Message::Deliver(d) => Some(d),
                _ => None,
            })
            .unwrap();
        assert_eq!(d.envelope.trace, None);
        assert!(b.take_trace_spans().is_empty());
    }

    #[test]
    fn traced_publication_drafts_a_causal_chain() {
        let mut b = broker();
        b.set_trace_sampling(rebeca_obs::rate_per_64k(1.0));
        assert_eq!(b.trace_sampling(), 1 << 16);
        // One local subscriber and one remote subscription behind link 10.
        b.handle_attach(ClientId::new(1), NodeId(100));
        b.handle_subscribe(ClientId::new(1), parking(), NodeId(100));
        b.handle_subscribe(ClientId::new(5), parking(), NodeId(10));
        b.handle_attach(ClientId::new(2), NodeId(101));

        let out = b.handle_publish(ClientId::new(2), vacancy(), NodeId(101));
        let spans = b.take_trace_spans();
        let kinds: Vec<&str> = spans.iter().map(|s| s.kind).collect();
        assert_eq!(kinds, vec!["publish", "match", "route", "deliver"]);
        let trace_id = rebeca_obs::trace_id_for(2, 1);
        assert!(spans.iter().all(|s| s.trace_id == trace_id));
        // publish is the root; match nests under it; route and deliver
        // under match.
        assert_eq!(spans[0].parent_span, 0);
        assert_eq!(spans[1].parent_span, spans[0].span_id);
        assert_eq!(spans[2].parent_span, spans[1].span_id);
        assert_eq!(spans[3].parent_span, spans[1].span_id);

        // The forwarded copy's parent was rewritten to the route span; the
        // delivered copy's to the match span.
        let forwarded = out
            .iter()
            .find_map(|(dest, m)| match m {
                Message::Notification(e) if *dest == NodeId(10) => Some(e),
                _ => None,
            })
            .unwrap();
        assert_eq!(forwarded.trace.unwrap().parent_span, spans[2].span_id);
        let delivered = out
            .iter()
            .find_map(|(_, m)| match m {
                Message::Deliver(d) => Some(&d.envelope),
                _ => None,
            })
            .unwrap();
        assert_eq!(delivered.trace.unwrap().parent_span, spans[1].span_id);

        // The receiving broker continues the chain under the route span.
        let mut b2 = BrokerCore::new(
            NodeId(1),
            BrokerRole::Border,
            vec![NodeId(0)],
            RoutingStrategyKind::Covering,
        );
        b2.handle_attach(ClientId::new(5), NodeId(200));
        b2.handle_subscribe(ClientId::new(5), parking(), NodeId(200));
        b2.handle_notification(forwarded.clone(), NodeId(0));
        let spans2 = b2.take_trace_spans();
        let kinds2: Vec<&str> = spans2.iter().map(|s| s.kind).collect();
        assert_eq!(kinds2, vec!["match", "deliver"]);
        assert_eq!(spans2[0].parent_span, spans[2].span_id);
        // Span ids never collide across brokers.
        assert!(spans
            .iter()
            .all(|s| spans2.iter().all(|t| t.span_id != s.span_id)));
    }

    #[test]
    fn traced_batches_route_per_envelope_with_matching_destinations() {
        let mut plain = broker();
        let mut traced = broker();
        traced.set_trace_sampling(rebeca_obs::rate_per_64k(1.0));
        for b in [&mut plain, &mut traced] {
            b.handle_subscribe(ClientId::new(5), parking(), NodeId(10));
            b.handle_subscribe(ClientId::new(6), weather(), NodeId(11));
            b.handle_attach(ClientId::new(2), NodeId(101));
        }
        let miss = Notification::builder().attr("service", "none").build();
        let batch = vec![vacancy(), miss, vacancy()];
        let plain_out = plain.handle_publish_batch(ClientId::new(2), batch.clone(), NodeId(101));
        let traced_out = traced.handle_publish_batch(ClientId::new(2), batch, NodeId(101));
        // Same destinations and same envelopes reach the network, whether
        // they travel batched (untraced) or per-envelope (traced).
        let flatten = |out: &Outgoing| {
            let mut flat: Vec<(NodeId, u64)> = out
                .iter()
                .flat_map(|(dest, m)| match m {
                    Message::Notification(e) => vec![(*dest, e.publisher_seq)],
                    Message::NotificationBatch(es) => {
                        es.iter().map(|e| (*dest, e.publisher_seq)).collect()
                    }
                    _ => Vec::new(),
                })
                .collect();
            flat.sort_unstable();
            flat
        };
        assert_eq!(flatten(&plain_out), flatten(&traced_out));
        assert!(plain.take_trace_spans().is_empty());
        let spans = traced.take_trace_spans();
        // Three publish roots, a match per envelope, a route per forward.
        assert_eq!(spans.iter().filter(|s| s.kind == "publish").count(), 3);
        assert_eq!(spans.iter().filter(|s| s.kind == "match").count(), 3);
        assert_eq!(spans.iter().filter(|s| s.kind == "route").count(), 2);
    }

    #[test]
    fn reattach_marks_the_client_connected_again() {
        let mut b = broker();
        b.handle_attach(ClientId::new(1), NodeId(100));
        b.handle_detach(ClientId::new(1));
        assert!(!b.client(ClientId::new(1)).unwrap().connected);
        b.handle_attach(ClientId::new(1), NodeId(100));
        assert!(b.client(ClientId::new(1)).unwrap().connected);
    }
}
