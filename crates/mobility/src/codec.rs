//! The shared binary codec behind the WAL records and the network wire
//! format.
//!
//! `rebeca-mobility` introduced a hand-rolled, length-prefixed + CRC32
//! framing discipline for its write-ahead handoff log (see the
//! [`HandoffLog`](crate::HandoffLog) docs); the TCP transport of
//! `rebeca-net` frames its messages the same way.  This module is the
//! single home of the primitives both framings build on:
//!
//! * [`crc32`] — the IEEE CRC-32 used in every frame header;
//! * `put_*` writers — little-endian encoders for the scalar and protocol
//!   types ([`Filter`], [`Notification`], [`Envelope`], [`Delivery`], …);
//! * [`ByteReader`] — the bounds-checked decoder mirror, returning a typed
//!   [`DecodeError`] (never panicking) on truncated or malformed input.
//!
//! Encoders and decoders are exact inverses: for every writer there is a
//! reader method producing the same value from the written bytes.  All
//! integers are little-endian; strings are length-prefixed UTF-8; floats
//! are IEEE-754 bit patterns.

use std::fmt;

use rebeca_broker::{ClientId, Delivery, Envelope, TraceContext};
use rebeca_filter::{Constraint, Filter, Notification, Value};
use rebeca_sim::NodeId;

/// IEEE CRC-32 (reflected, polynomial `0xEDB88320`) of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

/// Appends one byte.
pub fn put_u8(buf: &mut Vec<u8>, v: u8) {
    buf.push(v);
}

/// Appends a `u16` little-endian.
pub fn put_u16(buf: &mut Vec<u8>, v: u16) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` little-endian.
pub fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u64` little-endian.
pub fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `i64` little-endian.
pub fn put_i64(buf: &mut Vec<u8>, v: i64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Appends an `f64` as its IEEE-754 bit pattern, little-endian.
pub fn put_f64(buf: &mut Vec<u8>, v: f64) {
    buf.extend_from_slice(&v.to_bits().to_le_bytes());
}

/// Appends a string as `len: u32` followed by the UTF-8 bytes.
pub fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

/// Appends a [`NodeId`] as its dense index in a `u64`.
pub fn put_node(buf: &mut Vec<u8>, n: NodeId) {
    put_u64(buf, n.index() as u64);
}

/// Appends a [`Value`] as a one-byte kind tag plus the payload.
pub fn put_value(buf: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Int(i) => {
            put_u8(buf, 0);
            put_i64(buf, *i);
        }
        Value::Float(f) => {
            put_u8(buf, 1);
            put_f64(buf, *f);
        }
        Value::Str(s) => {
            put_u8(buf, 2);
            put_str(buf, s);
        }
        Value::Bool(b) => {
            put_u8(buf, 3);
            put_u8(buf, u8::from(*b));
        }
        Value::Location(l) => {
            put_u8(buf, 4);
            put_u32(buf, *l);
        }
    }
}

/// Appends a [`Constraint`] as a one-byte kind tag plus the payload.
pub fn put_constraint(buf: &mut Vec<u8>, c: &Constraint) {
    match c {
        Constraint::Exists => put_u8(buf, 0),
        Constraint::Eq(v) => {
            put_u8(buf, 1);
            put_value(buf, v);
        }
        Constraint::Ne(v) => {
            put_u8(buf, 2);
            put_value(buf, v);
        }
        Constraint::Lt(v) => {
            put_u8(buf, 3);
            put_value(buf, v);
        }
        Constraint::Le(v) => {
            put_u8(buf, 4);
            put_value(buf, v);
        }
        Constraint::Gt(v) => {
            put_u8(buf, 5);
            put_value(buf, v);
        }
        Constraint::Ge(v) => {
            put_u8(buf, 6);
            put_value(buf, v);
        }
        Constraint::Between(lo, hi) => {
            put_u8(buf, 7);
            put_value(buf, lo);
            put_value(buf, hi);
        }
        Constraint::In(set) => {
            put_u8(buf, 8);
            put_u32(buf, set.len() as u32);
            for v in set {
                put_value(buf, v);
            }
        }
        Constraint::Prefix(s) => {
            put_u8(buf, 9);
            put_str(buf, s);
        }
        Constraint::Suffix(s) => {
            put_u8(buf, 10);
            put_str(buf, s);
        }
        Constraint::Contains(s) => {
            put_u8(buf, 11);
            put_str(buf, s);
        }
    }
}

/// Appends a [`Filter`] as a count followed by `(name, constraint)` pairs.
pub fn put_filter(buf: &mut Vec<u8>, f: &Filter) {
    put_u32(buf, f.len() as u32);
    for (name, c) in f.iter() {
        put_str(buf, name);
        put_constraint(buf, c);
    }
}

/// Appends a [`Notification`] as a count followed by `(name, value)` pairs.
pub fn put_notification(buf: &mut Vec<u8>, n: &Notification) {
    put_u32(buf, n.len() as u32);
    for (name, v) in n.iter() {
        put_str(buf, name);
        put_value(buf, v);
    }
}

/// Appends an [`Envelope`] (publisher, sequence number, notification, and —
/// for the sampled minority — its trace context behind a presence tag, so
/// unsampled envelopes pay exactly one extra byte on the wire and in the
/// WAL).
pub fn put_envelope(buf: &mut Vec<u8>, e: &Envelope) {
    put_u32(buf, e.publisher.raw());
    put_u64(buf, e.publisher_seq);
    put_notification(buf, &e.notification);
    match e.trace {
        None => put_u8(buf, 0),
        Some(ctx) => {
            put_u8(buf, 1);
            put_u64(buf, ctx.trace_id);
            put_u64(buf, ctx.parent_span);
            put_u8(buf, u8::from(ctx.sampled));
        }
    }
}

/// Appends a [`Delivery`] (subscriber, filter, stream seq, envelope).
pub fn put_delivery(buf: &mut Vec<u8>, d: &Delivery) {
    put_u32(buf, d.subscriber.raw());
    put_filter(buf, &d.filter);
    put_u64(buf, d.seq);
    put_envelope(buf, &d.envelope);
}

/// Decode-side error: any structural problem in an encoded payload —
/// truncated input, an unknown kind tag, invalid UTF-8.  Decoding is total:
/// malformed bytes always surface as this error, never as a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError;

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed payload")
    }
}

impl std::error::Error for DecodeError {}

/// Bounds-checked reader over an encoded payload; the decoding mirror of
/// the `put_*` writers.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Starts reading at the beginning of `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    /// Takes the next `n` raw bytes.
    pub fn take(&mut self, n: usize) -> Result<&'a [u8], DecodeError> {
        if n > self.buf.len() - self.pos {
            return Err(DecodeError);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Result<u8, DecodeError> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn u16(&mut self) -> Result<u16, DecodeError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Result<u64, DecodeError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a little-endian `i64`.
    pub fn i64(&mut self) -> Result<i64, DecodeError> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads an `f64` from its IEEE-754 bit pattern.
    pub fn f64(&mut self) -> Result<f64, DecodeError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn string(&mut self) -> Result<String, DecodeError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| DecodeError)
    }

    /// Reads a [`NodeId`].
    pub fn node(&mut self) -> Result<NodeId, DecodeError> {
        Ok(NodeId::new(self.u64()? as usize))
    }

    /// `true` once every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.buf.len()
    }

    /// Number of bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Reads a [`Value`].
    pub fn value(&mut self) -> Result<Value, DecodeError> {
        Ok(match self.u8()? {
            0 => Value::Int(self.i64()?),
            1 => Value::Float(self.f64()?),
            2 => Value::Str(self.string()?),
            3 => Value::Bool(self.u8()? != 0),
            4 => Value::Location(self.u32()?),
            _ => return Err(DecodeError),
        })
    }

    /// Reads a [`Constraint`].
    pub fn constraint(&mut self) -> Result<Constraint, DecodeError> {
        Ok(match self.u8()? {
            0 => Constraint::Exists,
            1 => Constraint::Eq(self.value()?),
            2 => Constraint::Ne(self.value()?),
            3 => Constraint::Lt(self.value()?),
            4 => Constraint::Le(self.value()?),
            5 => Constraint::Gt(self.value()?),
            6 => Constraint::Ge(self.value()?),
            7 => Constraint::Between(self.value()?, self.value()?),
            8 => {
                let n = self.u32()? as usize;
                let mut set = std::collections::BTreeSet::new();
                for _ in 0..n {
                    set.insert(self.value()?);
                }
                Constraint::In(set)
            }
            9 => Constraint::Prefix(self.string()?),
            10 => Constraint::Suffix(self.string()?),
            11 => Constraint::Contains(self.string()?),
            _ => return Err(DecodeError),
        })
    }

    /// Reads a [`Filter`].
    pub fn filter(&mut self) -> Result<Filter, DecodeError> {
        let n = self.u32()? as usize;
        let mut f = Filter::new();
        for _ in 0..n {
            let name = self.string()?;
            let c = self.constraint()?;
            f.set(name, c);
        }
        Ok(f)
    }

    /// Reads a [`Notification`].
    pub fn notification(&mut self) -> Result<Notification, DecodeError> {
        let n = self.u32()? as usize;
        let mut b = Notification::builder();
        for _ in 0..n {
            let name = self.string()?;
            let v = self.value()?;
            b = b.attr(name, v);
        }
        Ok(b.build())
    }

    /// Reads an [`Envelope`].
    pub fn envelope(&mut self) -> Result<Envelope, DecodeError> {
        let mut envelope = Envelope::new(
            ClientId::new(self.u32()?),
            self.u64()?,
            self.notification()?,
        );
        envelope.trace = match self.u8()? {
            0 => None,
            1 => Some(TraceContext {
                trace_id: self.u64()?,
                parent_span: self.u64()?,
                sampled: self.u8()? != 0,
            }),
            _ => return Err(DecodeError),
        };
        Ok(envelope)
    }

    /// Reads a [`Delivery`].
    pub fn delivery(&mut self) -> Result<Delivery, DecodeError> {
        Ok(Delivery {
            subscriber: ClientId::new(self.u32()?),
            filter: self.filter()?,
            seq: self.u64()?,
            envelope: self.envelope()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 7);
        put_u16(&mut buf, 300);
        put_u32(&mut buf, 70_000);
        put_u64(&mut buf, u64::MAX - 1);
        put_i64(&mut buf, -42);
        put_f64(&mut buf, -2.5);
        put_str(&mut buf, "héllo");
        put_node(&mut buf, NodeId::new(9));
        let mut r = ByteReader::new(&buf);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 300);
        assert_eq!(r.u32().unwrap(), 70_000);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.i64().unwrap(), -42);
        assert_eq!(r.f64().unwrap(), -2.5);
        assert_eq!(r.string().unwrap(), "héllo");
        assert_eq!(r.node().unwrap(), NodeId::new(9));
        assert!(r.done());
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn truncated_reads_error_instead_of_panicking() {
        let mut buf = Vec::new();
        put_str(&mut buf, "parking");
        // Claim more bytes than exist.
        let mut r = ByteReader::new(&buf[..buf.len() - 2]);
        assert_eq!(r.string(), Err(DecodeError));
        let mut r = ByteReader::new(&[]);
        assert_eq!(r.u64(), Err(DecodeError));
        // An absurd length prefix must not overflow the bounds check.
        let mut huge = Vec::new();
        put_u32(&mut huge, u32::MAX);
        let mut r = ByteReader::new(&huge);
        assert_eq!(r.string(), Err(DecodeError));
    }

    #[test]
    fn invalid_utf8_and_unknown_tags_error() {
        let mut buf = Vec::new();
        put_u32(&mut buf, 2);
        buf.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(ByteReader::new(&buf).string(), Err(DecodeError));
        assert_eq!(ByteReader::new(&[99]).value(), Err(DecodeError));
        assert_eq!(ByteReader::new(&[99]).constraint(), Err(DecodeError));
    }

    #[test]
    fn envelopes_roundtrip_with_and_without_trace_context() {
        let n = Notification::builder().attr("service", "parking").build();
        let plain = Envelope::new(ClientId::new(9), 4, n.clone());
        let mut traced = Envelope::new(ClientId::new(9), 5, n);
        traced.trace = Some(TraceContext {
            trace_id: 0xDEAD_BEEF_0000_0001,
            parent_span: 0x1234_5678_9ABC_DEF1,
            sampled: true,
        });
        for e in [&plain, &traced] {
            let mut buf = Vec::new();
            put_envelope(&mut buf, e);
            let mut r = ByteReader::new(&buf);
            assert_eq!(&r.envelope().unwrap(), e);
            assert!(r.done());
        }
        // An unknown trace tag is a decode error, not a panic.
        let mut buf = Vec::new();
        put_envelope(&mut buf, &plain);
        *buf.last_mut().unwrap() = 7;
        assert_eq!(ByteReader::new(&buf).envelope(), Err(DecodeError));
    }

    #[test]
    fn crc32_matches_the_ieee_reference_vector() {
        // The canonical "123456789" check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }
}
