//! Content-based data and filter model for the Rebeca mobility reproduction.
//!
//! This crate implements the substrate that every other crate in the
//! workspace builds on: the notification data model (flat name/value pairs),
//! conjunctive content-based filters with *matching*, *covering*,
//! *overlapping* and *perfect merging*, covering-aware filter sets, and the
//! location-dependent filter templates (`myloc` markers) introduced in
//! Section 5 of
//! *"Supporting Mobility in Content-Based Publish/Subscribe Middleware"*
//! (Fiege, Gärtner, Kasten, Zeidler — Middleware 2003).
//!
//! # Overview
//!
//! * [`Value`] / [`Notification`] — typed attribute values and the immutable
//!   notifications published into the system.
//! * [`Constraint`] — per-attribute predicates (equality, ranges, sets,
//!   string predicates) with covering and overlap checks.
//! * [`Filter`] — conjunctions of constraints; the unit of subscription and
//!   of routing-table entries.
//! * [`LocationDependentFilter`] — subscription templates with `myloc`
//!   markers, instantiated against concrete location sets by the
//!   logical-mobility layer.
//!
//! # Example
//!
//! ```
//! use rebeca_filter::{Constraint, Filter, Notification, Value};
//!
//! // Subscription: (service = "parking") ∧ (cost < 3) ∧ (location ∈ {4, 5})
//! let sub = Filter::new()
//!     .with("service", Constraint::Eq("parking".into()))
//!     .with("cost", Constraint::Lt(3.into()))
//!     .with("location", Constraint::any_location_of([4, 5]));
//!
//! let vacancy = Notification::builder()
//!     .attr("service", "parking")
//!     .attr("cost", 2)
//!     .attr("location", Value::Location(4))
//!     .build();
//!
//! assert!(sub.matches(&vacancy));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

// The covering/merging-aware `FilterSet` that used to live here moved to
// `rebeca-matcher`, where it is backed by the attribute-partitioned
// predicate index (this crate stays the dependency-free data model).
mod constraint;
mod filter;
mod notification;
mod template;
mod value;

pub use constraint::Constraint;
pub use filter::Filter;
pub use notification::{Notification, NotificationBuilder};
pub use template::{LocationDependentFilter, TemplateConstraint};
pub use value::{Value, ValueKind};
