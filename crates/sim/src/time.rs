//! Virtual time for the discrete-event simulator.
//!
//! The paper assumes local real-time clocks synchronised via NTP and message
//! delays that follow some probability distribution.  In the simulator we
//! replace wall-clock time with a single, globally consistent virtual clock
//! with microsecond resolution, which makes every experiment deterministic
//! and repeatable.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

use serde::{Deserialize, Serialize};

/// A point in virtual time, measured in microseconds since the start of the
/// simulation.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimTime(u64);

/// A span of virtual time in microseconds.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates a time from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * 1_000)
    }

    /// Creates a time from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * 1_000_000)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Milliseconds since simulation start (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// Seconds since simulation start as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// The duration elapsed since an earlier time (saturating at zero).
    pub fn since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * 1_000)
    }

    /// Creates a duration from seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * 1_000_000)
    }

    /// The duration in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// The duration in milliseconds (truncating).
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000
    }

    /// The duration in seconds as a float.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Multiplies the duration by an integer factor (saturating).
    pub const fn saturating_mul(self, factor: u64) -> Self {
        SimDuration(self.0.saturating_mul(factor))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        self.since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions_between_units() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(3).as_micros(), 3_000);
        assert_eq!(SimTime::from_micros(1_500).as_millis(), 1);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1_000);
        assert!((SimTime::from_millis(2_500).as_secs_f64() - 2.5).abs() < 1e-9);
    }

    #[test]
    fn arithmetic_adds_durations_and_computes_differences() {
        let t = SimTime::from_secs(1) + SimDuration::from_millis(500);
        assert_eq!(t.as_millis(), 1_500);
        assert_eq!((t - SimTime::from_secs(1)).as_millis(), 500);
        let mut u = SimTime::ZERO;
        u += SimDuration::from_micros(7);
        assert_eq!(u.as_micros(), 7);
    }

    #[test]
    fn since_saturates_at_zero() {
        let early = SimTime::from_secs(1);
        let late = SimTime::from_secs(5);
        assert_eq!(early.since(late), SimDuration::ZERO);
        assert_eq!(late.since(early), SimDuration::from_secs(4));
    }

    #[test]
    fn duration_multiplication() {
        assert_eq!(
            SimDuration::from_millis(10).saturating_mul(3).as_millis(),
            30
        );
        assert_eq!(
            SimDuration::from_micros(5) + SimDuration::from_micros(6),
            SimDuration::from_micros(11)
        );
    }

    #[test]
    fn ordering_follows_the_clock() {
        assert!(SimTime::from_secs(1) < SimTime::from_secs(2));
        assert!(SimTime::ZERO < SimTime::from_micros(1));
    }

    #[test]
    fn display_shows_seconds() {
        assert_eq!(SimTime::from_millis(1_500).to_string(), "1.500000s");
        assert_eq!(SimDuration::from_millis(20).to_string(), "0.020000s");
    }
}
