//! The link layer: blocking sockets, one thread per connection direction.
//!
//! A TCP link between two nodes is made of up to two *directed*
//! connections, each owned by the sending side:
//!
//! * the **writer thread** ([`spawn_writer`]) dials the peer's listen
//!   endpoint (retrying until the peer process is up), sends the
//!   [`Frame::Hello`] handshake, then pumps queued frames onto the socket —
//!   interleaving [`Frame::Heartbeat`]s whenever the link has been idle for
//!   the configured interval;
//! * the **reader thread** ([`spawn_reader`]) serves one accepted
//!   connection: it decodes frames off the socket and forwards them as
//!   [`Inbound`] events into the driver's event loop channel.  A corrupt
//!   stream (checksum mismatch, unknown tag) closes the connection with a
//!   logged typed error — never a panic.
//!
//! TCP guarantees per-connection FIFO, so per-direction FIFO — the link
//! contract of the paper's Section 2.1 — holds end to end: driver send
//! order → writer channel order → socket order → reader order → event
//! channel order (std mpsc preserves per-sender order).

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use rebeca_broker::Message;
use rebeca_sim::{DelayModel, NodeId, SimDuration};

use crate::endpoint::Endpoint;
use crate::wire::{Frame, WireError, FRAME_HEADER_LEN, MAX_FRAME_LEN};

/// How long a reader blocks on the socket before re-checking the shutdown
/// flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long the acceptor sleeps between polls of its non-blocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// An event arriving over the network, forwarded into the driver loop.
#[derive(Debug)]
pub(crate) enum Inbound {
    /// A peer introduced itself on a fresh connection.
    Hello {
        /// The dialing node.
        from: NodeId,
        /// The local node the connection feeds.
        to: NodeId,
        /// The dialer's restart epoch.
        epoch: u64,
        /// Where the dialer's process can be dialled back.
        listen: Endpoint,
        /// The link's delay model.
        delay: DelayModel,
    },
    /// A protocol message for a local node.
    Message {
        /// The sending node.
        from: NodeId,
        /// The destination node.
        to: NodeId,
        /// The sender-sampled link delay to apply on top of the transfer.
        delay: SimDuration,
        /// The message.
        message: Message,
    },
    /// A liveness beacon from an identified peer (a heartbeat before the
    /// connection's `Hello` has no sender and is dropped at the reader).
    Heartbeat {
        /// The peer the connection was introduced by.
        from: NodeId,
        /// The peer's restart epoch.
        epoch: u64,
    },
    /// An admin status request; the driver answers by writing a
    /// [`Frame::StatusReport`] straight back onto `reply`.
    Status {
        /// A clone of the requesting connection's stream to answer on.
        reply: TcpStream,
        /// Journal cursor: when set, include events with sequence numbers
        /// strictly greater than this.
        events_after: Option<u64>,
    },
    /// A writer's outbound connection changed state: established (`up`)
    /// or lost (`!up`).
    Link {
        /// The peer the writer dials.
        peer: NodeId,
        /// Whether the connection is now established.
        up: bool,
    },
}

/// Spawns the writer thread for one outbound connection: dial (with retry
/// until `shutdown`), handshake with `hello`, then pump frames from `rx`,
/// heart-beating after `heartbeat` of idleness.  Exits when the channel
/// disconnects, the socket breaks, or `shutdown` is raised.
///
/// Link state transitions ([`Inbound::Link`]) are reported into `events`:
/// `up` once the dial + handshake succeeds, `down` when an established
/// connection is lost (dial retries and orderly shutdown are not "down" —
/// the link was never up, or the whole driver is going away).
#[allow(clippy::too_many_arguments)] // one flat knob set per connection, named at the sole call site
pub(crate) fn spawn_writer(
    target: Endpoint,
    peer: NodeId,
    hello: Frame,
    rx: Receiver<Frame>,
    events: Sender<Inbound>,
    shutdown: Arc<AtomicBool>,
    heartbeat: Duration,
    dial_retry: Duration,
    epoch: u64,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        // Dial until the peer process is up (peers of a cluster start in
        // arbitrary order).
        let mut stream = loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            match target.socket_addr().and_then(TcpStream::connect) {
                Ok(stream) => break stream,
                Err(_) => std::thread::sleep(dial_retry),
            }
        };
        let _ = stream.set_nodelay(true);
        if stream.write_all(&hello.encode_framed()).is_err() {
            let _ = events.send(Inbound::Link { peer, up: false });
            return;
        }
        let _ = events.send(Inbound::Link { peer, up: true });
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            let frame = match rx.recv_timeout(heartbeat) {
                Ok(frame) => frame,
                Err(RecvTimeoutError::Timeout) => Frame::Heartbeat { epoch },
                Err(RecvTimeoutError::Disconnected) => return,
            };
            // A frame over the receiver's size limit is split into halves
            // (batch payloads only) until every piece fits; the halves
            // travel back to back on the same connection, so per-direction
            // FIFO — and therefore exactly-once delivery — is preserved.
            let mut worklist = VecDeque::from([frame]);
            while let Some(frame) = worklist.pop_front() {
                let bytes = frame.encode_framed();
                if bytes.len() > MAX_FRAME_LEN as usize + FRAME_HEADER_LEN {
                    match split_frame(frame) {
                        Some((first, second)) => {
                            worklist.push_front(second);
                            worklist.push_front(first);
                            continue;
                        }
                        None => {
                            // An unsplittable message the peer is guaranteed
                            // to reject: the link cannot honour its
                            // error-free contract any more — fail it loudly
                            // rather than silently dropping one message.
                            eprintln!(
                                "rebeca-net: unsplittable frame of {} bytes \
                                 exceeds the {MAX_FRAME_LEN} payload limit; \
                                 closing link to {target}",
                                bytes.len()
                            );
                            let _ = events.send(Inbound::Link { peer, up: false });
                            return;
                        }
                    }
                }
                if let Err(e) = stream.write_all(&bytes) {
                    // Reconnection with epoch fencing is a ROADMAP
                    // follow-up; today a dead peer ends the link.
                    eprintln!("rebeca-net: link to {target} broke: {e}");
                    let _ = events.send(Inbound::Link { peer, up: false });
                    return;
                }
            }
        }
    })
}

/// Splits an oversized frame into two halves when its message is a batch
/// (the only unbounded payloads).  `Replay` is deliberately NOT split: the
/// relocation protocol treats one replay message as the complete buffered
/// stream, so halving it would flush the holding merge early.
fn split_frame(frame: Frame) -> Option<(Frame, Frame)> {
    let Frame::Message {
        from,
        to,
        delay_micros,
        message,
    } = frame
    else {
        return None;
    };
    let remake = |message: Message| Frame::Message {
        from,
        to,
        delay_micros,
        message,
    };
    match message {
        Message::PublishBatch {
            publisher,
            mut notifications,
        } if notifications.len() >= 2 => {
            let tail = notifications.split_off(notifications.len() / 2);
            Some((
                remake(Message::PublishBatch {
                    publisher,
                    notifications,
                }),
                remake(Message::PublishBatch {
                    publisher,
                    notifications: tail,
                }),
            ))
        }
        Message::NotificationBatch(mut envelopes) if envelopes.len() >= 2 => {
            let tail = envelopes.split_off(envelopes.len() / 2);
            Some((
                remake(Message::NotificationBatch(envelopes)),
                remake(Message::NotificationBatch(tail)),
            ))
        }
        Message::DeliverBatch(mut deliveries) if deliveries.len() >= 2 => {
            let tail = deliveries.split_off(deliveries.len() / 2);
            Some((
                remake(Message::DeliverBatch(deliveries)),
                remake(Message::DeliverBatch(tail)),
            ))
        }
        _ => None,
    }
}

/// Spawns the reader thread for one accepted connection: decodes frames
/// and forwards them into `tx`.  Exits on EOF, a corrupt stream, a raised
/// `shutdown`, or when the driver drops the receiving end.
///
/// Bytes are accumulated in a local buffer and frames decoded off its
/// front, so a read timeout in the *middle* of a frame (slow sender, a
/// large frame spanning many TCP segments) just waits for more bytes — it
/// can never desynchronise the framing boundary.
pub(crate) fn spawn_reader(
    stream: TcpStream,
    tx: Sender<Inbound>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let mut stream = stream;
        let mut buf: Vec<u8> = Vec::with_capacity(4096);
        let mut chunk = [0u8; 16 * 1024];
        // Who is on the other end, learned from the connection's Hello —
        // needed to attribute heartbeats (admin connections never say
        // Hello, so their heartbeats, if any, stay anonymous and dropped).
        let mut peer: Option<NodeId> = None;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            let n = match stream.read(&mut chunk) {
                Ok(0) => return, // EOF
                Ok(n) => n,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(_) => return, // broken pipe
            };
            buf.extend_from_slice(&chunk[..n]);
            let mut consumed = 0;
            loop {
                let frame = match Frame::decode_framed(&buf[consumed..]) {
                    Ok((frame, used)) => {
                        consumed += used;
                        frame
                    }
                    Err(WireError::Truncated) => break, // need more bytes
                    Err(e) => {
                        // Corrupt stream: a typed decode error, never a
                        // panic.  Closing the connection is the only safe
                        // reaction — a desynchronised framing boundary
                        // cannot be recovered.
                        eprintln!("rebeca-net: closing corrupt connection: {e}");
                        return;
                    }
                };
                let inbound = match frame {
                    Frame::Hello {
                        from,
                        to,
                        epoch,
                        listen,
                        delay,
                    } => {
                        peer = Some(from);
                        Inbound::Hello {
                            from,
                            to,
                            epoch,
                            listen,
                            delay,
                        }
                    }
                    Frame::Heartbeat { epoch } => match peer {
                        Some(from) => Inbound::Heartbeat { from, epoch },
                        None => continue,
                    },
                    Frame::StatusRequest { events_after } => match stream.try_clone() {
                        Ok(reply) => Inbound::Status {
                            reply,
                            events_after,
                        },
                        Err(e) => {
                            eprintln!("rebeca-net: cannot answer status request: {e}");
                            continue;
                        }
                    },
                    // A report arriving at a serving node is a confused
                    // client; ignore it rather than kill the connection.
                    Frame::StatusReport(_) => continue,
                    Frame::Message {
                        from,
                        to,
                        delay_micros,
                        message,
                    } => Inbound::Message {
                        from,
                        to,
                        delay: SimDuration::from_micros(delay_micros),
                        message,
                    },
                };
                if tx.send(inbound).is_err() {
                    return; // driver gone
                }
            }
            buf.drain(..consumed);
        }
    })
}

/// Spawns the accept loop: every inbound connection gets its own reader
/// thread.  Exits when `shutdown` is raised (the driver wakes the loop by
/// dialling its own listener once).
pub(crate) fn spawn_acceptor(
    listener: TcpListener,
    tx: Sender<Inbound>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let _ = listener.set_nonblocking(true);
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    // Readers exit on their own via the shutdown flag (or
                    // the read timeout); no join bookkeeping needed.
                    let _ = spawn_reader(stream, tx.clone(), shutdown.clone());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => return,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_broker::{ClientId, Envelope};
    use rebeca_filter::Notification;

    fn envelope(seq: u64) -> Envelope {
        Envelope {
            publisher: ClientId::new(1),
            publisher_seq: seq,
            notification: Notification::builder().attr("spot", seq as i64).build(),
        }
    }

    fn frame(message: Message) -> Frame {
        Frame::Message {
            from: NodeId::new(0),
            to: NodeId::new(1),
            delay_micros: 7,
            message,
        }
    }

    #[test]
    fn oversized_batches_split_in_order_and_keep_the_route() {
        let whole = frame(Message::NotificationBatch(vec![
            envelope(1),
            envelope(2),
            envelope(3),
        ]));
        let (first, second) = split_frame(whole).expect("batches split");
        match (&first, &second) {
            (
                Frame::Message {
                    from,
                    to,
                    delay_micros,
                    message: Message::NotificationBatch(a),
                },
                Frame::Message {
                    message: Message::NotificationBatch(b),
                    ..
                },
            ) => {
                assert_eq!(
                    (*from, *to, *delay_micros),
                    (NodeId::new(0), NodeId::new(1), 7)
                );
                let seqs: Vec<u64> = a.iter().chain(b).map(|e| e.publisher_seq).collect();
                assert_eq!(seqs, vec![1, 2, 3], "halves concatenate to the original");
            }
            other => panic!("unexpected split {other:?}"),
        }
    }

    #[test]
    fn singletons_and_protocol_steps_refuse_to_split() {
        // A one-element batch cannot shrink further.
        assert!(split_frame(frame(Message::NotificationBatch(vec![envelope(1)]))).is_none());
        // Replay is one protocol step: halving it would flush the holding
        // merge early.
        assert!(split_frame(frame(Message::Replay {
            client: ClientId::new(1),
            filter: rebeca_filter::Filter::new(),
            deliveries: Vec::new(),
        }))
        .is_none());
        assert!(split_frame(Frame::Heartbeat { epoch: 1 }).is_none());
    }
}
