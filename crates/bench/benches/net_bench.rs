//! Loopback TCP transport bench: publish→deliver throughput and relocation
//! latency of [`TcpDriver`] vs the in-process [`ThreadedDriver`].
//!
//! One iteration = one full wall-clock deployment run: build the system(s),
//! settle the subscription, publish `PUBLICATIONS` vacancies (relocating
//! the consumer mid-stream in the `relocation` group), and poll until every
//! delivery arrived.  The TCP side runs TWO drivers in one process — the
//! brokers pumped by a background thread, the clients driven by the bench
//! thread — so every client↔broker message crosses a real loopback socket.
//!
//! Both variants share the completion-driven structure (the same settle
//! window and poll cadence), so their within-run ratio isolates the
//! transport cost.  `scripts/bench_gate.py` gates the `threaded` vs `tcp`
//! ratios and the absolute medians against `BENCH_net.json`.
//!
//! Each variant is verified once outside the timed loop: exactly-once
//! delivery of all publications, clean log.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use rebeca_broker::{ClientId, ConsumerLog};
use rebeca_core::{BrokerConfig, MobilitySystem, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_location::MovementGraph;
use rebeca_net::{Endpoint, NetConfig, SystemBuilderTcp, TcpDriver};
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{DelayModel, SimDuration, Topology};

const CONSUMER: ClientId = ClientId::new(1);
const PRODUCER: ClientId = ClientId::new(2);
const PUBLICATIONS: u64 = 40;
/// Wall-clock window left for attach + subscription flooding per run.
const SETTLE: SimDuration = SimDuration::from_millis(30);
/// Poll cadence while waiting for deliveries.
const POLL: SimDuration = SimDuration::from_millis(5);

fn subscription() -> Filter {
    Filter::new().with("service", Constraint::Eq("parking".into()))
}

fn vacancy(i: u64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("spot", i as i64)
        .build()
}

fn builder() -> SystemBuilder {
    SystemBuilder::new(&Topology::line(3))
        .config(
            BrokerConfig::default()
                .with_strategy(RoutingStrategyKind::Covering)
                .with_movement_graph(MovementGraph::paper_example())
                .with_relocation_timeout(SimDuration::from_secs(5)),
        )
        .link_delay(DelayModel::Constant(200))
        .seed(7)
}

fn wait_for_deliveries(sys: &mut MobilitySystem, want: usize) {
    let deadline = sys.now() + SimDuration::from_secs(10);
    loop {
        if sys.client_log(CONSUMER).expect("consumer log").len() >= want {
            return;
        }
        let now = sys.now();
        assert!(now < deadline, "deliveries stalled at {want} wanted");
        sys.run_until(now + POLL);
    }
}

/// The scenario body shared by both drivers (the system is already built).
fn drive(sys: &mut MobilitySystem, relocate: bool) {
    let consumer = sys.connect(CONSUMER, 0).expect("consumer");
    consumer.subscribe(sys, subscription()).expect("subscribe");
    let producer = sys.connect(PRODUCER, 2).expect("producer");
    let now = sys.now();
    sys.run_until(now + SETTLE);

    let half = PUBLICATIONS / 2;
    for i in 1..=half {
        producer.publish(sys, vacancy(i)).expect("publish");
    }
    wait_for_deliveries(sys, half as usize);
    if relocate {
        consumer.move_to(sys, 1).expect("relocate");
    }
    for i in half + 1..=PUBLICATIONS {
        producer.publish(sys, vacancy(i)).expect("publish");
    }
    wait_for_deliveries(sys, PUBLICATIONS as usize);
}

fn run_threaded(relocate: bool) -> ConsumerLog {
    let mut sys = builder().build_threaded().expect("threaded system");
    drive(&mut sys, relocate);
    sys.client_log(CONSUMER).expect("consumer log").clone()
}

fn run_tcp(relocate: bool) -> ConsumerLog {
    // Broker process stand-in: one driver hosting all brokers on an
    // ephemeral loopback listener, pumped by a background thread.
    let placeholder = vec![Endpoint::new("127.0.0.1", 0); 3];
    let driver = TcpDriver::new(NetConfig::new(placeholder).host_all().seed(11))
        .expect("bind broker listener");
    let endpoint = driver.listen_endpoint().clone();
    let broker_sys = builder()
        .build_with(Box::new(driver))
        .expect("broker system");
    let stop = Arc::new(AtomicBool::new(false));
    let pump = {
        let stop = stop.clone();
        let mut sys = broker_sys;
        std::thread::spawn(move || {
            while !stop.load(Ordering::SeqCst) {
                let now = sys.now();
                sys.run_until(now + SimDuration::from_millis(10));
            }
        })
    };

    let mut client_sys = builder()
        .build_tcp(NetConfig::new(vec![endpoint; 3]).seed(13))
        .expect("client system");
    drive(&mut client_sys, relocate);
    let log = client_sys
        .client_log(CONSUMER)
        .expect("consumer log")
        .clone();
    stop.store(true, Ordering::SeqCst);
    pump.join().expect("broker pump");
    log
}

fn verify(log: &ConsumerLog, label: &str) {
    assert!(log.is_clean(), "{label}: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(PRODUCER),
        (1..=PUBLICATIONS).collect::<Vec<u64>>(),
        "{label}: incomplete delivery"
    );
}

fn bench_net(c: &mut Criterion) {
    // Equivalent work outside the timed loops: both transports deliver the
    // full stream exactly once, with and without the mid-run relocation.
    verify(&run_threaded(false), "threaded/quickstart");
    verify(&run_tcp(false), "tcp/quickstart");
    verify(&run_threaded(true), "threaded/relocation");
    verify(&run_tcp(true), "tcp/relocation");

    let mut group = c.benchmark_group("net/quickstart");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("threaded", PUBLICATIONS), &(), |b, _| {
        b.iter(|| black_box(run_threaded(false)))
    });
    group.bench_with_input(BenchmarkId::new("tcp", PUBLICATIONS), &(), |b, _| {
        b.iter(|| black_box(run_tcp(false)))
    });
    group.finish();

    let mut group = c.benchmark_group("net/relocation");
    group.sample_size(10);
    group.bench_with_input(BenchmarkId::new("threaded", PUBLICATIONS), &(), |b, _| {
        b.iter(|| black_box(run_threaded(true)))
    });
    group.bench_with_input(BenchmarkId::new("tcp", PUBLICATIONS), &(), |b, _| {
        b.iter(|| black_box(run_tcp(true)))
    });
    group.finish();
}

criterion_group!(benches, bench_net);
criterion_main!(benches);
