//! The durable, batch-aware mobility engine extracted from the mobility
//! broker of `rebeca-core`.
//!
//! The paper's relocation protocol (Section 4 of *"Supporting Mobility in
//! Content-Based Publish/Subscribe Middleware"*, Fiege et al., Middleware
//! 2003) lives here as two cooperating layers:
//!
//! * [`RelocationMachine`] — a transport-agnostic state machine over
//!   per-stream phases ([`RelocationPhase`]: Local, Holding, AwaitingReplay,
//!   Flushed) with explicit transitions for ReSubscribe / Relocate / Fetch /
//!   Replay / Timeout.  The machine talks to the world through returned
//!   [`Effect`]s, so the mobility-aware broker of `rebeca-core` shrinks to a
//!   thin adapter that wires the machine to the static `BrokerCore` and the
//!   simulator's timers.
//! * [`HandoffLog`] — a per-broker, append-only, length-prefixed and
//!   checksummed write-ahead log behind a pluggable [`LogBackend`]
//!   ([`MemoryBackend`] for the deterministic simulator, [`FileBackend`]
//!   for real runs).  Counterpart buffer appends, relocation begin/commit
//!   and replay acks are logged before the in-memory mutation, periodic
//!   checkpoints compact the log, and [`RelocationMachine::recover`]
//!   reconstructs a restarted broker's virtual counterparts exactly.
//!
//! # Durability scope
//!
//! Recovery guarantees exact counterpart reconstruction at the *old* border
//! broker (the paper's buffering side): the disconnected client record, its
//! subscription, the routing entry towards the client link, the
//! per-stream sequence watermark, every buffered delivery, and the
//! delivery-path re-points of already-committed relocations (carried
//! through checkpoint compaction).  At the *new* border broker a recovered
//! holding reconstructs the attached client and re-arms its relocation
//! timeout, so a replay arriving after the restart still merges; only
//! fresh envelopes held back before the crash are not persisted (see
//! ROADMAP follow-ups for held-envelope journalling).  Each recovery also
//! stamps a fresh restart generation into the log: timeout tags are
//! namespaced per generation, so timers armed by a crashed incarnation can
//! never alias a guard of the restarted one.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
mod log;
mod machine;

pub use log::{
    FileBackend, HandoffLog, HoldingSnapshot, LogBackend, MemoryBackend, RecoveredState,
    StreamSnapshot, WalRecord, DEFAULT_CHECKPOINT_EVERY,
};
pub use machine::{Effect, RelocationMachine, RelocationPhase, StreamKey};

/// Where a deployment persists its per-broker handoff logs.
#[derive(Debug, Clone, Default)]
pub enum PersistenceConfig {
    /// Shared in-process buffers: clones of a broker's backend observe each
    /// other's writes, so a handle kept by the deployment survives a broker
    /// crash.  The default, and what the deterministic simulator uses.
    #[default]
    InMemory,
    /// One WAL file per broker (`broker-<index>.wal`) under the given
    /// persistence root directory.
    Directory(std::path::PathBuf),
}

impl PersistenceConfig {
    /// Creates the backend for broker `index` under this policy.
    pub fn backend_for(&self, index: usize) -> Box<dyn LogBackend> {
        match self {
            PersistenceConfig::InMemory => Box::new(MemoryBackend::new()),
            PersistenceConfig::Directory(root) => {
                Box::new(FileBackend::new(root.join(format!("broker-{index}.wal"))))
            }
        }
    }
}
