//! Sub-linear content-based matching for the Rebeca mobility reproduction.
//!
//! Every hot path of a content-based broker — forwarding a notification,
//! deciding whether a new subscription is already covered, compacting
//! routing state by merging — ultimately asks questions about a large set of
//! stored filters.  Answering them by scanning every filter caps the system
//! at a few thousand subscriptions; content-based matching engines
//! (Gough/Smith-style counting algorithms, Siena, and the matching cores the
//! semantic pub/sub literature builds on) answer them with a **predicate
//! index** instead.  This crate is that index, in two layouts plus the
//! machinery around them:
//!
//! * [`FilterIndex`] — the sequential attribute-partitioned predicate index
//!   and counting matcher.  Constraints are interned (one arena per store,
//!   shared across attributes) and deduplicated into per-attribute
//!   partitions with inline small-vector posting lists; notifications are
//!   matched by evaluating each satisfied predicate once and counting hits
//!   per filter; and the exact covering queries of the §2.2
//!   covering/merging optimizations run the same counting walk over only
//!   the predicates whose partition ranges overlap the probe.
//! * [`ShardedFilterIndex`] — the same engine partitioned across `N` worker
//!   shards by attribute hash, with per-shard counting walks merging into a
//!   final per-entry tally.
//! * [`MatchScratch`] — the external, reusable counting scratchpad.  The
//!   indexes hold no interior mutability and are `Send + Sync`; give each
//!   worker thread its own scratchpad (or use the thread-local fallback)
//!   and match against a shared `&index` from any number of threads.
//! * **Batch matching** — [`FilterIndex::match_batch`] /
//!   [`ShardedFilterIndex::match_batch`] match whole notification queues
//!   with per-predicate lane masks: every posting list is walked once per
//!   64-notification chunk instead of once per notification, and chunks fan
//!   out across `std::thread::scope` workers.
//! * [`FilterSet`] — the covering/merging-aware filter collection used by
//!   routing state, re-homed from `rebeca-filter` and rebuilt on top of the
//!   index.
//!
//! Exactness is a hard requirement: every fast path either proves its answer
//! by construction or falls back to the exact predicate evaluation of
//! `rebeca-filter`, and the crate's property tests assert byte-identical
//! results against the linear-scan oracle (and, for the sharded and batch
//! paths, against the sequential index at every shard count).
//!
//! # Example
//!
//! ```
//! use rebeca_filter::{Constraint, Filter, Notification};
//! use rebeca_matcher::FilterIndex;
//!
//! let mut index: FilterIndex<u64> = FilterIndex::new();
//! for i in 0..1000u64 {
//!     index.insert(i, &Filter::new()
//!         .with("stock", Constraint::Eq("REBECA".into()))
//!         .with("price", Constraint::Lt((i as i64).into())));
//! }
//! let tick = Notification::builder().attr("stock", "REBECA").attr("price", 997).build();
//! // Only the 2 filters with price bounds above 997 match; the index finds
//! // them without touching the other 998.
//! assert_eq!(index.matching_keys(&tick).len(), 2);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod arena;
mod core;
mod filterset;
mod index;
mod scratch;
mod sharded;
mod store;

pub use filterset::{FilterSet, InsertOutcome};
pub use index::FilterIndex;
pub use scratch::MatchScratch;
pub use sharded::{ShardedFilterIndex, DEFAULT_SHARDS};
