//! Property-based tests for the location model: ploc monotonicity
//! (Equation 1 of the paper), convergence, and adaptivity-plan invariants.

use proptest::prelude::*;
use rebeca_location::{AdaptivityPlan, Itinerary, LocationId, MovementGraph};

/// Strategy producing a random connected movement graph (a random spanning
/// tree plus extra edges) together with its size.
fn movement_graph() -> impl Strategy<Value = MovementGraph> {
    (2usize..12, any::<u64>()).prop_map(|(n, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut g = MovementGraph::new(rebeca_location::LocationSpace::with_size(n));
        // Spanning tree: connect each node i>0 to a random earlier node.
        for i in 1..n {
            let j = rng.gen_range(0..i);
            g.add_edge(LocationId(i as u32), LocationId(j as u32));
        }
        // Some extra edges.
        for _ in 0..n {
            let a = rng.gen_range(0..n) as u32;
            let b = rng.gen_range(0..n) as u32;
            if a != b {
                g.add_edge(LocationId(a), LocationId(b));
            }
        }
        g
    })
}

proptest! {
    /// Equation 1: ploc(x, q) ⊆ ploc(x, q + 1).
    #[test]
    fn ploc_is_monotone(g in movement_graph(), q in 0usize..6) {
        for x in g.space().ids() {
            let small = g.ploc(x, q);
            let large = g.ploc(x, q + 1);
            prop_assert!(small.is_subset(&large));
            prop_assert!(small.contains(&x));
        }
    }

    /// ploc eventually converges to the whole (connected) graph.
    #[test]
    fn ploc_converges_to_all_locations(g in movement_graph()) {
        prop_assume!(g.is_connected());
        let all = g.all_locations();
        for x in g.space().ids() {
            prop_assert_eq!(g.ploc(x, g.len()), all.clone());
        }
    }

    /// ploc(x, q) contains exactly the locations within graph distance q.
    #[test]
    fn ploc_agrees_with_distance(g in movement_graph(), q in 0usize..5) {
        for x in g.space().ids() {
            let ball = g.ploc(x, q);
            for y in g.space().ids() {
                let within = g.distance(x, y).map(|d| d <= q).unwrap_or(false);
                prop_assert_eq!(ball.contains(&y), within,
                    "ploc({:?},{}) disagrees with distance for {:?}", x, q, y);
            }
        }
    }

    /// Adaptivity steps are non-decreasing along the path, start at 0, and
    /// every non-client-side hop has at least one step of uncertainty.
    #[test]
    fn adaptivity_steps_are_sane(
        delta in 1u64..1_000_000,
        delays in prop::collection::vec(0u64..1_000_000, 1..8),
    ) {
        let plan = AdaptivityPlan::adaptive(delta, &delays);
        let steps = plan.steps();
        prop_assert_eq!(steps[0], 0);
        prop_assert_eq!(steps.len(), delays.len() + 1);
        for s in &steps[1..] {
            prop_assert!(*s >= 1);
        }
        for w in steps[1..].windows(2) {
            prop_assert!(w[0] <= w[1]);
        }
    }

    /// The adaptive plan never subscribes to fewer locations than the
    /// global-sub/unsub plan and never more than flooding.
    #[test]
    fn adaptive_plan_is_between_the_trivial_plans(
        g in movement_graph(),
        delta in 1u64..100_000,
        delays in prop::collection::vec(1u64..100_000, 1..6),
    ) {
        let adaptive = AdaptivityPlan::adaptive(delta, &delays);
        let trivial = AdaptivityPlan::global_sub_unsub(delays.len());
        let flooding = AdaptivityPlan::flooding(delays.len());
        for x in g.space().ids() {
            let a = adaptive.location_sets(&g, x);
            let t = trivial.location_sets(&g, x);
            let f = flooding.location_sets(&g, x);
            for i in 0..a.len() {
                prop_assert!(t[i].is_subset(&a[i]));
                prop_assert!(a[i].is_subset(&f[i]));
            }
        }
    }

    /// Random walks generated on a graph always respect that graph.
    #[test]
    fn random_walks_respect_the_graph(g in movement_graph(), seed in any::<u64>(), steps in 1usize..40) {
        use rand::SeedableRng;
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let start = LocationId(0);
        let it = Itinerary::random_walk(&g, start, steps, 1_000, &mut rng);
        prop_assert_eq!(it.len(), steps);
        prop_assert!(it.respects(&g));
    }

    /// `location_at` is consistent with `change_times`.
    #[test]
    fn location_at_is_consistent_with_change_times(
        locs in prop::collection::vec(0u32..10, 1..10),
        residence in 1u64..1_000,
    ) {
        let it = Itinerary::uniform(locs.iter().map(|&l| LocationId(l)), residence);
        for (t, loc) in it.change_times() {
            prop_assert_eq!(it.location_at(t), Some(loc));
            // Just before the change the client is somewhere else or the same
            // location (consecutive equal stops), never an unknown location.
            prop_assert!(it.location_at(t - 1).is_some());
        }
    }
}
