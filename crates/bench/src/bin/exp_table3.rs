//! Regenerates Table 3 of the paper: `ploc(x, t)` for the trivial global
//! sub/unsub implementation (top) and flooding with client-side filtering
//! (bottom).
fn main() {
    let (top, bottom) = rebeca_bench::tables::table3();
    print!("{}", top.render());
    println!();
    print!("{}", bottom.render());
}
