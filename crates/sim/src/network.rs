//! The discrete-event network: nodes, FIFO links and the event loop.
//!
//! The communication topology of the pub/sub system is a graph of brokers
//! and clients connected by point-to-point, FIFO-order, error-free links
//! (Section 2.1 of the paper).  [`Network`] reproduces exactly this model:
//! nodes implement the [`Node`] trait, links carry a [`DelayModel`], per-link
//! FIFO order is enforced even with random delays, and the whole simulation
//! is driven by a single seeded event queue so every run is deterministic.

use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::delay::DelayModel;
use crate::metrics::Metrics;
use crate::time::{SimDuration, SimTime};

/// Identifier of one node (broker or client) in the simulated network.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct NodeId(pub usize);

impl NodeId {
    /// Creates a node id from a dense index.
    pub const fn new(index: usize) -> Self {
        NodeId(index)
    }

    /// The dense index of the node (usable as a `Vec` index).
    pub const fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Error parsing a [`NodeId`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseNodeIdError(String);

impl fmt::Display for ParseNodeIdError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid node id {:?} (expected \"n3\" or \"3\")", self.0)
    }
}

impl std::error::Error for ParseNodeIdError {}

impl std::str::FromStr for NodeId {
    type Err = ParseNodeIdError;

    /// Parses the [`Display`](fmt::Display) form `"n3"`, or a bare index
    /// `"3"` as written in topology config files.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s.strip_prefix('n').unwrap_or(s);
        digits
            .parse::<usize>()
            .map(NodeId)
            .map_err(|_| ParseNodeIdError(s.to_string()))
    }
}

/// An event delivered to a node.
#[derive(Debug, Clone, PartialEq)]
pub enum Incoming<M> {
    /// A message arriving over a link.
    Message {
        /// The sending node.
        from: NodeId,
        /// The message payload.
        message: M,
    },
    /// A timer previously set by the node (or scheduled externally) fired.
    Timer {
        /// The tag passed when the timer was set.
        tag: u64,
    },
}

/// Behaviour of one simulated node.
///
/// Nodes are purely reactive: they receive [`Incoming`] events and use the
/// [`Context`] to send messages, set timers and record metrics.
pub trait Node {
    /// The message type exchanged over links.
    type Message: Clone;

    /// Handles one event.
    fn handle(&mut self, ctx: &mut Context<'_, Self::Message>, event: Incoming<Self::Message>);
}

/// What one dispatch produced: messages to transmit (destination, payload)
/// and timers to arm (delay from now, tag) — the harvest side of the
/// sans-IO node interface.
pub type Harvest<M> = (Vec<(NodeId, M)>, Vec<(SimDuration, u64)>);

/// The API a node uses while handling an event.
pub struct Context<'a, M> {
    now: SimTime,
    self_id: NodeId,
    neighbours: &'a [NodeId],
    metrics: &'a mut Metrics,
    outgoing: Vec<(NodeId, M)>,
    timers: Vec<(SimDuration, u64)>,
}

impl<'a, M> Context<'a, M> {
    /// Creates a context for a single dispatch — the entry point for
    /// *external* drivers (wall-clock event loops, future network
    /// transports) hosting sans-IO nodes outside a [`Network`].  The driver
    /// hands the node this context together with the event, then collects
    /// the node's output with [`Context::into_harvest`].
    pub fn external(
        now: SimTime,
        self_id: NodeId,
        neighbours: &'a [NodeId],
        metrics: &'a mut Metrics,
    ) -> Self {
        Self {
            now,
            self_id,
            neighbours,
            metrics,
            outgoing: Vec::new(),
            timers: Vec::new(),
        }
    }

    /// Consumes the context and returns what the node produced during the
    /// dispatch: messages to transmit (destination, payload) and timers to
    /// arm (delay from now, tag).
    pub fn into_harvest(self) -> Harvest<M> {
        (self.outgoing, self.timers)
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The id of the node handling the event.
    pub fn self_id(&self) -> NodeId {
        self.self_id
    }

    /// The ids of the nodes this node has links to.
    pub fn neighbours(&self) -> &[NodeId] {
        self.neighbours
    }

    /// Sends a message to a neighbouring node.  The network panics when the
    /// destination is not a neighbour (links are point-to-point and fixed).
    pub fn send(&mut self, to: NodeId, message: M) {
        self.outgoing.push((to, message));
    }

    /// Sets a timer that fires after `delay` with the given tag.
    pub fn set_timer(&mut self, delay: SimDuration, tag: u64) {
        self.timers.push((delay, tag));
    }

    /// Mutable access to the global metrics store.
    pub fn metrics(&mut self) -> &mut Metrics {
        self.metrics
    }
}

/// One scheduled entry in the event queue.
#[derive(Debug, Clone)]
struct Scheduled<M> {
    at: SimTime,
    seq: u64,
    to: NodeId,
    event: Incoming<M>,
}

impl<M> PartialEq for Scheduled<M> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<M> Eq for Scheduled<M> {}
impl<M> PartialOrd for Scheduled<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for Scheduled<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// A point-to-point, FIFO, error-free link.
#[derive(Debug, Clone)]
struct Link {
    delay: DelayModel,
    /// Latest arrival time already scheduled in this direction; used to
    /// enforce FIFO order even when random delays would reorder messages.
    last_arrival: SimTime,
}

/// The simulated network: nodes, links, the event queue and global metrics.
pub struct Network<N: Node> {
    nodes: Vec<Option<N>>,
    neighbours: Vec<Vec<NodeId>>,
    links: BTreeMap<(NodeId, NodeId), Link>,
    queue: BinaryHeap<Reverse<Scheduled<N::Message>>>,
    now: SimTime,
    seq: u64,
    rng: StdRng,
    metrics: Metrics,
    events_processed: u64,
}

impl<N: Node> Network<N> {
    /// Creates an empty network whose random delays are derived from `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            nodes: Vec::new(),
            neighbours: Vec::new(),
            links: BTreeMap::new(),
            queue: BinaryHeap::new(),
            now: SimTime::ZERO,
            seq: 0,
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::new(),
            events_processed: 0,
        }
    }

    /// Adds a node and returns its id.
    pub fn add_node(&mut self, node: N) -> NodeId {
        let id = NodeId(self.nodes.len());
        self.nodes.push(Some(node));
        self.neighbours.push(Vec::new());
        id
    }

    /// Connects two nodes with a bidirectional FIFO link using the same delay
    /// model in both directions.
    ///
    /// # Panics
    ///
    /// Panics when either node id is unknown or the link already exists.
    pub fn connect(&mut self, a: NodeId, b: NodeId, delay: DelayModel) {
        assert!(a.0 < self.nodes.len(), "unknown node {a}");
        assert!(b.0 < self.nodes.len(), "unknown node {b}");
        assert_ne!(a, b, "self links are not allowed");
        assert!(
            !self.links.contains_key(&(a, b)),
            "link {a} <-> {b} already exists"
        );
        for (x, y) in [(a, b), (b, a)] {
            self.links.insert(
                (x, y),
                Link {
                    delay,
                    last_arrival: SimTime::ZERO,
                },
            );
        }
        self.neighbours[a.0].push(b);
        self.neighbours[b.0].push(a);
    }

    /// The neighbours of a node.
    pub fn neighbours(&self, id: NodeId) -> &[NodeId] {
        &self.neighbours[id.0]
    }

    /// `true` when a link between the two nodes exists (in either direction;
    /// links are always bidirectional).
    pub fn has_link(&self, a: NodeId, b: NodeId) -> bool {
        self.links.contains_key(&(a, b))
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` when the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.events_processed
    }

    /// Read access to the global metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Mutable access to the global metrics (e.g. for sampling from an
    /// experiment driver between [`Network::run_until`] calls).
    pub fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    /// Immutable access to a node.
    ///
    /// # Panics
    ///
    /// Panics if the node is currently handling an event (never the case
    /// between `run_*` calls) or the id is unknown.
    pub fn node(&self, id: NodeId) -> &N {
        self.nodes[id.0].as_ref().expect("node is busy")
    }

    /// Mutable access to a node (e.g. to inspect or tweak state between
    /// simulation phases).
    pub fn node_mut(&mut self, id: NodeId) -> &mut N {
        self.nodes[id.0].as_mut().expect("node is busy")
    }

    /// Replaces a node's behaviour/state in place, returning the old node —
    /// the crash/restart hook: links, queued events and in-flight messages
    /// addressed to the node are untouched, only the node state changes
    /// (e.g. a broker restarted from its write-ahead log).
    ///
    /// # Panics
    ///
    /// Panics when the id is unknown or the node is currently handling an
    /// event (never the case between `run_*` calls).
    pub fn replace_node(&mut self, id: NodeId, node: N) -> N {
        assert!(id.0 < self.nodes.len(), "unknown node {id}");
        self.nodes[id.0]
            .replace(node)
            .expect("node is busy (re-entrant replace?)")
    }

    /// Injects a message from "outside the system" (e.g. an application
    /// driving a client) to be delivered to `to` at the current time.
    pub fn inject(&mut self, to: NodeId, message: N::Message) {
        let at = self.now;
        self.push(at, to, Incoming::Message { from: to, message });
    }

    /// Schedules a timer event for a node at `now + delay` with a tag chosen
    /// by the caller.
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimDuration, tag: u64) {
        let at = self.now + delay;
        self.push(at, node, Incoming::Timer { tag });
    }

    fn push(&mut self, at: SimTime, to: NodeId, event: Incoming<N::Message>) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Scheduled { at, seq, to, event }));
    }

    /// Sends a message over the link from `from` to `to`, sampling the link
    /// delay and enforcing FIFO order.
    fn transmit(&mut self, from: NodeId, to: NodeId, message: N::Message) {
        let link = self
            .links
            .get_mut(&(from, to))
            .unwrap_or_else(|| panic!("no link {from} -> {to}"));
        let delay = link.delay.sample(&mut self.rng);
        let mut arrival = self.now + delay;
        if arrival < link.last_arrival {
            arrival = link.last_arrival;
        }
        link.last_arrival = arrival;
        self.metrics.incr("network.messages");
        self.push(arrival, to, Incoming::Message { from, message });
    }

    /// Processes a single event.  Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        let Some(Reverse(scheduled)) = self.queue.pop() else {
            return false;
        };
        debug_assert!(scheduled.at >= self.now, "time must not run backwards");
        self.now = scheduled.at;
        self.events_processed += 1;

        let id = scheduled.to;
        let mut node = self.nodes[id.0]
            .take()
            .expect("node is busy (re-entrant event?)");
        let mut ctx = Context {
            now: self.now,
            self_id: id,
            neighbours: &self.neighbours[id.0],
            metrics: &mut self.metrics,
            outgoing: Vec::new(),
            timers: Vec::new(),
        };
        node.handle(&mut ctx, scheduled.event);
        let Context {
            outgoing, timers, ..
        } = ctx;
        self.nodes[id.0] = Some(node);

        for (to, message) in outgoing {
            self.transmit(id, to, message);
        }
        for (delay, tag) in timers {
            let at = self.now + delay;
            self.push(at, id, Incoming::Timer { tag });
        }
        true
    }

    /// Runs the simulation until the event queue is empty or `max_events`
    /// further events have been processed.  Returns the number of events
    /// processed by this call.
    pub fn run(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events && self.step() {
            processed += 1;
        }
        processed
    }

    /// Runs the simulation until virtual time reaches `until` (events
    /// scheduled later stay in the queue) or the queue is empty.  Returns the
    /// number of events processed.
    pub fn run_until(&mut self, until: SimTime) -> u64 {
        let mut processed = 0;
        loop {
            match self.queue.peek() {
                Some(Reverse(s)) if s.at <= until => {
                    self.step();
                    processed += 1;
                }
                _ => break,
            }
        }
        // Advance the clock even if nothing was scheduled in the window.
        if self.now < until {
            self.now = until;
        }
        processed
    }

    /// `true` when no further events are scheduled.
    pub fn is_idle(&self) -> bool {
        self.queue.is_empty()
    }
}

impl<N: Node> fmt::Debug for Network<N> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("nodes", &self.nodes.len())
            .field("links", &(self.links.len() / 2))
            .field("now", &self.now)
            .field("queued", &self.queue.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A node that forwards every received number to all neighbours once,
    /// incremented by one, and records what it saw.
    #[derive(Default)]
    struct Echo {
        seen: Vec<(SimTime, NodeId, u64)>,
        forward: bool,
    }

    impl Node for Echo {
        type Message = u64;
        fn handle(&mut self, ctx: &mut Context<'_, u64>, event: Incoming<u64>) {
            match event {
                Incoming::Message { from, message } => {
                    self.seen.push((ctx.now(), from, message));
                    ctx.metrics().incr("echo.received");
                    if self.forward {
                        let neighbours: Vec<NodeId> = ctx.neighbours().to_vec();
                        for n in neighbours {
                            if n != from {
                                ctx.send(n, message + 1);
                            }
                        }
                    }
                }
                Incoming::Timer { tag } => {
                    self.seen.push((ctx.now(), ctx.self_id(), tag));
                }
            }
        }
    }

    fn line(n: usize, forward: bool, delay: DelayModel) -> (Network<Echo>, Vec<NodeId>) {
        let mut net = Network::new(1);
        let ids: Vec<NodeId> = (0..n)
            .map(|_| {
                net.add_node(Echo {
                    seen: Vec::new(),
                    forward,
                })
            })
            .collect();
        for w in ids.windows(2) {
            net.connect(w[0], w[1], delay);
        }
        (net, ids)
    }

    #[test]
    fn messages_propagate_along_a_line_with_accumulated_delay() {
        let (mut net, ids) = line(3, true, DelayModel::constant_millis(10));
        net.inject(ids[0], 100);
        net.run(100);
        // Node 1 receives 101 at t=10ms, node 2 receives 102 at t=20ms.
        assert_eq!(net.node(ids[1]).seen.len(), 1);
        assert_eq!(net.node(ids[1]).seen[0].2, 101);
        assert_eq!(net.node(ids[1]).seen[0].0, SimTime::from_millis(10));
        assert_eq!(net.node(ids[2]).seen[0].2, 102);
        assert_eq!(net.node(ids[2]).seen[0].0, SimTime::from_millis(20));
    }

    #[test]
    fn fifo_order_is_preserved_despite_random_delays() {
        let (mut net, ids) = line(
            2,
            false,
            DelayModel::Uniform {
                min_micros: 1_000,
                max_micros: 50_000,
            },
        );
        for i in 0..50 {
            net.inject(ids[0], i);
        }
        // The injections all arrive at node 0 at t=0; node 0 does not forward,
        // so instead test FIFO on a direct sender: connect and send manually.
        net.run(1000);
        // Re-test with a forwarding chain: send many messages from node 0 to 1.
        let mut net2: Network<Echo> = Network::new(7);
        let a = net2.add_node(Echo {
            seen: vec![],
            forward: true,
        });
        let b = net2.add_node(Echo {
            seen: vec![],
            forward: false,
        });
        net2.connect(
            a,
            b,
            DelayModel::Uniform {
                min_micros: 100,
                max_micros: 100_000,
            },
        );
        for i in 0..100 {
            net2.inject(a, i);
        }
        net2.run(10_000);
        let received: Vec<u64> = net2.node(b).seen.iter().map(|(_, _, m)| *m).collect();
        let mut sorted = received.clone();
        sorted.sort_unstable();
        assert_eq!(received, sorted, "per-link FIFO order must hold");
        assert_eq!(received.len(), 100);
        // Arrival times never decrease.
        let times: Vec<SimTime> = net2.node(b).seen.iter().map(|(t, _, _)| *t).collect();
        assert!(times.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn timers_fire_at_the_right_time() {
        let (mut net, ids) = line(1, false, DelayModel::default());
        net.schedule_timer(ids[0], SimDuration::from_millis(5), 42);
        net.schedule_timer(ids[0], SimDuration::from_millis(1), 7);
        net.run(10);
        let seen = &net.node(ids[0]).seen;
        assert_eq!(seen.len(), 2);
        assert_eq!(seen[0].2, 7);
        assert_eq!(seen[0].0, SimTime::from_millis(1));
        assert_eq!(seen[1].2, 42);
        assert_eq!(seen[1].0, SimTime::from_millis(5));
    }

    #[test]
    fn run_until_stops_at_the_requested_time() {
        let (mut net, ids) = line(2, true, DelayModel::constant_millis(10));
        net.inject(ids[0], 1);
        let processed = net.run_until(SimTime::from_millis(5));
        assert_eq!(processed, 1, "only the injection is processed before 5ms");
        assert_eq!(net.now(), SimTime::from_millis(5));
        assert!(net.node(ids[1]).seen.is_empty());
        net.run_until(SimTime::from_millis(20));
        assert_eq!(net.node(ids[1]).seen.len(), 1);
    }

    #[test]
    fn metrics_count_network_messages() {
        let (mut net, ids) = line(3, true, DelayModel::constant_millis(1));
        net.inject(ids[0], 5);
        net.run(100);
        // node0 -> node1, node1 -> node2: two link transmissions.
        assert_eq!(net.metrics().counter("network.messages"), 2);
        assert_eq!(net.metrics().counter("echo.received"), 3);
    }

    #[test]
    fn determinism_for_equal_seeds() {
        let run = |seed| {
            let mut net: Network<Echo> = Network::new(seed);
            let a = net.add_node(Echo {
                seen: vec![],
                forward: true,
            });
            let b = net.add_node(Echo {
                seen: vec![],
                forward: false,
            });
            net.connect(
                a,
                b,
                DelayModel::Uniform {
                    min_micros: 0,
                    max_micros: 10_000,
                },
            );
            for i in 0..20 {
                net.inject(a, i);
            }
            net.run(1_000);
            net.node(b).seen.clone()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4));
    }

    #[test]
    #[should_panic(expected = "already exists")]
    fn duplicate_links_are_rejected() {
        let (mut net, ids) = line(2, false, DelayModel::default());
        net.connect(ids[0], ids[1], DelayModel::default());
    }

    #[test]
    #[should_panic(expected = "no link")]
    fn sending_without_a_link_panics() {
        // A node that sends to a node it has no link to.
        struct Rogue;
        impl Node for Rogue {
            type Message = u64;
            fn handle(&mut self, ctx: &mut Context<'_, u64>, _e: Incoming<u64>) {
                ctx.send(NodeId(1), 1);
            }
        }
        let mut net: Network<Rogue> = Network::new(0);
        let r = net.add_node(Rogue);
        net.add_node(Rogue);
        net.inject(r, 0);
        net.run(10);
    }

    #[test]
    fn node_ids_parse_from_display_and_bare_indices() {
        assert_eq!("n3".parse::<NodeId>().unwrap(), NodeId(3));
        assert_eq!("3".parse::<NodeId>().unwrap(), NodeId(3));
        assert_eq!(NodeId(9).to_string().parse::<NodeId>().unwrap(), NodeId(9));
        for bad in ["", "n", "nx", "c3", "-1"] {
            let err = bad.parse::<NodeId>().unwrap_err();
            assert!(err.to_string().contains("invalid node id"), "{bad}");
        }
    }

    #[test]
    fn is_idle_after_draining() {
        let (mut net, ids) = line(2, false, DelayModel::default());
        assert!(net.is_idle());
        net.inject(ids[0], 1);
        assert!(!net.is_idle());
        net.run(10);
        assert!(net.is_idle());
        assert_eq!(net.events_processed(), 1);
    }
}
