//! [`TcpDriver`]: the sans-IO [`Driver`] over real TCP sockets.
//!
//! A deployment is a set of OS processes, each running one `TcpDriver`
//! hosting a subset of the global node space — classically one broker per
//! process (the `rebeca-node` binary), plus one process per application
//! hosting its client nodes.  Every process shares the same broker
//! topology, so broker `i` is [`NodeId`] `i` everywhere; client nodes get
//! ids above the broker range, allocated by the process that hosts them.
//!
//! The driver runs a single-threaded event loop over the local nodes
//! (dispatch due events, harvest sends and timers), with per-connection
//! reader/writer threads doing the blocking socket work (see
//! [`link`](crate::link) module docs).  The event-ordering machinery —
//! due-time heaps with insertion-order tie-break and the per-direction
//! monotonic due-time clamp — is shared with
//! [`ThreadedDriver`](rebeca_core::ThreadedDriver) via
//! [`rebeca_core::driver_util`], so the FIFO rules cannot diverge between
//! the wall-clock drivers.
//!
//! # Remote nodes
//!
//! [`Driver::add_node`] calls for nodes another process hosts park the
//! state as an inert *placeholder*: it is never dispatched, and reading it
//! through [`Driver::node`] observes the initial state only.  Inspect
//! brokers and client logs from the process that hosts them.
//!
//! # Link delays
//!
//! Configured [`DelayModel`]s are honoured over TCP: the sender samples the
//! delay and ships it in the frame; the receiver schedules the event that
//! much later than its arrival (clamped per direction, so the link stays
//! FIFO).  Deployments that want raw socket latency configure
//! `DelayModel::Constant(0)`.

use std::collections::{BTreeSet, HashMap, HashSet};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use rebeca_core::driver_util::{broker_status, FifoClamp, PendingQueue, WallClock};
use rebeca_core::{Driver, MobilitySystem, RebecaError, SystemBuilder, SystemNode};
use rebeca_obs::{LinkStatus, SpanRecord, StatusReport, TraceReport};
use rebeca_sim::{Context, DelayModel, Incoming, Metrics, Node, NodeId, SimDuration, SimTime};

use crate::endpoint::Endpoint;
use crate::link::{
    spawn_acceptor, spawn_writer, FaultPlan, Inbound, LinkConfig, LinkEvent, LinkRegistry,
    WriterCmd,
};
use crate::wire::Frame;

/// Upper bound on how long the event loop blocks waiting for network
/// traffic before re-checking its deadlines.
const MAX_WAIT: Duration = Duration::from_millis(1);

/// Configuration of one process of a TCP deployment.
#[derive(Debug, Clone)]
pub struct NetConfig {
    /// Listen endpoint of every broker, indexed by topology index (broker
    /// `i` is `NodeId(i)` in every process).
    endpoints: Vec<Endpoint>,
    /// Which brokers THIS process hosts (empty for a pure client process).
    local: BTreeSet<usize>,
    /// Where this process listens.  Defaults to the endpoint of its lowest
    /// hosted broker, or an ephemeral loopback port for client processes.
    listen: Option<Endpoint>,
    /// Restart epoch carried in every handshake.  Readers fence peers
    /// whose epoch regresses, so a restarted process MUST bump it.
    epoch: u64,
    /// Seed of the per-process link-delay sampling.
    seed: u64,
    /// Idle interval after which a writer sends a heartbeat.
    heartbeat: Duration,
    /// Interval between dial attempts while a peer process is not up yet.
    dial_retry: Duration,
    /// Backoff cap for redials after a connection loss (the backoff starts
    /// at `dial_retry` and doubles with jitter up to this cap).
    redial_max: Duration,
    /// Maximum unacknowledged frames a writer holds for replay across a
    /// reconnect; overflow fails the link loudly instead of losing frames.
    resend_window: usize,
    /// Heartbeat intervals of silence after which an inbound link is
    /// declared down (surfaced in status reports and the journal).
    missed_heartbeats: u32,
    /// Optional link-layer fault injection (tests, benches, chaos drills).
    fault: Option<FaultPlan>,
    /// First node id this process allocates for client nodes.  Defaults to
    /// the end of the broker range; set distinct bases on different client
    /// processes so their client node ids cannot collide.
    first_client_node: Option<usize>,
    /// The endpoint advertised in handshakes for reverse connections.
    /// Defaults to the listen host (wildcard hosts fall back to loopback)
    /// with the actually bound port; LAN deployments binding a wildcard
    /// must set this to a routable address.
    advertise: Option<Endpoint>,
}

impl NetConfig {
    /// Starts a config over the cluster's broker endpoints (index `i` is
    /// broker `i` of the topology).
    pub fn new(endpoints: Vec<Endpoint>) -> Self {
        Self {
            endpoints,
            local: BTreeSet::new(),
            listen: None,
            epoch: 0,
            seed: 0,
            heartbeat: Duration::from_millis(500),
            dial_retry: Duration::from_millis(50),
            redial_max: Duration::from_secs(1),
            resend_window: 1024,
            missed_heartbeats: 3,
            fault: None,
            first_client_node: None,
            advertise: None,
        }
    }

    /// Declares broker `index` as hosted by this process.
    pub fn host(mut self, index: usize) -> Self {
        self.local.insert(index);
        self
    }

    /// Declares every broker as hosted by this process (a single-process
    /// cluster over loopback TCP — useful for tests and benches).
    pub fn host_all(mut self) -> Self {
        self.local = (0..self.endpoints.len()).collect();
        self
    }

    /// Overrides the listen endpoint of this process.
    pub fn listen(mut self, endpoint: Endpoint) -> Self {
        self.listen = Some(endpoint);
        self
    }

    /// Sets the restart epoch carried in handshakes.
    pub fn epoch(mut self, epoch: u64) -> Self {
        self.epoch = epoch;
        self
    }

    /// Seeds the link-delay sampling of this process.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the writer-idle heartbeat interval.
    pub fn heartbeat(mut self, interval: Duration) -> Self {
        self.heartbeat = interval;
        self
    }

    /// Caps the exponential redial backoff after a connection loss.
    pub fn redial_max(mut self, cap: Duration) -> Self {
        self.redial_max = cap;
        self
    }

    /// Bounds the per-link resend window (unacknowledged frames held for
    /// replay across reconnects).
    pub fn resend_window(mut self, frames: usize) -> Self {
        self.resend_window = frames;
        self
    }

    /// Sets how many silent heartbeat intervals declare an inbound link
    /// down.
    pub fn missed_heartbeats(mut self, count: u32) -> Self {
        self.missed_heartbeats = count;
        self
    }

    /// Installs a link-layer [`FaultPlan`] (drop connections after k
    /// frames) for chaos tests and reconnect benchmarks.
    pub fn fault(mut self, plan: FaultPlan) -> Self {
        self.fault = Some(plan);
        self
    }

    /// Sets the first node id allocated for client nodes (see the field
    /// docs; only needed when several client processes join one cluster).
    pub fn first_client_node(mut self, base: usize) -> Self {
        self.first_client_node = Some(base);
        self
    }

    /// Sets the endpoint advertised in handshakes for reverse connections
    /// (needed when the process binds a wildcard address on a LAN — peers
    /// cannot dial `0.0.0.0` back).
    pub fn advertise(mut self, endpoint: Endpoint) -> Self {
        self.advertise = Some(endpoint);
        self
    }
}

/// The TCP transport driver.  See the module docs for the deployment and
/// execution model.
pub struct TcpDriver {
    cfg: NetConfig,
    /// The endpoint peers dial back (advertised in every Hello).
    advertised: Endpoint,
    /// Locally hosted nodes, by node index.
    nodes: HashMap<usize, SystemNode>,
    /// Inert stand-ins for nodes hosted by other processes.
    placeholders: HashMap<usize, SystemNode>,
    /// Per local node: the peers it may send to.
    neighbours: HashMap<usize, Vec<NodeId>>,
    delays: HashMap<(NodeId, NodeId), DelayModel>,
    /// Listen endpoints of client peers, learned from their handshakes.
    learned: HashMap<usize, Endpoint>,
    /// Highest epoch seen per peer (handshake bookkeeping).
    peer_epochs: HashMap<usize, u64>,
    /// Receive-side clamp per directed link (network arrivals).
    clamp_in: FifoClamp<(NodeId, NodeId)>,
    /// Send-side clamp for local-to-local deliveries.
    clamp_local: FifoClamp<(NodeId, NodeId)>,
    pending: HashMap<usize, PendingQueue>,
    /// Outbound connections: `(local node, peer node)` → command queue.
    writers: HashMap<(usize, usize), Sender<WriterCmd>>,
    /// When each peer was last heard from (any frame on an inbound
    /// connection) — the source of `last_heartbeat_age_ms` in status
    /// reports.
    last_seen: HashMap<usize, Instant>,
    /// Whether the outbound connection to a peer is currently established,
    /// as reported by its writer thread.
    link_up: HashMap<usize, bool>,
    /// Peers declared down by heartbeat silence (cleared as soon as any
    /// frame arrives from them again).
    stale_links: HashSet<usize>,
    /// When each currently-down peer link went down (either direction).
    down_since: HashMap<usize, Instant>,
    /// Lifetime redial attempts per peer, as reported by writer threads.
    redials: HashMap<usize, u64>,
    /// Next wall-clock instant at which heartbeat-silence liveness is
    /// re-evaluated (throttled to the heartbeat cadence).
    next_liveness: Instant,
    /// A handle on the inbound event channel, handed to writer threads so
    /// they can report link state transitions.
    incoming_tx: Sender<Inbound>,
    incoming_rx: Receiver<Inbound>,
    clock: WallClock,
    rng: StdRng,
    metrics: Metrics,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    wake_addr: std::net::SocketAddr,
    next_node: usize,
    /// Nonce for the `link.tx`/`link.rx` span ids this driver mints (the
    /// high bits keep them disjoint from broker-minted span ids).
    trace_nonce: u64,
}

impl TcpDriver {
    /// Binds the process listener and starts accepting connections.
    ///
    /// # Errors
    ///
    /// Besides bind failures, rejects a config that hosts a broker index
    /// outside the cluster, and one whose co-hosted brokers have differing
    /// configured endpoints: the process has exactly one listener, so peers
    /// resolving any hosted broker must all arrive at the same address
    /// (otherwise their dial-retry loops would spin forever against an
    /// endpoint nobody serves).
    pub fn new(cfg: NetConfig) -> std::io::Result<Self> {
        if let Some(&bad) = cfg.local.iter().find(|&&i| i >= cfg.endpoints.len()) {
            return Err(std::io::Error::other(format!(
                "hosted broker index {bad} is outside the cluster \
                 (endpoints declare {} brokers, indices 0-{})",
                cfg.endpoints.len(),
                cfg.endpoints.len().saturating_sub(1)
            )));
        }
        let mut hosted = cfg.local.iter().filter_map(|&i| cfg.endpoints.get(i));
        if let Some(first) = hosted.next() {
            if let Some(other) = hosted.find(|&ep| ep != first) {
                return Err(std::io::Error::other(format!(
                    "co-hosted brokers must share one configured endpoint \
                     (got {first} and {other}); run them in separate \
                     processes or point their endpoints at the same address"
                )));
            }
        }
        let listen = match &cfg.listen {
            Some(ep) => ep.clone(),
            None => match cfg.local.iter().next() {
                Some(&lowest) => cfg.endpoints[lowest].clone(),
                None => Endpoint::new("127.0.0.1", 0),
            },
        };
        let listener = TcpListener::bind(listen.socket_addr()?)?;
        let bound = listener.local_addr()?;
        let advertised = match &cfg.advertise {
            Some(ep) => ep.clone(),
            None => {
                // A wildcard bind is reachable on every interface but
                // dialable on none; default the dial-back address to
                // loopback (LAN deployments set `NetConfig::advertise`).
                let host = match listen.host() {
                    "0.0.0.0" | "::" | "" => "127.0.0.1",
                    host => host,
                };
                Endpoint::new(host, bound.port())
            }
        };
        let (incoming_tx, incoming_rx) = channel();
        let shutdown = Arc::new(AtomicBool::new(false));
        // Shared fencing/dedup bookkeeping of every reader thread: newest
        // epoch per peer, receive high-water mark per direction.
        let registry = Arc::new(LinkRegistry::default());
        let acceptor = spawn_acceptor(listener, incoming_tx.clone(), shutdown.clone(), registry);
        let seed = cfg.seed;
        Ok(Self {
            cfg,
            advertised,
            nodes: HashMap::new(),
            placeholders: HashMap::new(),
            neighbours: HashMap::new(),
            delays: HashMap::new(),
            learned: HashMap::new(),
            peer_epochs: HashMap::new(),
            clamp_in: FifoClamp::new(),
            clamp_local: FifoClamp::new(),
            pending: HashMap::new(),
            writers: HashMap::new(),
            last_seen: HashMap::new(),
            link_up: HashMap::new(),
            stale_links: HashSet::new(),
            down_since: HashMap::new(),
            redials: HashMap::new(),
            next_liveness: Instant::now(),
            incoming_tx,
            incoming_rx,
            clock: WallClock::anchored_now(SimTime::ZERO),
            rng: StdRng::seed_from_u64(seed),
            metrics: Metrics::new(),
            shutdown,
            acceptor: Some(acceptor),
            wake_addr: bound,
            next_node: 0,
            trace_nonce: 0,
        })
    }

    /// The endpoint this process advertises in handshakes (its bound
    /// listener; the port is concrete even when configured as `:0`).
    pub fn listen_endpoint(&self) -> &Endpoint {
        &self.advertised
    }

    /// The highest restart epoch a peer has announced, if it ever dialled
    /// this process.
    pub fn peer_epoch(&self, node: NodeId) -> Option<u64> {
        self.peer_epochs.get(&node.index()).copied()
    }

    fn is_local(&self, index: usize) -> bool {
        self.nodes.contains_key(&index)
    }

    /// The endpoint of a peer node: brokers from the config, clients from
    /// their handshakes.
    fn endpoint_of(&self, peer: usize) -> Option<Endpoint> {
        self.cfg
            .endpoints
            .get(peer)
            .cloned()
            .or_else(|| self.learned.get(&peer).cloned())
    }

    /// Returns the writer channel for `(local, peer)`, spawning the
    /// dial-and-pump thread on first use.  `None` while the peer's endpoint
    /// is still unknown (a client that has not dialled in yet).
    fn writer_for(&mut self, local: usize, peer: NodeId) -> Option<&Sender<WriterCmd>> {
        let key = (local, peer.index());
        if !self.writers.contains_key(&key) {
            let target = self.endpoint_of(peer.index())?;
            let delay = self
                .delays
                .get(&(NodeId::new(local), peer))
                .copied()
                .unwrap_or(DelayModel::Constant(0));
            let hello = Frame::Hello {
                from: NodeId::new(local),
                to: peer,
                epoch: self.cfg.epoch,
                listen: self.advertised.clone(),
                delay,
            };
            let (tx, rx) = channel();
            spawn_writer(
                LinkConfig {
                    target,
                    peer,
                    hello,
                    heartbeat: self.cfg.heartbeat,
                    dial_retry: self.cfg.dial_retry,
                    redial_max: self.cfg.redial_max,
                    resend_window: self.cfg.resend_window,
                    epoch: self.cfg.epoch,
                    fault: self.cfg.fault,
                },
                rx,
                tx.clone(),
                self.incoming_tx.clone(),
                self.shutdown.clone(),
            );
            self.writers.insert(key, tx);
        }
        self.writers.get(&key)
    }

    fn handle_inbound(&mut self, inbound: Inbound) {
        match inbound {
            Inbound::Hello {
                from,
                to,
                epoch,
                listen,
                delay,
            } => {
                self.learned.insert(from.index(), listen);
                self.mark_alive(from.index());
                let known = self.peer_epochs.entry(from.index()).or_insert(epoch);
                *known = (*known).max(epoch);
                self.metrics.incr("net.hello_in");
                if !self.is_local(to.index()) {
                    self.metrics.incr("net.hello_misrouted");
                    return;
                }
                // A dial-in creates the reverse half of the link on demand
                // (the dialling side already ran ensure_link; this side may
                // never have heard of the peer — a client, typically).
                self.delays.entry((to, from)).or_insert(delay);
                self.delays.entry((from, to)).or_insert(delay);
                let neighbours = self.neighbours.entry(to.index()).or_default();
                if !neighbours.contains(&from) {
                    neighbours.push(from);
                }
            }
            Inbound::Message {
                from,
                to,
                delay,
                message,
            } => {
                self.mark_alive(from.index());
                if !self.is_local(to.index()) {
                    self.metrics.incr("net.frames_misrouted");
                    return;
                }
                self.metrics.incr("net.frames_in");
                self.record_link_span("link.rx", to.index() as u64, from, to, &message);
                let due = self.clamp_in.clamp((from, to), self.clock.now() + delay);
                self.pending
                    .get_mut(&to.index())
                    .expect("local node has a queue")
                    .push(due, Incoming::Message { from, message });
            }
            Inbound::Heartbeat { from, epoch } => {
                self.mark_alive(from.index());
                let known = self.peer_epochs.entry(from.index()).or_insert(epoch);
                *known = (*known).max(epoch);
                self.metrics.incr("net.heartbeats_in");
                if self.metrics.journal_enabled() {
                    let now = self.clock.now();
                    self.metrics.record_event(
                        now,
                        "link.heartbeat",
                        format!("peer={from} epoch={epoch}"),
                    );
                }
            }
            Inbound::Link { peer, event } => {
                let p = peer.index();
                let now = self.clock.now();
                match event {
                    LinkEvent::Up { resent } => {
                        self.link_up.insert(p, true);
                        if !self.stale_links.contains(&p) {
                            self.down_since.remove(&p);
                        }
                        self.metrics.incr("net.link_up");
                        if resent > 0 {
                            self.metrics.add("net.frames_resent", resent as u64);
                        }
                        if self.metrics.journal_enabled() {
                            self.metrics.record_event(
                                now,
                                "link.up",
                                format!("peer={peer} resent={resent}"),
                            );
                        }
                    }
                    LinkEvent::Down { reason } => {
                        self.link_up.insert(p, false);
                        self.down_since.entry(p).or_insert_with(Instant::now);
                        self.metrics.incr("net.link_down");
                        if self.metrics.journal_enabled() {
                            self.metrics.record_event(
                                now,
                                "link.drop",
                                format!("peer={peer} reason={reason}"),
                            );
                        }
                    }
                    LinkEvent::Redial { attempt } => {
                        self.redials.insert(p, attempt);
                        self.metrics.incr("net.link_redial");
                        if self.metrics.journal_enabled() {
                            self.metrics.record_event(
                                now,
                                "link.redial",
                                format!("peer={peer} attempt={attempt}"),
                            );
                        }
                    }
                    LinkEvent::Fenced { expected } => {
                        self.link_up.insert(p, false);
                        self.down_since.entry(p).or_insert_with(Instant::now);
                        self.metrics.incr("net.link_fenced");
                        if self.metrics.journal_enabled() {
                            self.metrics.record_event(
                                now,
                                "link.fenced",
                                format!("peer={peer} expected_epoch={expected} side=writer"),
                            );
                        }
                    }
                    LinkEvent::Failed { reason } => {
                        self.link_up.insert(p, false);
                        self.down_since.entry(p).or_insert_with(Instant::now);
                        self.metrics.incr("net.link_failed");
                        if self.metrics.journal_enabled() {
                            self.metrics.record_event(
                                now,
                                "link.failed",
                                format!("peer={peer} reason={reason}"),
                            );
                        }
                    }
                }
            }
            Inbound::Stale {
                from,
                epoch,
                expected,
            } => {
                self.metrics.incr("net.link_fenced_rejected");
                if self.metrics.journal_enabled() {
                    let now = self.clock.now();
                    self.metrics.record_event(
                        now,
                        "link.fenced",
                        format!(
                            "peer={from} stale_epoch={epoch} expected_epoch={expected} side=reader"
                        ),
                    );
                }
            }
            Inbound::Duplicate { from, seq } => {
                let _ = (from, seq);
                self.metrics.incr("net.frames_duplicate");
            }
            Inbound::AdminDrop { peer } => {
                self.metrics.incr("net.admin_drops");
                if self.metrics.journal_enabled() {
                    let now = self.clock.now();
                    self.metrics
                        .record_event(now, "link.admin_drop", format!("peer={peer}"));
                }
                let targets: Vec<_> = self
                    .writers
                    .iter()
                    .filter(|(key, _)| key.1 == peer.index())
                    .map(|(_, tx)| tx.clone())
                    .collect();
                for tx in targets {
                    let _ = tx.send(WriterCmd::Drop);
                }
            }
            Inbound::Status {
                mut reply,
                events_after,
            } => {
                self.metrics.incr("net.status_requests");
                let report = self.status_report(events_after);
                // Best effort: a requester that hung up mid-flight loses
                // its own report, nothing else.
                if reply
                    .write_all(&Frame::StatusReport(report).encode_framed())
                    .is_err()
                {
                    self.metrics.incr("net.status_reply_failed");
                }
            }
            Inbound::Trace {
                mut reply,
                spans_after,
            } => {
                self.metrics.incr("net.trace_requests");
                let report = self.trace_report(spans_after);
                if reply
                    .write_all(&Frame::TraceReport(report).encode_framed())
                    .is_err()
                {
                    self.metrics.incr("net.trace_reply_failed");
                }
            }
        }
    }

    /// Records a wire-hop span when a sampled message crosses a TCP link:
    /// `link.tx` at the sending process, `link.rx` at the receiving one.
    /// Leaf spans — they parent on whatever hop the envelope carries and
    /// nothing parents on them, so the driver needs no wire-format changes
    /// beyond the envelope's own trace tag.
    fn record_link_span(
        &mut self,
        kind: &str,
        broker: u64,
        from: NodeId,
        to: NodeId,
        message: &rebeca_broker::Message,
    ) {
        if !self.metrics.span_enabled() {
            return;
        }
        let Some(ctx) = message.trace_context().filter(|c| c.sampled) else {
            return;
        };
        // High two bits keep driver-minted span ids disjoint from both the
        // broker core's nonce space and the mobility layer's.
        let nonce = self.trace_nonce | (0b11 << 62);
        self.trace_nonce += 1;
        let now = self.clock.now().as_micros();
        self.metrics.record_span(SpanRecord {
            seq: 0,
            trace_id: ctx.trace_id,
            span_id: rebeca_obs::span_id(ctx.trace_id, broker, nonce),
            parent_span: ctx.parent_span,
            broker,
            kind: kind.to_string(),
            start_micros: now,
            end_micros: now,
            detail: format!("from={from} to={to}"),
        });
    }

    /// Builds the trace report this process serves: the retained span
    /// buffer, optionally only past the `spans_after` cursor.
    fn trace_report(&self, spans_after: Option<u64>) -> TraceReport {
        let spans = match spans_after {
            Some(seq) => self.metrics.spans().spans_after(seq).cloned().collect(),
            None => self.metrics.spans().spans().cloned().collect(),
        };
        TraceReport {
            now_micros: self.clock.now().as_micros(),
            spans,
        }
    }

    /// Builds the live status report this process serves: one
    /// [`rebeca_obs::BrokerStatus`] per hosted broker, with real link
    /// liveness, plus the journal tail past `events_after` when requested.
    fn status_report(&self, events_after: Option<u64>) -> StatusReport {
        let now = self.clock.now();
        let mut brokers: Vec<_> = self
            .nodes
            .iter()
            .filter_map(|(&index, node)| match node {
                SystemNode::Broker(broker) => {
                    // One incarnation counter per broker: the process
                    // restart epoch and the WAL generation both count
                    // restarts, so report whichever has seen more.
                    let restart_epoch = self.cfg.epoch.max(broker.machine().generation());
                    Some(broker_status(
                        index as u64,
                        broker,
                        &self.metrics,
                        now,
                        restart_epoch,
                        self.links_of(index),
                    ))
                }
                SystemNode::Client(_) => None,
            })
            .collect();
        brokers.sort_by_key(|b| b.broker);
        let events = match events_after {
            Some(seq) => self.metrics.journal().events_after(seq).cloned().collect(),
            None => Vec::new(),
        };
        StatusReport {
            now_micros: now.as_micros(),
            node_count: self.node_count() as u64,
            brokers,
            events,
        }
    }

    /// Records inbound traffic from a peer, clearing any heartbeat-silence
    /// staleness the moment it speaks again.
    fn mark_alive(&mut self, peer: usize) {
        self.last_seen.insert(peer, Instant::now());
        if self.stale_links.remove(&peer) {
            if self.link_up.get(&peer).copied().unwrap_or(false) {
                self.down_since.remove(&peer);
            }
            if self.metrics.journal_enabled() {
                let now = self.clock.now();
                self.metrics.record_event(
                    now,
                    "link.up",
                    format!("peer={peer} reason=traffic-resumed"),
                );
            }
        }
    }

    /// Declares links to silent peers down: a peer we have not heard from
    /// for more than `heartbeat × missed_heartbeats` is marked stale until
    /// it speaks again. Throttled to the heartbeat cadence.
    fn check_liveness(&mut self) {
        let now = Instant::now();
        if now < self.next_liveness {
            return;
        }
        self.next_liveness = now + self.cfg.heartbeat;
        let limit = self.cfg.heartbeat * self.cfg.missed_heartbeats;
        let newly_stale: Vec<usize> = self
            .last_seen
            .iter()
            .filter(|(peer, at)| {
                !self.is_local(**peer) && !self.stale_links.contains(*peer) && at.elapsed() > limit
            })
            .map(|(peer, _)| *peer)
            .collect();
        for peer in newly_stale {
            self.stale_links.insert(peer);
            self.down_since.entry(peer).or_insert_with(Instant::now);
            self.metrics.incr("net.link_stale");
            if self.metrics.journal_enabled() {
                let at = self.clock.now();
                self.metrics.record_event(
                    at,
                    "link.drop",
                    format!("peer={peer} reason=heartbeat-silence"),
                );
            }
        }
    }

    /// Link liveness for one hosted broker: its neighbours, with connection
    /// state from the writer threads and freshness from inbound traffic.
    fn links_of(&self, index: usize) -> Vec<LinkStatus> {
        self.neighbours
            .get(&index)
            .map(|neighbours| {
                neighbours
                    .iter()
                    .map(|peer| {
                        let p = peer.index();
                        if self.is_local(p) {
                            // In-process links cannot drop and carry no
                            // heartbeats.
                            LinkStatus {
                                peer: p as u64,
                                connected: true,
                                last_heartbeat_age_ms: None,
                                down_since_ms: None,
                                redial_attempts: 0,
                            }
                        } else {
                            let up = self.link_up.get(&p).copied().unwrap_or(false);
                            let stale = self.stale_links.contains(&p);
                            LinkStatus {
                                peer: p as u64,
                                connected: up && !stale,
                                last_heartbeat_age_ms: self
                                    .last_seen
                                    .get(&p)
                                    .map(|at| at.elapsed().as_millis() as u64),
                                down_since_ms: self
                                    .down_since
                                    .get(&p)
                                    .map(|at| at.elapsed().as_millis() as u64),
                                redial_attempts: self.redials.get(&p).copied().unwrap_or(0),
                            }
                        }
                    })
                    .collect()
            })
            .unwrap_or_default()
    }

    /// Drains everything the reader threads delivered so far, then
    /// re-evaluates heartbeat liveness.
    fn drain_incoming(&mut self) {
        while let Ok(inbound) = self.incoming_rx.try_recv() {
            self.handle_inbound(inbound);
        }
        self.check_liveness();
    }

    /// The earliest due time over every local pending event.
    fn next_due(&self) -> Option<SimTime> {
        self.pending.values().filter_map(|q| q.next_due()).min()
    }

    /// Routes one harvested send: straight into a local queue, or framed
    /// onto the peer's connection.
    fn send_from(&mut self, from: usize, to: NodeId, at: SimTime, message: rebeca_broker::Message) {
        let from_id = NodeId::new(from);
        let delay = self
            .delays
            .get(&(from_id, to))
            .unwrap_or_else(|| panic!("no link {from_id} -> {to}"))
            .sample(&mut self.rng);
        self.metrics.incr("network.messages");
        if self.is_local(to.index()) {
            let due = self.clamp_local.clamp((from_id, to), at + delay);
            self.pending
                .get_mut(&to.index())
                .expect("local node has a queue")
                .push(
                    due,
                    Incoming::Message {
                        from: from_id,
                        message,
                    },
                );
        } else {
            self.record_link_span("link.tx", from as u64, from_id, to, &message);
            let frame = Frame::Message {
                from: from_id,
                to,
                delay_micros: delay.as_micros(),
                // The writer thread assigns the real per-direction sequence
                // number when it pops the frame for transmission.
                seq: 0,
                message,
            };
            match self.writer_for(from, to) {
                Some(tx) => {
                    // A send only fails when the writer thread is gone for
                    // good: driver teardown, a fenced link, or a resend
                    // window overflow. Transient disconnects never reject
                    // sends — the writer queues and replays them itself.
                    if tx.send(WriterCmd::Frame(frame)).is_ok() {
                        self.metrics.incr("net.frames_out");
                    } else {
                        self.metrics.incr("net.frames_dropped");
                    }
                }
                None => {
                    self.metrics.incr("net.frames_unroutable");
                }
            }
        }
    }

    /// Dispatches the earliest due event of node `index`, if any.
    fn dispatch(&mut self, index: usize, now: SimTime) -> bool {
        let Some(pending) = self
            .pending
            .get_mut(&index)
            .and_then(|queue| queue.pop_due(now))
        else {
            return false;
        };
        // A node observes its event no earlier than the event's deadline,
        // even if the loop woke early.
        let at = pending.due.max(now);
        // Move the node and its neighbour list out for the dispatch (no
        // per-event clone) and put both back before routing the harvest.
        let mut node = self
            .nodes
            .remove(&index)
            .expect("dispatch targets a local node");
        let neighbours = self.neighbours.remove(&index).unwrap_or_default();
        let mut ctx = Context::external(at, NodeId::new(index), &neighbours, &mut self.metrics);
        node.handle(&mut ctx, pending.event);
        let (outgoing, timers) = ctx.into_harvest();
        self.nodes.insert(index, node);
        self.neighbours.insert(index, neighbours);
        for (to, message) in outgoing {
            self.send_from(index, to, at, message);
        }
        for (delay, tag) in timers {
            self.pending
                .get_mut(&index)
                .expect("local node has a queue")
                .push(at + delay, Incoming::Timer { tag });
        }
        true
    }

    /// The core event loop: runs until the wall clock reaches `until`.
    fn run_phase(&mut self, until: SimTime) -> u64 {
        let mut processed = 0;
        loop {
            self.drain_incoming();
            let now = self.clock.now();
            if now >= until {
                break;
            }
            // Dispatch everything due across the local nodes.
            let due_node = self
                .pending
                .iter()
                .filter_map(|(&i, q)| q.next_due().map(|due| (due, i)))
                .min();
            if let Some((due, index)) = due_node {
                if due <= now && self.dispatch(index, now) {
                    processed += 1;
                    continue;
                }
            }
            // Nothing due: wait for network traffic, capped by the next
            // local deadline and the phase deadline.
            let wall_now = Instant::now();
            let mut wait = MAX_WAIT;
            if let Some((due, _)) = due_node {
                wait = wait.min(self.clock.to_wall(due).saturating_duration_since(wall_now));
            }
            wait = wait.min(
                self.clock
                    .to_wall(until)
                    .saturating_duration_since(wall_now),
            );
            let wait = wait.max(Duration::from_micros(20));
            let received = self.incoming_rx.recv_timeout(wait);
            match received {
                Ok(inbound) => self.handle_inbound(inbound),
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        processed
    }
}

impl Driver for TcpDriver {
    fn add_node(&mut self, node: SystemNode) -> NodeId {
        if self.next_node >= self.cfg.endpoints.len() {
            if let Some(base) = self.cfg.first_client_node {
                if self.next_node < base {
                    self.next_node = base;
                }
            }
        }
        let index = self.next_node;
        self.next_node += 1;
        let is_remote_broker = index < self.cfg.endpoints.len() && !self.cfg.local.contains(&index);
        if is_remote_broker {
            self.placeholders.insert(index, node);
        } else {
            self.nodes.insert(index, node);
            self.pending.insert(index, PendingQueue::new());
            self.neighbours.entry(index).or_default();
        }
        NodeId::new(index)
    }

    fn ensure_link(&mut self, a: NodeId, b: NodeId, delay: DelayModel) -> bool {
        if self.delays.contains_key(&(a, b)) {
            return false;
        }
        self.delays.insert((a, b), delay);
        self.delays.insert((b, a), delay);
        for (x, y) in [(a, b), (b, a)] {
            if self.is_local(x.index()) {
                let neighbours = self.neighbours.entry(x.index()).or_default();
                if !neighbours.contains(&y) {
                    neighbours.push(y);
                }
                if !self.is_local(y.index()) {
                    // Dial eagerly when the peer endpoint is already known
                    // (a broker); a client peer's endpoint arrives with its
                    // handshake and the writer spawns on first send.
                    self.writer_for(x.index(), y);
                }
            }
        }
        true
    }

    fn schedule_timer(&mut self, node: NodeId, at: SimTime, tag: u64) {
        let Some(queue) = self.pending.get_mut(&node.index()) else {
            // Timers on remote nodes belong to the hosting process.
            self.metrics.incr("net.timer_misrouted");
            return;
        };
        let due = at.max(self.clock.now());
        queue.push(due, Incoming::Timer { tag });
    }

    fn now(&self) -> SimTime {
        self.clock.now()
    }

    fn step(&mut self) -> bool {
        // Dispatch the earliest pending event directly (waiting up to its
        // deadline) instead of racing a tiny run_phase window against the
        // live wall clock — `while system.step() {}` must never report idle
        // while an event is still queued.  The wait watches the incoming
        // channel, so a network message arriving (and becoming due) before
        // a far-out timer is dispatched first, as under run_until.
        loop {
            self.drain_incoming();
            let Some((due, index)) = self
                .pending
                .iter()
                .filter_map(|(&i, q)| q.next_due().map(|d| (d, i)))
                .min()
            else {
                return false;
            };
            let wall_due = self.clock.to_wall(due);
            let now = Instant::now();
            if wall_due <= now {
                return self.dispatch(index, self.clock.now());
            }
            let received = self.incoming_rx.recv_timeout(wall_due - now);
            match received {
                // New traffic may carry an earlier due event: re-evaluate.
                Ok(inbound) => self.handle_inbound(inbound),
                Err(RecvTimeoutError::Timeout) => {
                    return self.dispatch(index, self.clock.now());
                }
                Err(RecvTimeoutError::Disconnected) => return false,
            }
        }
    }

    fn run_until(&mut self, until: SimTime) -> u64 {
        self.run_phase(until)
    }

    fn run_to_idle(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        let mut idle_rounds = 0;
        while processed < max_events && idle_rounds < 3 {
            self.drain_incoming();
            match self.next_due() {
                Some(due) => {
                    idle_rounds = 0;
                    // Jump to the next deadline plus a settling window so
                    // cascades of follow-up events drain in one phase.
                    let target = due.max(self.clock.now()) + SimDuration::from_millis(20);
                    processed += self.run_phase(target);
                }
                None => {
                    // Locally idle; give in-flight network traffic a grace
                    // window before concluding the deployment is quiet.
                    idle_rounds += 1;
                    let received = self.incoming_rx.recv_timeout(Duration::from_millis(30));
                    if let Ok(inbound) = received {
                        self.handle_inbound(inbound);
                        idle_rounds = 0;
                    }
                }
            }
        }
        processed
    }

    fn node(&self, id: NodeId) -> &SystemNode {
        self.nodes
            .get(&id.index())
            .or_else(|| self.placeholders.get(&id.index()))
            .expect("node id from add_node")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut SystemNode {
        self.nodes
            .get_mut(&id.index())
            .or_else(|| self.placeholders.get_mut(&id.index()))
            .expect("node id from add_node")
    }

    fn replace_node(&mut self, id: NodeId, node: SystemNode) -> SystemNode {
        let slot = self
            .nodes
            .get_mut(&id.index())
            .or_else(|| self.placeholders.get_mut(&id.index()))
            .expect("node id from add_node");
        std::mem::replace(slot, node)
    }

    fn node_count(&self) -> usize {
        self.nodes.len() + self.placeholders.len()
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn status(&self) -> StatusReport {
        self.status_report(None)
    }
}

impl Drop for TcpDriver {
    fn drop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Closing the frame queues ends the writer threads.
        self.writers.clear();
        // Wake the acceptor out of its poll loop, then join it; readers
        // notice the flag within their read timeout on their own.
        let _ = TcpStream::connect(self.wake_addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for TcpDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TcpDriver")
            .field("listen", &self.advertised)
            .field("local_nodes", &self.nodes.len())
            .field("remote_nodes", &self.placeholders.len())
            .field("connections_out", &self.writers.len())
            .field(
                "pending",
                &self.pending.values().map(|q| q.len()).sum::<usize>(),
            )
            .finish()
    }
}

/// Extension trait giving [`SystemBuilder`] a TCP build mode.
///
/// (The method lives here rather than on the builder itself because
/// `rebeca-core` must not depend on the transport crate; importing this
/// trait makes `builder.build_tcp(net)` read exactly like the built-in
/// `build()` / `build_threaded()` modes.)
pub trait SystemBuilderTcp {
    /// Builds the system on a [`TcpDriver`] configured by `net`: brokers
    /// this process hosts run here; all others are reached over TCP.
    fn build_tcp(self, net: NetConfig) -> Result<MobilitySystem, RebecaError>;
}

impl SystemBuilderTcp for SystemBuilder {
    fn build_tcp(self, net: NetConfig) -> Result<MobilitySystem, RebecaError> {
        let driver = TcpDriver::new(net).map_err(|e| RebecaError::Transport(e.to_string()))?;
        self.build_with(Box::new(driver))
    }
}
