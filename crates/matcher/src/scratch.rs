//! Reusable matching scratchpads.
//!
//! The counting algorithm needs a per-filter hit counter for every walk.
//! Allocating (or clearing) one per query would dominate the cost of small
//! matches, so counters are epoch-stamped and reused: bumping the epoch
//! invalidates every counter in O(1), and a counter is lazily reset the
//! first time it is touched in a new epoch.
//!
//! Earlier revisions hid one scratchpad inside the index behind a
//! `RefCell`, which made the index `!Sync` and capped every broker at one
//! core.  The scratchpad is now **external** state: queries either borrow a
//! caller-provided [`MatchScratch`] (one per worker thread) or fall back to
//! a thread-local one, and the index itself is immutable during matching —
//! `Send + Sync` by construction.

use std::cell::RefCell;

/// The full-lane-batch mask: one bit per notification of a batch chunk.
pub(crate) const LANE_COUNT: usize = 64;

/// Epoch-stamped counter/mask scratchpad for the counting walks.
///
/// One scratchpad serves any number of indexes (it grows to the largest
/// entry/predicate id it has seen) and any number of sequential queries
/// (each query begins a new epoch; stale slots reset lazily).  For parallel
/// matching, give each worker thread its own scratchpad — queries never
/// mutate the index, so `&FilterIndex`/`&ShardedFilterIndex` can be shared
/// freely across threads.
#[derive(Debug, Clone, Default)]
pub struct MatchScratch {
    /// Per-entry hit counters (single-notification counting walks).
    pub(crate) stamps: Vec<u64>,
    pub(crate) counts: Vec<u32>,
    pub(crate) epoch: u64,

    /// Per-predicate satisfaction masks (one bit per batch lane), indexed
    /// by store-base-offset predicate slot.
    pub(crate) pred_stamps: Vec<u64>,
    pub(crate) pred_masks: Vec<u64>,
    pub(crate) pred_epoch: u64,
    /// `(store id, attr id, pred id)` of every predicate satisfied by the
    /// current batch chunk.
    pub(crate) touched_preds: Vec<(u32, u32, u32)>,

    /// Per-entry conjunction state for batch matching: the running AND of
    /// the entry's predicate masks and the number of predicates seen.
    pub(crate) entry_stamps: Vec<u64>,
    pub(crate) entry_masks: Vec<u64>,
    pub(crate) entry_counts: Vec<u32>,
    pub(crate) entry_epoch: u64,
    pub(crate) touched_entries: Vec<u32>,
}

impl MatchScratch {
    /// Creates an empty scratchpad.
    pub fn new() -> Self {
        Self::default()
    }

    /// Starts a new single-notification counting walk over `size` entries.
    pub(crate) fn begin(&mut self, size: usize) {
        if self.stamps.len() < size {
            self.stamps.resize(size, 0);
            self.counts.resize(size, 0);
        }
        self.epoch += 1;
    }

    /// Increments the counter for `fid`, returning the new count.
    #[inline]
    pub(crate) fn bump(&mut self, fid: u32) -> u32 {
        let fid = fid as usize;
        if self.stamps[fid] != self.epoch {
            self.stamps[fid] = self.epoch;
            self.counts[fid] = 0;
        }
        self.counts[fid] += 1;
        self.counts[fid]
    }

    /// Starts a new predicate-mask phase over `slots` predicate slots
    /// (batch matching runs one phase per lane chunk, spanning all stores).
    pub(crate) fn begin_preds(&mut self, slots: usize) {
        if self.pred_stamps.len() < slots {
            self.pred_stamps.resize(slots, 0);
            self.pred_masks.resize(slots, 0);
        }
        self.pred_epoch += 1;
        self.touched_preds.clear();
    }

    /// Starts a new batch conjunction phase over `size` entries (one phase
    /// per batch chunk, spanning all stores).
    pub(crate) fn begin_entries_batch(&mut self, size: usize) {
        if self.entry_stamps.len() < size {
            self.entry_stamps.resize(size, 0);
            self.entry_masks.resize(size, 0);
            self.entry_counts.resize(size, 0);
        }
        self.entry_epoch += 1;
        self.touched_entries.clear();
    }
}

thread_local! {
    static SCRATCH: RefCell<MatchScratch> = RefCell::new(MatchScratch::new());
}

/// Runs `f` with the calling thread's scratchpad.
///
/// The scratchpad is *taken* for the duration of the call (a re-entrant
/// query from inside a visitor callback gets a fresh, empty scratchpad
/// instead of panicking on a double borrow) and put back afterwards.
pub(crate) fn with_thread_scratch<R>(f: impl FnOnce(&mut MatchScratch) -> R) -> R {
    SCRATCH.with(|cell| {
        let mut scratch = cell.take();
        let result = f(&mut scratch);
        cell.replace(scratch);
        result
    })
}
