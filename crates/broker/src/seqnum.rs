//! Per-subscription sequence numbering and notification buffers.
//!
//! A border broker annotates every delivery to a local consumer with a
//! sequence number that is consecutive per `(client, filter)`.  The roaming
//! client echoes the last number it received when it re-subscribes at a new
//! border broker, and the *virtual counterpart* left behind at the old
//! broker buffers deliveries so they can be replayed "beginning with the
//! sequence number initially given by the client" (Section 4.1).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rebeca_filter::Filter;

use crate::ids::ClientId;
use crate::message::Delivery;

/// Assigns consecutive sequence numbers per `(client, filter)` stream.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SequenceRegistry {
    next: BTreeMap<(ClientId, Filter), u64>,
}

impl SequenceRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the next sequence number for the stream and advances it.
    /// The first number of a fresh stream is 1.
    pub fn next(&mut self, client: ClientId, filter: &Filter) -> u64 {
        let counter = self.next.entry((client, filter.clone())).or_insert(1);
        let seq = *counter;
        *counter += 1;
        seq
    }

    /// The sequence number that will be assigned next (without advancing).
    pub fn peek(&self, client: ClientId, filter: &Filter) -> u64 {
        self.next
            .get(&(client, filter.clone()))
            .copied()
            .unwrap_or(1)
    }

    /// Last sequence number already assigned for the stream (0 when none).
    pub fn last_assigned(&self, client: ClientId, filter: &Filter) -> u64 {
        self.peek(client, filter).saturating_sub(1)
    }

    /// Fast-forwards the stream so that the next assigned number is
    /// `next_seq`.  Used by a new border broker that takes over a stream
    /// after relocation (it continues numbering where the replayed buffer
    /// ended).  Never moves the counter backwards.
    pub fn fast_forward(&mut self, client: ClientId, filter: &Filter, next_seq: u64) {
        let counter = self.next.entry((client, filter.clone())).or_insert(1);
        if next_seq > *counter {
            *counter = next_seq;
        }
    }

    /// Removes the stream state for a client's filter (garbage collection at
    /// the old border broker).  Returns `true` when state existed.
    pub fn remove(&mut self, client: ClientId, filter: &Filter) -> bool {
        self.next.remove(&(client, filter.clone())).is_some()
    }

    /// Removes every stream belonging to the client.
    pub fn remove_client(&mut self, client: ClientId) -> usize {
        let before = self.next.len();
        self.next.retain(|(c, _), _| *c != client);
        before - self.next.len()
    }

    /// Number of tracked streams.
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// `true` when no stream is tracked.
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }
}

/// A sequence-ordered buffer of deliveries for one `(client, filter)` stream:
/// the storage behind the *virtual counterpart* of a roaming client and
/// behind the new border broker's holding buffer during replay.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct DeliveryBuffer {
    deliveries: Vec<Delivery>,
}

impl DeliveryBuffer {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a delivery.  Deliveries are expected to arrive in increasing
    /// sequence order (the border broker assigns them in order); the buffer
    /// keeps whatever order it is given.
    pub fn push(&mut self, delivery: Delivery) {
        self.deliveries.push(delivery);
    }

    /// Number of buffered deliveries.
    pub fn len(&self) -> usize {
        self.deliveries.len()
    }

    /// `true` when nothing is buffered.
    pub fn is_empty(&self) -> bool {
        self.deliveries.is_empty()
    }

    /// The buffered deliveries with sequence numbers strictly greater than
    /// `after_seq`, in sequence order — the replay the old border broker
    /// sends towards the junction.
    pub fn replay_after(&self, after_seq: u64) -> Vec<Delivery> {
        let mut replay: Vec<Delivery> = self
            .deliveries
            .iter()
            .filter(|d| d.seq > after_seq)
            .cloned()
            .collect();
        replay.sort_by_key(|d| d.seq);
        replay
    }

    /// The highest buffered sequence number (0 when empty).
    pub fn last_seq(&self) -> u64 {
        self.deliveries.iter().map(|d| d.seq).max().unwrap_or(0)
    }

    /// Drains the buffer, returning all deliveries in sequence order.
    pub fn drain_ordered(&mut self) -> Vec<Delivery> {
        let mut all = std::mem::take(&mut self.deliveries);
        all.sort_by_key(|d| d.seq);
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::message::Envelope;
    use rebeca_filter::{Constraint, Notification};

    fn filter() -> Filter {
        Filter::new().with("service", Constraint::Eq("parking".into()))
    }

    fn other_filter() -> Filter {
        Filter::new().with("service", Constraint::Eq("weather".into()))
    }

    fn delivery(seq: u64) -> Delivery {
        Delivery {
            subscriber: ClientId::new(1),
            filter: filter(),
            seq,
            envelope: Envelope::new(
                ClientId::new(9),
                seq,
                Notification::builder().attr("service", "parking").build(),
            ),
        }
    }

    #[test]
    fn sequence_numbers_are_consecutive_per_stream() {
        let mut reg = SequenceRegistry::new();
        assert_eq!(reg.next(ClientId::new(1), &filter()), 1);
        assert_eq!(reg.next(ClientId::new(1), &filter()), 2);
        assert_eq!(reg.next(ClientId::new(1), &other_filter()), 1);
        assert_eq!(reg.next(ClientId::new(2), &filter()), 1);
        assert_eq!(reg.last_assigned(ClientId::new(1), &filter()), 2);
        assert_eq!(reg.peek(ClientId::new(1), &filter()), 3);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn fast_forward_never_goes_backwards() {
        let mut reg = SequenceRegistry::new();
        reg.fast_forward(ClientId::new(1), &filter(), 100);
        assert_eq!(reg.next(ClientId::new(1), &filter()), 100);
        reg.fast_forward(ClientId::new(1), &filter(), 50);
        assert_eq!(reg.next(ClientId::new(1), &filter()), 101);
    }

    #[test]
    fn remove_and_remove_client() {
        let mut reg = SequenceRegistry::new();
        reg.next(ClientId::new(1), &filter());
        reg.next(ClientId::new(1), &other_filter());
        reg.next(ClientId::new(2), &filter());
        assert!(reg.remove(ClientId::new(1), &filter()));
        assert!(!reg.remove(ClientId::new(1), &filter()));
        assert_eq!(reg.remove_client(ClientId::new(1)), 1);
        assert_eq!(reg.len(), 1);
        assert!(!reg.is_empty());
    }

    #[test]
    fn replay_after_returns_only_newer_deliveries_in_order() {
        let mut buf = DeliveryBuffer::new();
        for seq in [3, 1, 2, 5, 4] {
            buf.push(delivery(seq));
        }
        let replay = buf.replay_after(2);
        let seqs: Vec<u64> = replay.iter().map(|d| d.seq).collect();
        assert_eq!(seqs, vec![3, 4, 5]);
        assert_eq!(buf.last_seq(), 5);
        assert_eq!(buf.len(), 5);
    }

    #[test]
    fn replay_after_last_seq_is_empty() {
        let mut buf = DeliveryBuffer::new();
        buf.push(delivery(1));
        assert!(buf.replay_after(1).is_empty());
        assert!(buf.replay_after(99).is_empty());
    }

    #[test]
    fn drain_ordered_empties_the_buffer() {
        let mut buf = DeliveryBuffer::new();
        for seq in [2, 1] {
            buf.push(delivery(seq));
        }
        let drained = buf.drain_ordered();
        assert_eq!(
            drained.iter().map(|d| d.seq).collect::<Vec<_>>(),
            vec![1, 2]
        );
        assert!(buf.is_empty());
        assert_eq!(buf.last_seq(), 0);
    }
}
