//! Quickstart: a minimal publish/subscribe deployment with one roaming
//! consumer.
//!
//! Three brokers in a line, a producer publishing parking vacancies at one
//! end, a consumer at the other end that moves to the middle broker halfway
//! through the run.  The relocation protocol makes the move invisible to the
//! application: every vacancy arrives exactly once and in order.
//!
//! Run with:
//! ```text
//! cargo run --example quickstart
//! ```

use rebeca::{
    BrokerConfig, ClientAction, ClientId, Constraint, DelayModel, Filter, LogicalMobilityMode,
    MobilitySystem, Notification, SimTime, Topology,
};

fn main() {
    // 1. A broker network: three brokers connected in a line, 5 ms per link.
    let mut system = MobilitySystem::new(
        &Topology::line(3),
        BrokerConfig::default(),
        DelayModel::constant_millis(5),
        42,
    );

    // 2. A consumer interested in parking vacancies cheaper than 3 EUR.
    let consumer = ClientId(1);
    let subscription = Filter::new()
        .with("service", Constraint::Eq("parking".into()))
        .with("cost", Constraint::Lt(3.into()));
    system.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[0, 1], // brokers the consumer will ever attach to
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: system.broker_node(0),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(subscription),
            ),
            // Halfway through, the consumer roams to the middle broker.  The
            // middleware relocates the subscription transparently.
            (
                SimTime::from_millis(500),
                ClientAction::MoveTo {
                    broker: system.broker_node(1),
                },
            ),
        ],
    );

    // 3. A producer of parking vacancies at the far end of the line.
    let producer = ClientId(2);
    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: system.broker_node(2),
        },
    )];
    for i in 0..20u64 {
        let vacancy = Notification::builder()
            .attr("service", "parking")
            .attr("cost", (i % 3) as i64)
            .attr("spot", i as i64)
            .build();
        script.push((
            SimTime::from_millis(100 + i * 50),
            ClientAction::Publish(vacancy),
        ));
    }
    system.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[2],
        script,
    );

    // 4. Run the simulation and inspect the consumer's delivery log.
    system.run_until(SimTime::from_secs(3));

    let log = system.client_log(consumer);
    println!("deliveries received : {}", log.len());
    println!(
        "delivery log clean  : {} (no duplicates, FIFO preserved)",
        log.is_clean()
    );
    println!(
        "missing publications: {:?}",
        log.missing_from(producer, 1..=20)
    );
    println!("\nfirst five deliveries:");
    for delivery in log.deliveries().iter().take(5) {
        println!(
            "  seq {:>2}  {}",
            delivery.seq, delivery.envelope.notification
        );
    }

    assert!(log.is_clean());
    assert!(log.missing_from(producer, 1..=20).is_empty());
    println!("\nquickstart finished: the roaming consumer missed nothing.");
}
