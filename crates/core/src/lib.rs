//! Mobility support for content-based publish/subscribe — the primary
//! contribution of *"Supporting Mobility in Content-Based Publish/Subscribe
//! Middleware"* (Fiege, Gärtner, Kasten, Zeidler — Middleware 2003),
//! reimplemented on top of the Rebeca-style substrate crates of this
//! workspace.
//!
//! # What this crate provides
//!
//! * [`MobileBroker`] — a Rebeca broker extended with
//!   * the **physical-mobility relocation protocol** of Section 4 (virtual
//!     counterparts buffering deliveries for disconnected clients, reactive
//!     re-subscription with the last received sequence number, junction
//!     detection, fetch/replay along the re-pointed old path, in-order merge
//!     at the new border broker, garbage collection at the old one), and
//!   * **location-dependent subscriptions** of Section 5 (`myloc` templates
//!     instantiated per hop from `ploc(location, q)` according to an
//!     [`AdaptivityPlan`](rebeca_location::AdaptivityPlan), plus the
//!     location-update protocol that swaps those filters when the client
//!     moves).
//! * [`ClientNode`] — scripted producers and consumers, including roaming
//!   clients (relocation protocol or the naive hand-off baseline of
//!   Figure 2) and logically mobile clients (location-dependent
//!   subscriptions or the manual sub/unsub baseline of Figure 3a).
//! * [`MobilitySystem`] — the deployment facade: builds a broker network
//!   from a [`Topology`](rebeca_sim::Topology), attaches clients, runs the
//!   simulation and exposes delivery logs and metrics.
//!
//! # Quick start
//!
//! ```
//! use rebeca_broker::ClientId;
//! use rebeca_core::{BrokerConfig, ClientAction, LogicalMobilityMode, MobilitySystem};
//! use rebeca_filter::{Constraint, Filter, Notification};
//! use rebeca_sim::{DelayModel, SimTime, Topology};
//!
//! // Three brokers in a line; a consumer at broker 0, a producer at broker 2.
//! let mut system = MobilitySystem::new(
//!     &Topology::line(3),
//!     BrokerConfig::default(),
//!     DelayModel::constant_millis(5),
//!     42,
//! );
//!
//! let filter = Filter::new().with("service", Constraint::Eq("parking".into()));
//! let consumer = ClientId(1);
//! system.add_client(
//!     consumer,
//!     LogicalMobilityMode::LocationDependent,
//!     &[0],
//!     vec![
//!         (SimTime::from_millis(1), ClientAction::Attach { broker: system.broker_node(0) }),
//!         (SimTime::from_millis(2), ClientAction::Subscribe(filter)),
//!     ],
//! );
//! system.add_client(
//!     ClientId(2),
//!     LogicalMobilityMode::LocationDependent,
//!     &[2],
//!     vec![
//!         (SimTime::from_millis(1), ClientAction::Attach { broker: system.broker_node(2) }),
//!         (
//!             SimTime::from_millis(100),
//!             ClientAction::Publish(Notification::builder().attr("service", "parking").build()),
//!         ),
//!     ],
//! );
//!
//! system.run_until(SimTime::from_secs(1));
//! assert_eq!(system.client_log(consumer).len(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod mobile_broker;
mod system;

pub use client::{ClientAction, ClientNode, LogicalMobilityMode};
pub use mobile_broker::{BrokerConfig, MobileBroker};
pub use system::{MobilitySystem, SystemNode};

// Re-exported so deployments can configure durability and inspect relocation
// phases without depending on `rebeca-mobility` directly.
pub use rebeca_mobility::{
    HandoffLog, LogBackend, MemoryBackend, PersistenceConfig, RelocationMachine, RelocationPhase,
};
