//! Regenerates Table 4 (and the Figure 8 step derivation) of the paper:
//! `ploc(x, t)` for Delta = 100 ms and delta_i = [120, 50, 50] ms.
fn main() {
    let (table, steps) = rebeca_bench::tables::table4();
    println!("Per-hop uncertainty steps q_i derived from the Fig. 8 rule: {steps:?}");
    println!();
    print!("{}", table.render());
}
