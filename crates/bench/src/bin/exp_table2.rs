//! Regenerates Table 2 of the paper: the per-hop filters F3..F0 along the
//! Figure 6 path while the client moves a -> b -> d.
fn main() {
    let rows = rebeca_bench::tables::table2();
    print!("{}", rebeca_bench::tables::render_table2(&rows));
}
