//! The cluster config file of a process-per-broker deployment.
//!
//! A plain, line-oriented format (no external parser dependency), shared by
//! every process of the cluster so broker indices and endpoints agree:
//!
//! ```text
//! # three brokers in a line
//! broker 0 127.0.0.1:7101
//! broker 1 127.0.0.1:7102
//! broker 2 127.0.0.1:7103
//! edge 0 1
//! edge 1 2
//! delay_ms 5
//! seed 42
//! ```
//!
//! * `broker <index> <host:port>` — one line per broker; indices must be
//!   dense from 0.
//! * `edge <a> <b>` — an undirected broker ↔ broker link.
//! * `delay_ms <n>` / `delay_us <n>` — constant link delay (default 5 ms).
//! * `delay_uniform <min_us> <max_us>` — uniformly distributed link delay.
//! * `delay_jitter <base_us> <jitter_us>` — constant base plus uniform
//!   jitter.
//! * `seed <n>` — the delay-sampling seed (default 0).
//! * `#`-prefixed lines and blank lines are ignored.

use std::fmt;
use std::path::Path;

use rebeca_sim::{DelayModel, Topology};

use crate::endpoint::Endpoint;

/// A parsed cluster description.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Broker listen endpoints, index == broker index == node id.
    pub endpoints: Vec<Endpoint>,
    /// The broker topology.
    pub topology: Topology,
    /// The link delay model applied on every link.
    pub delay: DelayModel,
    /// The delay-sampling seed.
    pub seed: u64,
}

/// A config-file problem, with the offending line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClusterConfigError {
    /// 1-based line number (0 for whole-file problems).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ClusterConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "cluster config: {}", self.message)
        } else {
            write!(f, "cluster config line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ClusterConfigError {}

fn err(line: usize, message: impl Into<String>) -> ClusterConfigError {
    ClusterConfigError {
        line,
        message: message.into(),
    }
}

impl ClusterConfig {
    /// Parses a cluster config from its text form.
    pub fn parse(text: &str) -> Result<Self, ClusterConfigError> {
        let mut brokers: Vec<(usize, Endpoint)> = Vec::new();
        let mut edges: Vec<(usize, usize)> = Vec::new();
        let mut delay = DelayModel::constant_millis(5);
        let mut seed = 0u64;

        for (i, raw) in text.lines().enumerate() {
            let line_no = i + 1;
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let keyword = parts.next().expect("non-empty line has a first token");
            let rest: Vec<&str> = parts.collect();
            match keyword {
                "broker" => {
                    let [index, endpoint] = rest[..] else {
                        return Err(err(line_no, "expected: broker <index> <host:port>"));
                    };
                    let index: usize = index
                        .parse()
                        .map_err(|_| err(line_no, format!("invalid broker index {index:?}")))?;
                    let endpoint: Endpoint =
                        endpoint.parse().map_err(|e| err(line_no, format!("{e}")))?;
                    brokers.push((index, endpoint));
                }
                "edge" => {
                    let [a, b] = rest[..] else {
                        return Err(err(line_no, "expected: edge <a> <b>"));
                    };
                    let a: usize = a
                        .parse()
                        .map_err(|_| err(line_no, format!("invalid broker index {a:?}")))?;
                    let b: usize = b
                        .parse()
                        .map_err(|_| err(line_no, format!("invalid broker index {b:?}")))?;
                    edges.push((a, b));
                }
                "delay_ms" => {
                    let [ms] = rest[..] else {
                        return Err(err(line_no, "expected: delay_ms <millis>"));
                    };
                    let ms: u64 = ms
                        .parse()
                        .map_err(|_| err(line_no, format!("invalid delay {ms:?}")))?;
                    delay = DelayModel::constant_millis(ms);
                }
                "delay_us" => {
                    let [us] = rest[..] else {
                        return Err(err(line_no, "expected: delay_us <micros>"));
                    };
                    let us: u64 = us
                        .parse()
                        .map_err(|_| err(line_no, format!("invalid delay {us:?}")))?;
                    delay = DelayModel::Constant(us);
                }
                "delay_uniform" => {
                    let [min, max] = rest[..] else {
                        return Err(err(line_no, "expected: delay_uniform <min_us> <max_us>"));
                    };
                    let min: u64 = min
                        .parse()
                        .map_err(|_| err(line_no, format!("invalid delay {min:?}")))?;
                    let max: u64 = max
                        .parse()
                        .map_err(|_| err(line_no, format!("invalid delay {max:?}")))?;
                    delay = DelayModel::Uniform {
                        min_micros: min,
                        max_micros: max,
                    };
                }
                "delay_jitter" => {
                    let [base, jitter] = rest[..] else {
                        return Err(err(line_no, "expected: delay_jitter <base_us> <jitter_us>"));
                    };
                    let base: u64 = base
                        .parse()
                        .map_err(|_| err(line_no, format!("invalid delay {base:?}")))?;
                    let jitter: u64 = jitter
                        .parse()
                        .map_err(|_| err(line_no, format!("invalid delay {jitter:?}")))?;
                    delay = DelayModel::Jittered {
                        base_micros: base,
                        jitter_micros: jitter,
                    };
                }
                "seed" => {
                    let [s] = rest[..] else {
                        return Err(err(line_no, "expected: seed <n>"));
                    };
                    seed = s
                        .parse()
                        .map_err(|_| err(line_no, format!("invalid seed {s:?}")))?;
                }
                other => {
                    return Err(err(line_no, format!("unknown keyword {other:?}")));
                }
            }
        }

        if brokers.is_empty() {
            return Err(err(0, "no brokers declared"));
        }
        brokers.sort_by_key(|(i, _)| *i);
        let mut endpoints = Vec::with_capacity(brokers.len());
        for (expected, (index, endpoint)) in brokers.into_iter().enumerate() {
            if index != expected {
                return Err(err(
                    0,
                    format!(
                        "broker indices must be dense from 0 (missing or duplicate {expected})"
                    ),
                ));
            }
            endpoints.push(endpoint);
        }
        let mut topology = Topology::new(endpoints.len());
        for (a, b) in edges {
            if a >= endpoints.len() || b >= endpoints.len() {
                return Err(err(0, format!("edge {a} {b} references an unknown broker")));
            }
            topology.add_edge(a, b);
        }
        Ok(Self {
            endpoints,
            topology,
            delay,
            seed,
        })
    }

    /// Reads and parses a cluster config file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, ClusterConfigError> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| err(0, format!("cannot read {}: {e}", path.as_ref().display())))?;
        Self::parse(&text)
    }

    /// Renders the config back to its text form (used by test harnesses to
    /// hand one generated config to every spawned process).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (i, ep) in self.endpoints.iter().enumerate() {
            out.push_str(&format!("broker {i} {ep}\n"));
        }
        for &(a, b) in self.topology.edges() {
            out.push_str(&format!("edge {a} {b}\n"));
        }
        match self.delay {
            DelayModel::Constant(micros) => {
                out.push_str(&format!("delay_us {micros}\n"));
            }
            DelayModel::Uniform {
                min_micros,
                max_micros,
            } => {
                out.push_str(&format!("delay_uniform {min_micros} {max_micros}\n"));
            }
            DelayModel::Jittered {
                base_micros,
                jitter_micros,
            } => {
                out.push_str(&format!("delay_jitter {base_micros} {jitter_micros}\n"));
            }
        }
        out.push_str(&format!("seed {}\n", self.seed));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
# a line of three
broker 0 127.0.0.1:7101
broker 1 127.0.0.1:7102
broker 2 127.0.0.1:7103
edge 0 1
edge 1 2
delay_ms 3
seed 9
";

    #[test]
    fn parses_the_sample() {
        let cfg = ClusterConfig::parse(SAMPLE).unwrap();
        assert_eq!(cfg.endpoints.len(), 3);
        assert_eq!(cfg.endpoints[2], Endpoint::new("127.0.0.1", 7103));
        assert_eq!(cfg.topology.len(), 3);
        assert!(cfg.topology.has_edge(0, 1));
        assert!(cfg.topology.has_edge(1, 2));
        assert!(!cfg.topology.has_edge(0, 2));
        assert_eq!(cfg.delay, DelayModel::constant_millis(3));
        assert_eq!(cfg.seed, 9);
    }

    #[test]
    fn render_roundtrips() {
        let mut cfg = ClusterConfig::parse(SAMPLE).unwrap();
        // Every delay model roundtrips exactly, including sub-millisecond
        // constants.
        for delay in [
            DelayModel::Constant(500),
            DelayModel::Uniform {
                min_micros: 100,
                max_micros: 900,
            },
            DelayModel::Jittered {
                base_micros: 2000,
                jitter_micros: 250,
            },
        ] {
            cfg.delay = delay;
            let again = ClusterConfig::parse(&cfg.render()).unwrap();
            assert_eq!(again.endpoints, cfg.endpoints);
            assert_eq!(again.topology.edges(), cfg.topology.edges());
            assert_eq!(again.delay, cfg.delay);
            assert_eq!(again.seed, cfg.seed);
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = ClusterConfig::parse("broker 0\n").unwrap_err();
        assert_eq!(e.line, 1);
        assert!(e.to_string().contains("line 1"));
        let e = ClusterConfig::parse("broker 0 127.0.0.1:7101\nfoo bar\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("foo"));
        let e = ClusterConfig::parse("broker 0 127.0.0.1:x\n").unwrap_err();
        assert_eq!(e.line, 1);
    }

    #[test]
    fn structural_problems_are_rejected() {
        assert!(ClusterConfig::parse("# empty\n")
            .unwrap_err()
            .to_string()
            .contains("no brokers"));
        let gap = "broker 0 127.0.0.1:1\nbroker 2 127.0.0.1:2\n";
        assert!(ClusterConfig::parse(gap)
            .unwrap_err()
            .to_string()
            .contains("dense"));
        let bad_edge = "broker 0 127.0.0.1:1\nedge 0 7\n";
        assert!(ClusterConfig::parse(bad_edge)
            .unwrap_err()
            .to_string()
            .contains("unknown broker"));
    }
}
