//! The write-ahead handoff log: crash durability for virtual counterparts.
//!
//! The relocation protocol of the paper keeps *virtual counterparts* —
//! buffered deliveries for disconnected clients — purely in broker memory,
//! so a broker failure silently loses every notification published during a
//! client's hand-over.  [`HandoffLog`] closes that gap: every durable event
//! of the relocation protocol is appended to a per-broker, append-only log
//! *before* the corresponding in-memory mutation takes effect, and a
//! restarted broker replays the log to reconstruct its counterparts exactly.
//!
//! # Record framing
//!
//! The log is a flat byte stream of length-prefixed, checksummed records:
//!
//! ```text
//! ┌─────────────┬──────────────┬────────────────────┐
//! │ len: u32 LE │ crc32: u32 LE│ payload (len bytes)│  … repeated
//! └─────────────┴──────────────┴────────────────────┘
//! ```
//!
//! `crc32` is the IEEE CRC-32 of the payload.  Recovery scans from the
//! front and stops at the first record whose length prefix overruns the
//! file or whose checksum does not match — a torn tail (partial append at
//! the instant of the crash) or flipped bytes therefore cost at most the
//! records *after* the corruption, never a panic.
//!
//! # Record vocabulary
//!
//! | tag | record              | logged by | meaning                              |
//! |-----|---------------------|-----------|--------------------------------------|
//! | 1   | `StreamOpen`        | old broker| counterpart activated at detach      |
//! | 2   | `Buffered`          | old broker| delivery appended to the counterpart |
//! | 3   | `RelocationBegin`   | new broker| holding buffer created               |
//! | 4   | `RelocationCommit`  | old broker| counterpart replayed + GC'd          |
//! | 5   | `ReplayAck`         | new broker| holding resolved (merge or timeout)  |
//! | 6   | `Checkpoint`        | either    | compaction snapshot of live state    |
//! | 7   | `Epoch`             | recovery  | restart-generation watermark         |
//! | 8   | `StreamExpired`     | old broker| counterpart lease expired, GC'd      |
//!
//! # Compaction
//!
//! Appending forever would make both the log and recovery unbounded, so
//! after every `checkpoint_every` appended records the machine rewrites the
//! log as a single [`WalRecord::Checkpoint`] carrying the full durable
//! state.  Recovery treats a checkpoint as a reset: records before it are
//! irrelevant, records after it replay on top of it.
//!
//! # Backends
//!
//! Storage is pluggable through [`LogBackend`]: [`MemoryBackend`] keeps the
//! bytes in a shared in-process buffer (clones of a backend share storage,
//! modelling a disk that outlives the broker process — this is what the
//! deterministic simulator uses), [`FileBackend`] appends to a real file
//! for runs outside the simulator.

use std::fmt;
use std::io;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

use rebeca_broker::{ClientId, Delivery};
use rebeca_filter::Filter;
use rebeca_sim::NodeId;

use crate::codec::{
    crc32, put_delivery, put_filter, put_node, put_u32, put_u64, put_u8, ByteReader, DecodeError,
};

// ---------------------------------------------------------------------------
// Backends
// ---------------------------------------------------------------------------

/// Pluggable storage for a [`HandoffLog`].
///
/// Implementations must behave like an append-only byte device: `append`
/// atomically adds bytes at the end, `read_all` returns everything written
/// so far, `reset` replaces the whole content (used by compaction).
pub trait LogBackend: fmt::Debug + Send {
    /// Appends raw bytes at the end of the log.
    fn append(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Reads the entire log content.
    fn read_all(&self) -> io::Result<Vec<u8>>;
    /// Replaces the entire log content (compaction).
    fn reset(&mut self, bytes: &[u8]) -> io::Result<()>;
    /// Clones the backend behind a box.  Clones of the same backend refer to
    /// the same underlying storage (the "disk"), so a handle kept outside a
    /// broker survives the broker being dropped and restarted.
    fn boxed_clone(&self) -> Box<dyn LogBackend>;
}

impl Clone for Box<dyn LogBackend> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// In-process backend: bytes live in an `Arc`-shared buffer, so clones of
/// the backend observe each other's writes.  This is the backend of the
/// deterministic simulator — the shared buffer plays the role of the disk
/// that survives a broker crash.
#[derive(Debug, Clone, Default)]
pub struct MemoryBackend {
    shared: Arc<Mutex<Vec<u8>>>,
}

impl MemoryBackend {
    /// Creates an empty in-memory backend.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current size of the stored log in bytes.
    pub fn len(&self) -> usize {
        self.shared.lock().expect("wal buffer poisoned").len()
    }

    /// `true` when nothing has been logged.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Overwrites the raw stored bytes (test hook for corruption scenarios).
    pub fn corrupt_with(&self, bytes: Vec<u8>) {
        *self.shared.lock().expect("wal buffer poisoned") = bytes;
    }

    /// A copy of the raw stored bytes.
    pub fn bytes(&self) -> Vec<u8> {
        self.shared.lock().expect("wal buffer poisoned").clone()
    }
}

impl LogBackend for MemoryBackend {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.shared
            .lock()
            .expect("wal buffer poisoned")
            .extend_from_slice(bytes);
        Ok(())
    }

    fn read_all(&self) -> io::Result<Vec<u8>> {
        Ok(self.bytes())
    }

    fn reset(&mut self, bytes: &[u8]) -> io::Result<()> {
        *self.shared.lock().expect("wal buffer poisoned") = bytes.to_vec();
        Ok(())
    }

    fn boxed_clone(&self) -> Box<dyn LogBackend> {
        Box::new(self.clone())
    }
}

/// File-based backend for runs outside the simulator: records are appended
/// to one WAL file per broker under a persistence root.
#[derive(Debug, Clone)]
pub struct FileBackend {
    path: PathBuf,
}

impl FileBackend {
    /// Creates a backend appending to `path` (parent directories are created
    /// on first write).
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The WAL file path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    fn ensure_parent(&self) -> io::Result<()> {
        if let Some(parent) = self.path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(())
    }
}

impl LogBackend for FileBackend {
    fn append(&mut self, bytes: &[u8]) -> io::Result<()> {
        use std::io::Write;
        self.ensure_parent()?;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&self.path)?;
        file.write_all(bytes)?;
        file.sync_data()
    }

    fn read_all(&self) -> io::Result<Vec<u8>> {
        match std::fs::read(&self.path) {
            Ok(bytes) => Ok(bytes),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(Vec::new()),
            Err(e) => Err(e),
        }
    }

    fn reset(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.ensure_parent()?;
        std::fs::write(&self.path, bytes)
    }

    fn boxed_clone(&self) -> Box<dyn LogBackend> {
        Box::new(self.clone())
    }
}

// ---------------------------------------------------------------------------
// Records
// ---------------------------------------------------------------------------

/// Durable snapshot of one virtual-counterpart stream (used by checkpoints
/// and returned by recovery).
#[derive(Debug, Clone, PartialEq)]
pub struct StreamSnapshot {
    /// The roaming client.
    pub client: ClientId,
    /// The simulation node the client was last reachable at (needed to
    /// reconstruct the client record and its routing entry on restart).
    pub client_node: NodeId,
    /// The subscription the counterpart buffers for.
    pub filter: Filter,
    /// The next per-`(client, filter)` sequence number at the time the
    /// counterpart was opened (the watermark; buffered deliveries may carry
    /// higher numbers).
    pub next_seq: u64,
    /// Lease start: the broker time (microseconds) the counterpart was
    /// activated at.  A client that never returns within the configured
    /// counterpart lease is garbage collected by the lease sweep.
    pub opened_at: u64,
    /// The buffered deliveries, in append order.
    pub buffered: Vec<Delivery>,
}

/// Durable snapshot of one unresolved relocation holding buffer at the new
/// border broker.  Held-back *fresh* envelopes are deliberately not
/// persisted (see the crate docs on scope); the snapshot is enough to
/// reconstruct the attached client, re-arm the relocation timeout and merge
/// a late replay after a restart.
#[derive(Debug, Clone, PartialEq)]
pub struct HoldingSnapshot {
    /// The roaming client.
    pub client: ClientId,
    /// The node the re-subscribed client is attached through.
    pub client_node: NodeId,
    /// The relocating subscription.
    pub filter: Filter,
    /// Last sequence number the client reported on re-subscription.
    pub last_seq: u64,
}

/// One durable event of the relocation protocol.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A virtual counterpart was activated: the client detached at
    /// `client_node` while holding `filter`, with `next_seq` being the next
    /// sequence number of the stream.
    StreamOpen {
        /// The disconnecting client.
        client: ClientId,
        /// The node the client was attached through.
        client_node: NodeId,
        /// The subscription left behind.
        filter: Filter,
        /// Sequence-number watermark at detach time.
        next_seq: u64,
        /// Lease start: broker time (microseconds) at activation.
        opened_at: u64,
    },
    /// A delivery was appended to the counterpart buffer of its stream.
    Buffered {
        /// The buffered delivery.
        delivery: Delivery,
    },
    /// This (new border) broker started a relocation: a holding buffer was
    /// created for the re-subscribed stream of the client attached at
    /// `client_node`.
    RelocationBegin {
        /// The relocating client.
        client: ClientId,
        /// The node the re-subscribed client is attached through.
        client_node: NodeId,
        /// The relocating subscription.
        filter: Filter,
        /// Last sequence number the client echoed.
        last_seq: u64,
    },
    /// This (old border) broker replayed and garbage collected the
    /// counterpart; the delivery path was re-pointed towards `towards`.
    RelocationCommit {
        /// The relocated client.
        client: ClientId,
        /// The relocated subscription.
        filter: Filter,
        /// The link the delivery path was re-pointed to.
        towards: NodeId,
    },
    /// This (new border) broker resolved its holding buffer (replay merged
    /// in, or flushed by the relocation timeout).
    ReplayAck {
        /// The relocated client.
        client: ClientId,
        /// The relocated subscription.
        filter: Filter,
    },
    /// Compaction checkpoint: the complete durable state at the time of
    /// writing.  Replay restarts from here.
    Checkpoint {
        /// All live counterpart streams.
        streams: Vec<StreamSnapshot>,
        /// All unresolved holdings.
        holdings: Vec<HoldingSnapshot>,
        /// Routing re-points of committed relocations (compaction must not
        /// drop them: the restarted broker re-installs these entries so
        /// post-commit traffic keeps flowing to relocated clients).
        repoints: Vec<(Filter, NodeId)>,
        /// Restart generation watermark (see [`WalRecord::Epoch`]).
        generation: u64,
    },
    /// This (old border) broker's lease sweep expired the counterpart of a
    /// client that never returned: the stream and its buffered deliveries
    /// were garbage collected without a replay.
    StreamExpired {
        /// The client whose lease ran out.
        client: ClientId,
        /// The subscription whose counterpart was dropped.
        filter: Filter,
    },
    /// Restart marker: appended once per recovery.  The restarted machine
    /// numbers its timeout tags from `generation << 32`, so timers armed by
    /// a previous incarnation (which survive a crash in the simulator's
    /// event queue and cannot be cancelled) can never alias a tag handed
    /// out after the restart.
    Epoch {
        /// Monotonically increasing restart count.
        generation: u64,
    },
}

/// State reconstructed by [`HandoffLog::recover`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RecoveredState {
    /// Live counterpart streams at the time of the crash.
    pub streams: Vec<StreamSnapshot>,
    /// Unresolved relocation holdings at the time of the crash.
    pub holdings: Vec<HoldingSnapshot>,
    /// Routing re-points from committed relocations (`(filter, towards)`):
    /// the restarted broker re-inserts these so post-commit traffic keeps
    /// flowing towards the client's new location.
    pub repoints: Vec<(Filter, NodeId)>,
    /// Highest restart generation observed in the log.
    pub generation: u64,
    /// Number of records successfully replayed.
    pub records_read: usize,
    /// `true` when recovery stopped before the end of the log (torn tail or
    /// corrupted record); everything up to the last valid record was kept.
    pub truncated: bool,
}

// ---------------------------------------------------------------------------
// Codec
// ---------------------------------------------------------------------------

const TAG_STREAM_OPEN: u8 = 1;
const TAG_BUFFERED: u8 = 2;
const TAG_RELOCATION_BEGIN: u8 = 3;
const TAG_RELOCATION_COMMIT: u8 = 4;
const TAG_REPLAY_ACK: u8 = 5;
const TAG_CHECKPOINT: u8 = 6;
const TAG_EPOCH: u8 = 7;
const TAG_STREAM_EXPIRED: u8 = 8;

impl WalRecord {
    /// Encodes the record payload (without the frame header).
    fn encode_payload(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(64);
        match self {
            WalRecord::StreamOpen {
                client,
                client_node,
                filter,
                next_seq,
                opened_at,
            } => {
                put_u8(&mut buf, TAG_STREAM_OPEN);
                put_u32(&mut buf, client.raw());
                put_node(&mut buf, *client_node);
                put_filter(&mut buf, filter);
                put_u64(&mut buf, *next_seq);
                put_u64(&mut buf, *opened_at);
            }
            WalRecord::Buffered { delivery } => {
                put_u8(&mut buf, TAG_BUFFERED);
                put_delivery(&mut buf, delivery);
            }
            WalRecord::RelocationBegin {
                client,
                client_node,
                filter,
                last_seq,
            } => {
                put_u8(&mut buf, TAG_RELOCATION_BEGIN);
                put_u32(&mut buf, client.raw());
                put_node(&mut buf, *client_node);
                put_filter(&mut buf, filter);
                put_u64(&mut buf, *last_seq);
            }
            WalRecord::RelocationCommit {
                client,
                filter,
                towards,
            } => {
                put_u8(&mut buf, TAG_RELOCATION_COMMIT);
                put_u32(&mut buf, client.raw());
                put_filter(&mut buf, filter);
                put_node(&mut buf, *towards);
            }
            WalRecord::ReplayAck { client, filter } => {
                put_u8(&mut buf, TAG_REPLAY_ACK);
                put_u32(&mut buf, client.raw());
                put_filter(&mut buf, filter);
            }
            WalRecord::Checkpoint {
                streams,
                holdings,
                repoints,
                generation,
            } => {
                put_u8(&mut buf, TAG_CHECKPOINT);
                put_u32(&mut buf, streams.len() as u32);
                for s in streams {
                    put_u32(&mut buf, s.client.raw());
                    put_node(&mut buf, s.client_node);
                    put_filter(&mut buf, &s.filter);
                    put_u64(&mut buf, s.next_seq);
                    put_u64(&mut buf, s.opened_at);
                    put_u32(&mut buf, s.buffered.len() as u32);
                    for d in &s.buffered {
                        put_delivery(&mut buf, d);
                    }
                }
                put_u32(&mut buf, holdings.len() as u32);
                for h in holdings {
                    put_u32(&mut buf, h.client.raw());
                    put_node(&mut buf, h.client_node);
                    put_filter(&mut buf, &h.filter);
                    put_u64(&mut buf, h.last_seq);
                }
                put_u32(&mut buf, repoints.len() as u32);
                for (filter, towards) in repoints {
                    put_filter(&mut buf, filter);
                    put_node(&mut buf, *towards);
                }
                put_u64(&mut buf, *generation);
            }
            WalRecord::Epoch { generation } => {
                put_u8(&mut buf, TAG_EPOCH);
                put_u64(&mut buf, *generation);
            }
            WalRecord::StreamExpired { client, filter } => {
                put_u8(&mut buf, TAG_STREAM_EXPIRED);
                put_u32(&mut buf, client.raw());
                put_filter(&mut buf, filter);
            }
        }
        buf
    }

    /// Encodes the record as one framed log entry (`len ‖ crc32 ‖ payload`).
    pub fn encode_framed(&self) -> Vec<u8> {
        let payload = self.encode_payload();
        let mut frame = Vec::with_capacity(payload.len() + 8);
        put_u32(&mut frame, payload.len() as u32);
        put_u32(&mut frame, crc32(&payload));
        frame.extend_from_slice(&payload);
        frame
    }

    fn decode_payload(payload: &[u8]) -> Result<Self, DecodeError> {
        let mut r = ByteReader::new(payload);
        let record = match r.u8()? {
            TAG_STREAM_OPEN => WalRecord::StreamOpen {
                client: ClientId::new(r.u32()?),
                client_node: r.node()?,
                filter: r.filter()?,
                next_seq: r.u64()?,
                opened_at: r.u64()?,
            },
            TAG_BUFFERED => WalRecord::Buffered {
                delivery: r.delivery()?,
            },
            TAG_RELOCATION_BEGIN => WalRecord::RelocationBegin {
                client: ClientId::new(r.u32()?),
                client_node: r.node()?,
                filter: r.filter()?,
                last_seq: r.u64()?,
            },
            TAG_RELOCATION_COMMIT => WalRecord::RelocationCommit {
                client: ClientId::new(r.u32()?),
                filter: r.filter()?,
                towards: r.node()?,
            },
            TAG_REPLAY_ACK => WalRecord::ReplayAck {
                client: ClientId::new(r.u32()?),
                filter: r.filter()?,
            },
            TAG_CHECKPOINT => {
                let n_streams = r.u32()? as usize;
                let mut streams = Vec::with_capacity(n_streams.min(1024));
                for _ in 0..n_streams {
                    let client = ClientId::new(r.u32()?);
                    let client_node = r.node()?;
                    let filter = r.filter()?;
                    let next_seq = r.u64()?;
                    let opened_at = r.u64()?;
                    let n_buffered = r.u32()? as usize;
                    let mut buffered = Vec::with_capacity(n_buffered.min(1024));
                    for _ in 0..n_buffered {
                        buffered.push(r.delivery()?);
                    }
                    streams.push(StreamSnapshot {
                        client,
                        client_node,
                        filter,
                        next_seq,
                        opened_at,
                        buffered,
                    });
                }
                let n_holdings = r.u32()? as usize;
                let mut holdings = Vec::with_capacity(n_holdings.min(1024));
                for _ in 0..n_holdings {
                    holdings.push(HoldingSnapshot {
                        client: ClientId::new(r.u32()?),
                        client_node: r.node()?,
                        filter: r.filter()?,
                        last_seq: r.u64()?,
                    });
                }
                let n_repoints = r.u32()? as usize;
                let mut repoints = Vec::with_capacity(n_repoints.min(1024));
                for _ in 0..n_repoints {
                    repoints.push((r.filter()?, r.node()?));
                }
                let generation = r.u64()?;
                WalRecord::Checkpoint {
                    streams,
                    holdings,
                    repoints,
                    generation,
                }
            }
            TAG_EPOCH => WalRecord::Epoch {
                generation: r.u64()?,
            },
            TAG_STREAM_EXPIRED => WalRecord::StreamExpired {
                client: ClientId::new(r.u32()?),
                filter: r.filter()?,
            },
            _ => return Err(DecodeError),
        };
        if !r.done() {
            return Err(DecodeError);
        }
        Ok(record)
    }
}

// ---------------------------------------------------------------------------
// The log itself
// ---------------------------------------------------------------------------

/// The per-broker write-ahead handoff log.
///
/// See the module docs for the record format and compaction policy.
#[derive(Debug)]
pub struct HandoffLog {
    backend: Box<dyn LogBackend>,
    appends_since_checkpoint: usize,
    checkpoint_every: usize,
    /// Live records in the log right now (appends since the last compaction
    /// plus the compaction's own checkpoint record) — the "WAL depth" the
    /// status plane reports.
    depth: u64,
    /// Monotonic count of appends over the log's lifetime (never reset by
    /// compaction) — the observability layer diffs this to journal
    /// `wal.append` events without touching the append hot path.
    appends_total: u64,
    /// Monotonic count of checkpoint compactions.
    checkpoints_total: u64,
}

impl Clone for HandoffLog {
    fn clone(&self) -> Self {
        Self {
            backend: self.backend.boxed_clone(),
            appends_since_checkpoint: self.appends_since_checkpoint,
            checkpoint_every: self.checkpoint_every,
            depth: self.depth,
            appends_total: self.appends_total,
            checkpoints_total: self.checkpoints_total,
        }
    }
}

/// Default number of appended records between compaction checkpoints.
pub const DEFAULT_CHECKPOINT_EVERY: usize = 256;

impl HandoffLog {
    /// Creates a log over a fresh (private) in-memory backend.
    pub fn in_memory() -> Self {
        Self::with_backend(Box::new(MemoryBackend::new()))
    }

    /// Creates a log over the given backend.
    pub fn with_backend(backend: Box<dyn LogBackend>) -> Self {
        Self {
            backend,
            appends_since_checkpoint: 0,
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            depth: 0,
            appends_total: 0,
            checkpoints_total: 0,
        }
    }

    /// Sets the compaction interval (records between checkpoints; `0`
    /// disables automatic compaction).
    pub fn checkpoint_every(mut self, every: usize) -> Self {
        self.checkpoint_every = every;
        self
    }

    /// Read access to the backend (e.g. to clone a durable handle).
    pub fn backend(&self) -> &dyn LogBackend {
        self.backend.as_ref()
    }

    /// Appends one record (write-ahead: call this *before* mutating the
    /// in-memory state it describes).
    ///
    /// # Panics
    ///
    /// Panics when the backend reports an I/O error — a broker that cannot
    /// persist its handoff state must not silently continue.
    pub fn append(&mut self, record: &WalRecord) {
        self.backend
            .append(&record.encode_framed())
            .expect("handoff WAL append failed");
        self.appends_since_checkpoint += 1;
        self.depth += 1;
        self.appends_total += 1;
    }

    /// Live records currently in the log (the status plane's "WAL depth").
    /// After a recovery, call [`HandoffLog::note_recovered`] to seed this
    /// with the record count the scan found.
    pub fn depth(&self) -> u64 {
        self.depth
    }

    /// Records appended since the last checkpoint compaction.
    pub fn since_checkpoint(&self) -> u64 {
        self.appends_since_checkpoint as u64
    }

    /// Monotonic count of appends over the log's lifetime.
    pub fn appends_total(&self) -> u64 {
        self.appends_total
    }

    /// Monotonic count of checkpoint compactions.
    pub fn checkpoints_total(&self) -> u64 {
        self.checkpoints_total
    }

    /// Seeds the depth counter with the record count a recovery scan found
    /// (the counters only observe operations performed through this
    /// handle, so a freshly recovered log must be told what it contains).
    pub fn note_recovered(&mut self, records_read: u64) {
        self.depth = records_read;
    }

    /// `true` when enough records accumulated since the last checkpoint for
    /// a compaction to be due.
    pub fn wants_checkpoint(&self) -> bool {
        self.checkpoint_every > 0 && self.appends_since_checkpoint >= self.checkpoint_every
    }

    /// Rewrites the log as a single checkpoint carrying the given state.
    ///
    /// # Panics
    ///
    /// Panics when the backend reports an I/O error.
    pub fn compact(
        &mut self,
        streams: Vec<StreamSnapshot>,
        holdings: Vec<HoldingSnapshot>,
        repoints: Vec<(Filter, NodeId)>,
        generation: u64,
    ) {
        let record = WalRecord::Checkpoint {
            streams,
            holdings,
            repoints,
            generation,
        };
        self.backend
            .reset(&record.encode_framed())
            .expect("handoff WAL compaction failed");
        self.appends_since_checkpoint = 0;
        self.depth = 1; // the log is now exactly one checkpoint record
        self.checkpoints_total += 1;
    }

    /// Scans the log and folds every valid record into a [`RecoveredState`].
    ///
    /// Recovery is total: a torn tail or corrupted record stops the scan at
    /// the last valid record instead of panicking (`truncated` is set).
    pub fn recover(&self) -> RecoveredState {
        let bytes = match self.backend.read_all() {
            Ok(bytes) => bytes,
            Err(_) => {
                return RecoveredState {
                    truncated: true,
                    ..RecoveredState::default()
                }
            }
        };
        let mut state = RecoveredState::default();
        let mut pos = 0usize;
        while pos < bytes.len() {
            // Frame header: len + crc.
            if pos + 8 > bytes.len() {
                state.truncated = true;
                break;
            }
            let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
            let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
            let start = pos + 8;
            let end = match start.checked_add(len) {
                Some(end) if end <= bytes.len() => end,
                _ => {
                    state.truncated = true;
                    break;
                }
            };
            let payload = &bytes[start..end];
            if crc32(payload) != crc {
                state.truncated = true;
                break;
            }
            let record = match WalRecord::decode_payload(payload) {
                Ok(record) => record,
                Err(DecodeError) => {
                    state.truncated = true;
                    break;
                }
            };
            Self::fold(&mut state, record);
            state.records_read += 1;
            pos = end;
        }
        state
    }

    fn fold(state: &mut RecoveredState, record: WalRecord) {
        match record {
            WalRecord::StreamOpen {
                client,
                client_node,
                filter,
                next_seq,
                opened_at,
            } => {
                let existing = state
                    .streams
                    .iter_mut()
                    .find(|s| s.client == client && s.filter == filter);
                match existing {
                    Some(s) => {
                        s.client_node = client_node;
                        s.next_seq = s.next_seq.max(next_seq);
                        s.opened_at = opened_at;
                    }
                    None => state.streams.push(StreamSnapshot {
                        client,
                        client_node,
                        filter,
                        next_seq,
                        opened_at,
                        buffered: Vec::new(),
                    }),
                }
            }
            WalRecord::Buffered { delivery } => {
                let client = delivery.subscriber;
                let filter = delivery.filter.clone();
                match state
                    .streams
                    .iter_mut()
                    .find(|s| s.client == client && s.filter == filter)
                {
                    Some(s) => s.buffered.push(delivery),
                    None => {
                        // An append without an open record (should not
                        // happen, but tolerated): synthesise the stream with
                        // an unknown client node.
                        state.streams.push(StreamSnapshot {
                            client,
                            client_node: NodeId(usize::MAX),
                            filter,
                            next_seq: delivery.seq,
                            opened_at: 0,
                            buffered: vec![delivery],
                        });
                    }
                }
            }
            WalRecord::RelocationBegin {
                client,
                client_node,
                filter,
                last_seq,
            } => {
                state
                    .holdings
                    .retain(|h| !(h.client == client && h.filter == filter));
                state.holdings.push(HoldingSnapshot {
                    client,
                    client_node,
                    filter,
                    last_seq,
                });
            }
            WalRecord::RelocationCommit {
                client,
                filter,
                towards,
            } => {
                state
                    .streams
                    .retain(|s| !(s.client == client && s.filter == filter));
                state.repoints.push((filter, towards));
            }
            WalRecord::ReplayAck { client, filter } => {
                state
                    .holdings
                    .retain(|h| !(h.client == client && h.filter == filter));
            }
            WalRecord::Checkpoint {
                streams,
                holdings,
                repoints,
                generation,
            } => {
                state.streams = streams;
                state.holdings = holdings;
                state.repoints = repoints;
                state.generation = state.generation.max(generation);
            }
            WalRecord::Epoch { generation } => {
                state.generation = state.generation.max(generation);
            }
            WalRecord::StreamExpired { client, filter } => {
                state
                    .streams
                    .retain(|s| !(s.client == client && s.filter == filter));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_broker::Envelope;
    use rebeca_filter::{Constraint, Notification, Value};

    fn filter() -> Filter {
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(3.into()))
    }

    fn delivery(seq: u64) -> Delivery {
        Delivery {
            subscriber: ClientId::new(1),
            filter: filter(),
            seq,
            envelope: Envelope::new(
                ClientId::new(9),
                seq,
                Notification::builder()
                    .attr("service", "parking")
                    .attr("spot", seq as i64)
                    .attr("rate", 2.5)
                    .attr("open", true)
                    .attr("zone", Value::Location(4))
                    .build(),
            ),
        }
    }

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::StreamOpen {
                client: ClientId::new(1),
                client_node: NodeId(100),
                filter: filter(),
                next_seq: 4,
                opened_at: 1_000,
            },
            WalRecord::Buffered {
                delivery: delivery(4),
            },
            WalRecord::Buffered {
                delivery: delivery(5),
            },
            WalRecord::RelocationBegin {
                client: ClientId::new(1),
                client_node: NodeId(101),
                filter: filter(),
                last_seq: 3,
            },
        ]
    }

    #[test]
    fn records_roundtrip_through_the_frame_codec() {
        let records = [
            sample_records(),
            vec![
                WalRecord::RelocationCommit {
                    client: ClientId::new(1),
                    filter: filter(),
                    towards: NodeId(7),
                },
                WalRecord::ReplayAck {
                    client: ClientId::new(1),
                    filter: filter(),
                },
                WalRecord::Checkpoint {
                    streams: vec![StreamSnapshot {
                        client: ClientId::new(2),
                        client_node: NodeId(3),
                        filter: Filter::new().with(
                            "tags",
                            Constraint::any_of([Value::from("a"), Value::from("b")]),
                        ),
                        next_seq: 10,
                        opened_at: 77,
                        buffered: vec![delivery(10), delivery(11)],
                    }],
                    holdings: vec![HoldingSnapshot {
                        client: ClientId::new(2),
                        client_node: NodeId(9),
                        filter: filter(),
                        last_seq: 9,
                    }],
                    repoints: vec![(filter(), NodeId(4))],
                    generation: 3,
                },
                WalRecord::Epoch { generation: 2 },
                WalRecord::StreamExpired {
                    client: ClientId::new(1),
                    filter: filter(),
                },
            ],
        ]
        .concat();
        for record in records {
            let framed = record.encode_framed();
            let payload = &framed[8..];
            assert_eq!(
                u32::from_le_bytes(framed[0..4].try_into().unwrap()) as usize,
                payload.len()
            );
            let decoded = WalRecord::decode_payload(payload).expect("roundtrip");
            assert_eq!(decoded, record);
        }
    }

    #[test]
    fn recovery_folds_a_full_relocation_to_empty_state() {
        let mut log = HandoffLog::in_memory();
        for r in sample_records() {
            log.append(&r);
        }
        log.append(&WalRecord::RelocationCommit {
            client: ClientId::new(1),
            filter: filter(),
            towards: NodeId(7),
        });
        log.append(&WalRecord::ReplayAck {
            client: ClientId::new(1),
            filter: filter(),
        });
        let state = log.recover();
        assert!(!state.truncated);
        assert_eq!(state.records_read, 6);
        assert!(state.streams.is_empty());
        assert!(state.holdings.is_empty());
        assert_eq!(state.repoints, vec![(filter(), NodeId(7))]);
    }

    #[test]
    fn recovery_reconstructs_counterparts_mid_relocation() {
        let mut log = HandoffLog::in_memory();
        for r in sample_records() {
            log.append(&r);
        }
        let state = log.recover();
        assert!(!state.truncated);
        assert_eq!(state.streams.len(), 1);
        let s = &state.streams[0];
        assert_eq!(s.client, ClientId::new(1));
        assert_eq!(s.client_node, NodeId(100));
        assert_eq!(s.next_seq, 4);
        assert_eq!(
            s.buffered.iter().map(|d| d.seq).collect::<Vec<_>>(),
            vec![4, 5]
        );
        assert_eq!(state.holdings.len(), 1);
        assert_eq!(state.holdings[0].last_seq, 3);
    }

    #[test]
    fn stream_expiry_folds_the_counterpart_away() {
        let mut log = HandoffLog::in_memory();
        for r in sample_records() {
            log.append(&r);
        }
        log.append(&WalRecord::StreamExpired {
            client: ClientId::new(1),
            filter: filter(),
        });
        let state = log.recover();
        assert!(!state.truncated);
        assert!(state.streams.is_empty(), "expired stream is gone");
        assert!(
            state.repoints.is_empty(),
            "expiry re-points nothing (unlike a commit)"
        );
        assert_eq!(state.holdings.len(), 1, "holdings are untouched");
    }

    #[test]
    fn compaction_replaces_history_with_one_checkpoint() {
        let backend = MemoryBackend::new();
        let mut log = HandoffLog::with_backend(Box::new(backend.clone())).checkpoint_every(3);
        for r in sample_records() {
            log.append(&r);
        }
        assert!(log.wants_checkpoint());
        let before = log.recover();
        log.compact(
            before.streams.clone(),
            before.holdings.clone(),
            before.repoints.clone(),
            1,
        );
        assert!(!log.wants_checkpoint());
        let after = log.recover();
        assert_eq!(after.streams, before.streams);
        assert_eq!(after.holdings, before.holdings);
        assert_eq!(after.records_read, 1, "one checkpoint record");
        // The log physically shrank below the sum of the original records.
        let original: usize = sample_records()
            .iter()
            .map(|r| r.encode_framed().len())
            .sum();
        assert!(backend.len() < original);
    }

    #[test]
    fn recovery_stops_at_a_torn_tail() {
        let backend = MemoryBackend::new();
        let mut log = HandoffLog::with_backend(Box::new(backend.clone()));
        for r in sample_records() {
            log.append(&r);
        }
        let full = backend.bytes();
        // Cut the last record in half (torn append at crash time).
        backend.corrupt_with(full[..full.len() - 5].to_vec());
        let state = log.recover();
        assert!(state.truncated);
        assert_eq!(state.records_read, 3, "only the complete records replay");
        assert_eq!(state.streams.len(), 1);
        assert!(
            state.holdings.is_empty(),
            "the torn RelocationBegin is lost"
        );
    }

    #[test]
    fn recovery_stops_at_a_flipped_payload_byte() {
        let backend = MemoryBackend::new();
        let mut log = HandoffLog::with_backend(Box::new(backend.clone()));
        for r in sample_records() {
            log.append(&r);
        }
        let mut bytes = backend.bytes();
        // Flip one byte inside the *second* record's payload.
        let first_len = u32::from_le_bytes(bytes[0..4].try_into().unwrap()) as usize + 8;
        bytes[first_len + 12] ^= 0xFF;
        backend.corrupt_with(bytes);
        let state = log.recover();
        assert!(state.truncated);
        assert_eq!(state.records_read, 1, "scan stops at the corrupted record");
        assert_eq!(state.streams.len(), 1);
        assert!(state.streams[0].buffered.is_empty());
    }

    #[test]
    fn recovery_survives_an_absurd_length_prefix() {
        let backend = MemoryBackend::new();
        let mut log = HandoffLog::with_backend(Box::new(backend.clone()));
        log.append(&sample_records()[0]);
        let mut bytes = backend.bytes();
        // Append a frame whose length overruns the buffer by far.
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&0u32.to_le_bytes());
        backend.corrupt_with(bytes);
        let state = log.recover();
        assert!(state.truncated);
        assert_eq!(state.records_read, 1);
    }

    #[test]
    fn memory_backend_clones_share_storage() {
        let a = MemoryBackend::new();
        let mut b = a.boxed_clone();
        b.append(b"hello").unwrap();
        assert_eq!(a.bytes(), b"hello");
        assert_eq!(a.len(), 5);
        assert!(!a.is_empty());
    }

    #[test]
    fn file_backend_roundtrips_and_recovers() {
        let path = std::env::temp_dir().join(format!(
            "rebeca-wal-test-{}-{:?}.wal",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut log = HandoffLog::with_backend(Box::new(FileBackend::new(&path)));
        for r in sample_records() {
            log.append(&r);
        }
        // A fresh log over the same path sees the same state (restart).
        let reopened = HandoffLog::with_backend(Box::new(FileBackend::new(&path)));
        let state = reopened.recover();
        assert!(!state.truncated);
        assert_eq!(state.streams.len(), 1);
        assert_eq!(state.streams[0].buffered.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_and_missing_logs_recover_to_empty_state() {
        let log = HandoffLog::in_memory();
        let state = log.recover();
        assert_eq!(state, RecoveredState::default());
        let missing = HandoffLog::with_backend(Box::new(FileBackend::new(
            std::env::temp_dir().join("rebeca-wal-does-not-exist.wal"),
        )));
        assert_eq!(missing.recover(), RecoveredState::default());
    }
}
