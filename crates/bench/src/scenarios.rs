//! Shared simulation scenarios used by the figure experiments.
//!
//! Each builder assembles a [`MobilitySystem`](rebeca_core::MobilitySystem)
//! that mirrors one of the
//! paper's evaluation settings; the figure modules run them with different
//! parameters and extract the series the paper plots.

use rebeca_broker::ClientId;
use rebeca_core::{BrokerConfig, ClientAction, LogicalMobilityMode, SystemBuilder};
use rebeca_filter::{Constraint, Filter, LocationDependentFilter, Notification, Value};
use rebeca_location::{AdaptivityPlan, LocationId, MovementGraph};
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{DelayModel, SimDuration, SimTime, Topology};

/// Identity of the roaming / location-aware consumer in every scenario.
pub const CONSUMER: ClientId = ClientId::new(1);

/// The parking-service subscription used throughout the experiments.
pub fn parking_filter() -> Filter {
    Filter::new().with("service", Constraint::Eq("parking".into()))
}

/// The location-dependent parking subscription (`location ∈ myloc`).
pub fn parking_template() -> LocationDependentFilter {
    LocationDependentFilter::new("location", 0)
        .with_concrete("service", Constraint::Eq("parking".into()))
}

/// A parking-vacancy notification at the given location.
pub fn vacancy_at(location: LocationId, spot: i64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("location", Value::Location(location.raw()))
        .attr("spot", spot)
        .build()
}

/// How the consumer of the physical-mobility scenarios hands over between
/// brokers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HandoffKind {
    /// The paper's relocation protocol (Section 4).
    Relocation,
    /// Naive hand-off with an explicit sign-off at the old broker.
    NaiveWithSignOff,
    /// Naive hand-off without sign-off (the client just disappears).
    NaiveSilent,
}

/// Parameters of the Figure 2 / Figure 5 physical-mobility scenario.
#[derive(Debug, Clone)]
pub struct PhysicalScenario {
    /// Routing strategy of the broker network.
    pub strategy: RoutingStrategyKind,
    /// How the consumer hands over.
    pub handoff: HandoffKind,
    /// When the consumer moves from the old to the new border broker.
    pub move_at: SimTime,
    /// Number of publications.
    pub publications: u64,
    /// Gap between publications.
    pub publish_interval: SimDuration,
    /// Per-link delay.
    pub link_delay: DelayModel,
}

impl Default for PhysicalScenario {
    fn default() -> Self {
        Self {
            strategy: RoutingStrategyKind::Covering,
            handoff: HandoffKind::Relocation,
            move_at: SimTime::from_millis(500),
            publications: 40,
            publish_interval: SimDuration::from_millis(25),
            link_delay: DelayModel::constant_millis(5),
        }
    }
}

/// Result of a physical-mobility run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhysicalOutcome {
    /// Publications that reached the consumer at least once.
    pub received: usize,
    /// Publications that never reached the consumer.
    pub lost: usize,
    /// Publications that reached the consumer more than once.
    pub duplicated: usize,
    /// Whether per-publisher FIFO order held.
    pub fifo_preserved: bool,
    /// Total messages transmitted over links.
    pub total_messages: u64,
}

/// Runs the Figure 5 scenario (producer at B8, consumer moving B6 → B1) with
/// the given parameters and reports completeness / duplication / ordering.
pub fn run_physical(params: &PhysicalScenario) -> PhysicalOutcome {
    let topo = Topology::figure5();
    let config = BrokerConfig::default()
        .with_strategy(params.strategy)
        .with_movement_graph(MovementGraph::paper_example())
        .with_relocation_timeout(SimDuration::from_secs(30));
    let mut sys = SystemBuilder::new(&topo)
        .config(config)
        .link_delay(params.link_delay)
        .seed(17)
        .build()
        .unwrap();
    let producer = ClientId::new(2);
    let old_broker = sys.broker_node(5).unwrap();
    let new_broker = sys.broker_node(0).unwrap();

    let move_action = match params.handoff {
        HandoffKind::Relocation => ClientAction::MoveTo { broker: new_broker },
        HandoffKind::NaiveWithSignOff => ClientAction::NaiveMoveTo {
            broker: new_broker,
            sign_off: true,
        },
        HandoffKind::NaiveSilent => ClientAction::NaiveMoveTo {
            broker: new_broker,
            sign_off: false,
        },
    };
    sys.add_client(
        CONSUMER,
        LogicalMobilityMode::LocationDependent,
        &[5, 0],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach { broker: old_broker },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(parking_filter()),
            ),
            (params.move_at, move_action),
        ],
    )
    .unwrap();
    let mut script = vec![
        (
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(7).unwrap(),
            },
        ),
        (
            SimTime::from_millis(2),
            ClientAction::Advertise(parking_filter()),
        ),
    ];
    for i in 0..params.publications {
        let at = SimTime::from_millis(50) + params.publish_interval.saturating_mul(i);
        script.push((
            at,
            ClientAction::Publish(vacancy_at(LocationId(0), i as i64)),
        ));
    }
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[7],
        script,
    )
    .unwrap();

    let horizon = SimTime::from_millis(50)
        + params
            .publish_interval
            .saturating_mul(params.publications + 10)
        + SimDuration::from_secs(2);
    sys.run_until(horizon);

    let log = sys.client_log(CONSUMER).unwrap();
    let received = log.distinct_publisher_seqs(producer).len();
    let lost = log.missing_from(producer, 1..=params.publications).len();
    let duplicated = log.duplicate_publications(producer);
    let fifo_preserved = log
        .violations()
        .iter()
        .all(|v| !matches!(v, rebeca_broker::DeliveryViolation::FifoViolation { .. }));
    PhysicalOutcome {
        received,
        lost,
        duplicated,
        fifo_preserved,
        total_messages: sys.total_messages(),
    }
}

/// Which logical-mobility scheme a Figure 3 / Figure 9 run uses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogicalScheme {
    /// The paper's location-dependent subscriptions with the given adaptivity
    /// plan.
    LocationDependent(AdaptivityPlan),
    /// The manual sub/unsub baseline (Figure 3a).
    ManualSubUnsub,
    /// Flooding with client-side filtering (Figure 3b).
    Flooding,
}

/// Parameters of the logical-mobility scenario: a broker line with the
/// consumer at one end and producers at the other, the consumer walking
/// through a movement graph.
#[derive(Debug, Clone)]
pub struct LogicalScenario {
    /// The scheme under test.
    pub scheme: LogicalScheme,
    /// Movement graph of the location space.
    pub movement_graph: MovementGraph,
    /// Number of brokers in the line (consumer at index 0, producers at the
    /// far end).
    pub brokers: usize,
    /// Number of producers (all attached to the last broker).
    pub producers: usize,
    /// Residence time at each location (`Δ`).
    pub residence: SimDuration,
    /// Interval between publications of one producer (each publication is
    /// addressed to a location drawn uniformly from the location space).
    pub publish_interval: SimDuration,
    /// Number of notifications a producer hands to its border broker per
    /// publish message (`1` = one `Publish` per notification, the paper's
    /// setting; `> 1` groups them into `PublishBatch` messages that travel
    /// the brokers' batch matching path end to end).  The average
    /// publication rate is unchanged: a batch of `n` is published every
    /// `n × publish_interval`.
    pub publish_batch: usize,
    /// Per-link delay.
    pub link_delay: DelayModel,
    /// Total simulated time.
    pub horizon: SimTime,
    /// Seed for delays and the random walk / publication locations.
    pub seed: u64,
}

impl Default for LogicalScenario {
    fn default() -> Self {
        Self {
            scheme: LogicalScheme::LocationDependent(AdaptivityPlan::global_sub_unsub(4)),
            movement_graph: MovementGraph::grid(4, 4),
            brokers: 5,
            producers: 2,
            residence: SimDuration::from_secs(1),
            publish_interval: SimDuration::from_millis(100),
            publish_batch: 1,
            link_delay: DelayModel::constant_millis(5),
            horizon: SimTime::from_secs(20),
            seed: 42,
        }
    }
}

/// Result of a logical-mobility run.
#[derive(Debug, Clone, PartialEq)]
pub struct LogicalOutcome {
    /// Notifications delivered to the consumer.
    pub delivered: usize,
    /// Total messages transmitted over links (notifications + admin), the
    /// quantity plotted in Figure 9.
    pub total_messages: u64,
    /// Per-second samples of the cumulative total message count
    /// (`(seconds, total)`), the Figure 9 series.
    pub message_series: Vec<(u64, u64)>,
    /// Virtual arrival times of deliveries for the consumer's location at the
    /// time of delivery (used to measure blackouts for Figure 3).
    pub delivery_times: Vec<SimTime>,
    /// The consumer's location-change times.
    pub move_times: Vec<SimTime>,
}

/// Runs a logical-mobility scenario and samples the cumulative message count
/// once per simulated second.
pub fn run_logical(params: &LogicalScenario) -> LogicalOutcome {
    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(params.seed);

    let strategy = match params.scheme {
        LogicalScheme::Flooding => RoutingStrategyKind::Flooding,
        _ => RoutingStrategyKind::Covering,
    };
    let config = BrokerConfig::default()
        .with_strategy(strategy)
        .with_movement_graph(params.movement_graph.clone())
        .with_relocation_timeout(SimDuration::from_secs(30));
    let topo = Topology::line(params.brokers);
    let mut sys = SystemBuilder::new(&topo)
        .config(config)
        .link_delay(params.link_delay)
        .seed(params.seed)
        .build()
        .unwrap();

    // Consumer: a random walk over the movement graph, one step per residence
    // period.
    let start = LocationId(0);
    let steps = (params.horizon.as_micros() / params.residence.as_micros().max(1)) as usize + 2;
    let itinerary = rebeca_location::Itinerary::random_walk(
        &params.movement_graph,
        start,
        steps,
        params.residence.as_micros(),
        &mut rng,
    );
    let (mode, plan) = match &params.scheme {
        LogicalScheme::LocationDependent(plan) => {
            (LogicalMobilityMode::LocationDependent, plan.clone())
        }
        LogicalScheme::ManualSubUnsub => (
            LogicalMobilityMode::ManualSubUnsub { vicinity: 0 },
            AdaptivityPlan::global_sub_unsub(params.brokers),
        ),
        LogicalScheme::Flooding => (
            LogicalMobilityMode::ManualSubUnsub { vicinity: 0 },
            AdaptivityPlan::flooding(params.brokers),
        ),
    };
    let mut consumer_script = vec![
        (
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(0).unwrap(),
            },
        ),
        (
            SimTime::from_millis(2),
            ClientAction::LocSubscribe {
                template: parking_template(),
                plan,
                location: start,
            },
        ),
    ];
    let mut move_times = Vec::new();
    for (at_micros, location) in itinerary.change_times() {
        let at = SimTime::from_micros(at_micros.max(3_000));
        move_times.push(at);
        consumer_script.push((at, ClientAction::SetLocation(location)));
    }
    sys.add_client(CONSUMER, mode, &[0], consumer_script)
        .unwrap();

    // Producers at the far broker, each publishing to a uniformly random
    // location (one of the paper's explicitly conservative assumptions).
    let far = params.brokers - 1;
    let locations: Vec<LocationId> = params.movement_graph.space().ids().collect();
    for p in 0..params.producers {
        let id = ClientId::new(100 + p as u32);
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(far).unwrap(),
            },
        )];
        let mut t = SimTime::from_millis(40 + p as u64 * 7);
        let mut spot = 0i64;
        let batch_size = params.publish_batch.max(1);
        while t < params.horizon {
            let mut batch = Vec::with_capacity(batch_size);
            for _ in 0..batch_size {
                let location = locations[rng.gen_range(0..locations.len())];
                batch.push(vacancy_at(location, spot));
                spot += 1;
            }
            let action = if batch_size == 1 {
                ClientAction::Publish(batch.pop().expect("one notification"))
            } else {
                ClientAction::PublishBatch(batch)
            };
            script.push((t, action));
            t += params.publish_interval.saturating_mul(batch_size as u64);
        }
        sys.add_client(id, LogicalMobilityMode::LocationDependent, &[far], script)
            .unwrap();
    }

    // Run second by second, sampling the cumulative link-message count.
    let mut message_series = Vec::new();
    let seconds = params.horizon.as_micros() / 1_000_000;
    for s in 1..=seconds {
        sys.run_until(SimTime::from_secs(s));
        message_series.push((s, sys.total_messages()));
    }
    sys.run_until(params.horizon);

    let client = sys.client(CONSUMER).unwrap();
    LogicalOutcome {
        delivered: client.log().len(),
        total_messages: sys.total_messages(),
        message_series,
        delivery_times: client.delivery_times().iter().map(|(t, _)| *t).collect(),
        move_times,
    }
}

/// Parameters of the relocation-churn scenario: a whole population of
/// mobile consumers on a broker line, each relocating once mid-stream while
/// a producer publishes round-robin over subscription groups.  This is the
/// mobility engine's end-to-end stress load (durable counterpart appends,
/// relocation floods, batched replays) and the workload behind
/// `BENCH_mobility.json`.
#[derive(Debug, Clone)]
pub struct ChurnScenario {
    /// Number of mobile consumers.
    pub clients: usize,
    /// Number of distinct subscription groups (each notification matches
    /// exactly `clients / groups` consumers).
    pub groups: usize,
    /// Brokers in the line topology (the last one hosts the producer).
    pub brokers: usize,
    /// Number of publications, round-robin over the groups.
    pub publications: u64,
    /// Gap between publications.
    pub publish_interval: SimDuration,
    /// Whether every consumer relocates once (staggered over ~200 ms).
    pub relocate: bool,
    /// Broker-side drain interval (`None` routes every transit notification
    /// immediately).
    pub drain_interval: Option<SimDuration>,
    /// Per-link delay.
    pub link_delay: DelayModel,
    /// Simulation seed.
    pub seed: u64,
    /// When set, the outcome additionally audits every consumer log for
    /// lost and duplicated publications (linear in clients × publications;
    /// leave off inside timed benchmark loops).
    pub verify: bool,
}

impl Default for ChurnScenario {
    fn default() -> Self {
        Self {
            clients: 2_000,
            groups: 50,
            brokers: 6,
            publications: 200,
            publish_interval: SimDuration::from_millis(1),
            relocate: true,
            drain_interval: None,
            link_delay: DelayModel::constant_millis(1),
            seed: 29,
            verify: false,
        }
    }
}

/// Result of a relocation-churn run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChurnOutcome {
    /// Deliveries that reached consumers.
    pub delivered: u64,
    /// Deliveries the scenario owes its consumers.
    pub expected: u64,
    /// Publications a consumer never received (audited only with
    /// [`ChurnScenario::verify`]; completeness must always hold).
    pub lost: u64,
    /// Publications a consumer received more than once (audited only with
    /// [`ChurnScenario::verify`]).  A small number is inherent to the
    /// simulator's hand-over model: a delivery in flight on the old client
    /// link at the instant of the move is recorded by the client *and* —
    /// when the new border broker lies downstream of the old one — held and
    /// re-delivered at the new broker (the same bounded race the flooding
    /// hand-over test documents).
    pub duplicated: u64,
    /// Notifications replayed from virtual counterparts.
    pub replayed: u64,
    /// Total messages transmitted over links.
    pub total_messages: u64,
    /// Relocation-timeout guards still alive at the end (must be 0: the tag
    /// map is reclaimed per settled relocation).
    pub leaked_timeout_guards: usize,
}

/// The subscription of churn group `g`.
fn churn_filter(g: usize) -> Filter {
    Filter::new()
        .with("service", Constraint::Eq("telemetry".into()))
        .with("group", Constraint::Eq(Value::Int(g as i64)))
}

/// Runs the relocation-churn scenario.
pub fn run_churn(params: &ChurnScenario) -> ChurnOutcome {
    assert!(params.brokers >= 3, "need at least producer + two homes");
    assert!(params.clients >= params.groups && params.groups > 0);
    let config = BrokerConfig::default()
        .with_strategy(RoutingStrategyKind::Covering)
        .with_movement_graph(MovementGraph::paper_example())
        .with_relocation_timeout(SimDuration::from_secs(60))
        .with_drain_interval(params.drain_interval);
    let topo = Topology::line(params.brokers);
    let mut sys = SystemBuilder::new(&topo)
        .config(config)
        .link_delay(params.link_delay)
        .seed(params.seed)
        .build()
        .unwrap();

    // Consumers spread over the brokers before the producer's; each one
    // relocates to the neighbouring home broker, staggered over ~200 ms so
    // relocations overlap the publication stream.
    let homes = params.brokers - 1;
    for i in 0..params.clients {
        let id = ClientId::new(10 + i as u32);
        let group = i % params.groups;
        let home = i % homes;
        let target = (home + 1) % homes;
        let mut script = vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(home).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(churn_filter(group)),
            ),
        ];
        let mut reachable = vec![home];
        if params.relocate {
            if target != home {
                reachable.push(target);
            }
            script.push((
                SimTime::from_millis(120 + (i % 211) as u64),
                ClientAction::MoveTo {
                    broker: sys.broker_node(target).unwrap(),
                },
            ));
        }
        sys.add_client(
            id,
            LogicalMobilityMode::LocationDependent,
            &reachable,
            script,
        )
        .unwrap();
    }

    // Producer at the far end, publishing round-robin over the groups.
    let producer = ClientId::new(2);
    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(params.brokers - 1).unwrap(),
        },
    )];
    for i in 0..params.publications {
        let at = SimTime::from_millis(50) + params.publish_interval.saturating_mul(i);
        let notification = Notification::builder()
            .attr("service", "telemetry")
            .attr("group", (i as usize % params.groups) as i64)
            .attr("reading", i as i64)
            .build();
        script.push((at, ClientAction::Publish(notification)));
    }
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[params.brokers - 1],
        script,
    )
    .unwrap();

    let horizon = SimTime::from_millis(50)
        + params
            .publish_interval
            .saturating_mul(params.publications + 1)
        + SimDuration::from_secs(3);
    sys.run_until(horizon);

    let leaked_timeout_guards = (0..sys.broker_count())
        .map(|b| sys.broker(b).unwrap().timeout_tag_count())
        .sum();
    // Group g holds every client index ≡ g (mod groups); publication i goes
    // to group i mod groups.
    let group_size = |g: usize| -> u64 {
        (params.clients / params.groups + usize::from(g < params.clients % params.groups)) as u64
    };
    let expected = (0..params.publications)
        .map(|i| group_size(i as usize % params.groups))
        .sum();
    let (mut lost, mut duplicated) = (0u64, 0u64);
    if params.verify {
        for i in 0..params.clients {
            let id = ClientId::new(10 + i as u32);
            let group = i % params.groups;
            let log = sys.client_log(id).unwrap();
            // Publication j (publisher_seq j + 1) goes to group j mod groups.
            let expected_seqs = (0..params.publications)
                .filter(|j| (*j as usize) % params.groups == group)
                .map(|j| j + 1);
            let received = log.distinct_publisher_seqs(producer);
            lost += expected_seqs.filter(|s| !received.contains(s)).count() as u64;
            duplicated += log.duplicate_publications(producer) as u64;
        }
    }
    ChurnOutcome {
        delivered: sys.metrics().counter("client.delivered"),
        expected,
        lost,
        duplicated,
        replayed: sys.metrics().counter("mobility.replayed"),
        total_messages: sys.total_messages(),
        leaked_timeout_guards,
    }
}

/// Parameters of the relocation-storm scenario: spatially clustered
/// subscription groups on a longer broker line, zipf-skewed group
/// popularity, and every consumer relocating within its cluster inside a
/// short window.  The setting where covering-scoped relocation floods pay
/// off: a relocation's `Relocate` control messages only need to travel
/// within the group's cluster, while the unscoped protocol floods the whole
/// line.
#[derive(Debug, Clone)]
pub struct StormScenario {
    /// Number of mobile consumers.
    pub clients: usize,
    /// Number of distinct subscription groups.  Group `g`'s consumers all
    /// live on the adjacent broker pair `{g % (homes-1), g % (homes-1) + 1}`.
    pub groups: usize,
    /// Brokers in the line topology (the last one hosts the producer).
    pub brokers: usize,
    /// Number of publications, zipf-distributed over the groups.
    pub publications: u64,
    /// Gap between publications.
    pub publish_interval: SimDuration,
    /// Zipf exponent of group popularity (consumers and publications).
    pub zipf_exponent: f64,
    /// Whether relocation floods are scoped to covering links (the broker
    /// default) or flood every broker link (the unscoped oracle baseline).
    pub scoped_relocation: bool,
    /// Per-link delay.
    pub link_delay: DelayModel,
    /// Simulation seed.
    pub seed: u64,
    /// When set, the outcome audits every consumer log for lost and
    /// duplicated publications.
    pub verify: bool,
}

impl Default for StormScenario {
    fn default() -> Self {
        Self {
            clients: 400,
            groups: 30,
            brokers: 13,
            publications: 150,
            publish_interval: SimDuration::from_millis(1),
            zipf_exponent: 1.0,
            scoped_relocation: true,
            link_delay: DelayModel::constant_millis(1),
            seed: 41,
            verify: false,
        }
    }
}

/// Result of a relocation-storm run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StormOutcome {
    /// Deliveries that reached consumers.
    pub delivered: u64,
    /// Deliveries the scenario owes its consumers.
    pub expected: u64,
    /// Publications a consumer never received (audited only with
    /// [`StormScenario::verify`]).
    pub lost: u64,
    /// Publications a consumer received more than once (audited only with
    /// [`StormScenario::verify`]; the same bounded hand-over sliver as
    /// [`ChurnOutcome::duplicated`]).
    pub duplicated: u64,
    /// Notifications replayed from virtual counterparts.
    pub replayed: u64,
    /// Broker-to-broker `Subscribe` + `Unsubscribe` forwards.
    pub subscribe_messages: u64,
    /// Broker-to-broker `Relocate` floods.
    pub relocate_messages: u64,
    /// Broker-to-broker `Fetch` requests.
    pub fetch_messages: u64,
    /// All broker-to-broker subscription-control messages
    /// (subscribe + unsubscribe + relocate + fetch).
    pub control_messages: u64,
    /// Total messages transmitted over links.
    pub total_messages: u64,
    /// Relocation-timeout guards still alive at the end (must be 0).
    pub leaked_timeout_guards: usize,
}

/// The deterministic group assignment of storm consumer `i`.
fn storm_groups(params: &StormScenario) -> Vec<usize> {
    let mut zipf =
        crate::workload::ZipfSampler::new(params.groups, params.zipf_exponent, params.seed);
    (0..params.clients).map(|_| zipf.sample()).collect()
}

/// The deterministic publication groups of a storm run.
fn storm_publication_groups(params: &StormScenario) -> Vec<usize> {
    let mut zipf = crate::workload::ZipfSampler::new(
        params.groups,
        params.zipf_exponent,
        params.seed.wrapping_add(1),
    );
    (0..params.publications).map(|_| zipf.sample()).collect()
}

/// Runs the relocation-storm scenario.
pub fn run_storm(params: &StormScenario) -> StormOutcome {
    assert!(
        params.brokers >= 4,
        "need producer + at least three home brokers"
    );
    assert!(params.clients > 0 && params.groups > 0);
    let config = BrokerConfig::default()
        .with_strategy(RoutingStrategyKind::Covering)
        .with_movement_graph(MovementGraph::paper_example())
        .with_relocation_timeout(SimDuration::from_secs(60))
        .with_scoped_relocation(params.scoped_relocation);
    let topo = Topology::line(params.brokers);
    let mut sys = SystemBuilder::new(&topo)
        .config(config)
        .link_delay(params.link_delay)
        .seed(params.seed)
        .build()
        .unwrap();

    // Consumers of group g are clustered on the adjacent home-broker pair
    // {base, base+1}; each relocates to the other broker of its pair inside
    // a ~70 ms window, so floods overlap heavily ("storm").
    let homes = params.brokers - 1;
    let groups = storm_groups(params);
    for (i, &group) in groups.iter().enumerate() {
        let id = ClientId::new(10 + i as u32);
        let base = group % (homes - 1);
        let home = base + i % 2;
        let target = base + (i + 1) % 2;
        let script = vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(home).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(crate::workload::group_filter(group)),
            ),
            (
                SimTime::from_millis(120 + (i % 67) as u64),
                ClientAction::MoveTo {
                    broker: sys.broker_node(target).unwrap(),
                },
            ),
        ];
        sys.add_client(
            id,
            LogicalMobilityMode::LocationDependent,
            &[home, target],
            script,
        )
        .unwrap();
    }

    // Producer at the far end; publication popularity follows subscription
    // popularity (an independent zipf stream over the same groups).
    let producer = ClientId::new(2);
    let pub_groups = storm_publication_groups(params);
    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(params.brokers - 1).unwrap(),
        },
    )];
    for (i, &g) in pub_groups.iter().enumerate() {
        let at = SimTime::from_millis(50) + params.publish_interval.saturating_mul(i as u64);
        script.push((
            at,
            ClientAction::Publish(crate::workload::group_notification(g, i as i64)),
        ));
    }
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[params.brokers - 1],
        script,
    )
    .unwrap();

    let horizon = SimTime::from_millis(50)
        + params
            .publish_interval
            .saturating_mul(params.publications + 1)
        + SimDuration::from_secs(3);
    sys.run_until(horizon);

    let leaked_timeout_guards = (0..sys.broker_count())
        .map(|b| sys.broker(b).unwrap().timeout_tag_count())
        .sum();
    let group_size = |g: usize| -> u64 { groups.iter().filter(|&&x| x == g).count() as u64 };
    let expected = pub_groups.iter().map(|&g| group_size(g)).sum();
    let (mut lost, mut duplicated) = (0u64, 0u64);
    if params.verify {
        for (i, &group) in groups.iter().enumerate() {
            let id = ClientId::new(10 + i as u32);
            let log = sys.client_log(id).unwrap();
            // Publication j (publisher_seq j + 1) goes to group
            // pub_groups[j].
            let expected_seqs = pub_groups
                .iter()
                .enumerate()
                .filter(|(_, &g)| g == group)
                .map(|(j, _)| j as u64 + 1);
            let received = log.distinct_publisher_seqs(producer);
            lost += expected_seqs.filter(|s| !received.contains(s)).count() as u64;
            duplicated += log.duplicate_publications(producer) as u64;
        }
    }
    let m = sys.metrics();
    let subscribe_messages = m.counter("broker.tx.subscribe") + m.counter("broker.tx.unsubscribe");
    let relocate_messages = m.counter("broker.tx.relocate");
    let fetch_messages = m.counter("broker.tx.fetch");
    StormOutcome {
        delivered: m.counter("client.delivered"),
        expected,
        lost,
        duplicated,
        replayed: m.counter("mobility.replayed"),
        subscribe_messages,
        relocate_messages,
        fetch_messages,
        control_messages: subscribe_messages + relocate_messages + fetch_messages,
        total_messages: sys.total_messages(),
        leaked_timeout_guards,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relocation_scenario_is_lossless() {
        let outcome = run_physical(&PhysicalScenario::default());
        assert_eq!(outcome.lost, 0);
        assert_eq!(outcome.duplicated, 0);
        assert!(outcome.fifo_preserved);
        assert_eq!(outcome.received, 40);
    }

    #[test]
    fn naive_sign_off_loses_messages() {
        let outcome = run_physical(&PhysicalScenario {
            handoff: HandoffKind::NaiveWithSignOff,
            ..PhysicalScenario::default()
        });
        assert!(outcome.lost > 0);
    }

    #[test]
    fn naive_silent_handoff_duplicates_under_flooding() {
        let outcome = run_physical(&PhysicalScenario {
            strategy: RoutingStrategyKind::Flooding,
            handoff: HandoffKind::NaiveSilent,
            ..PhysicalScenario::default()
        });
        assert!(outcome.duplicated > 0);
    }

    #[test]
    fn batched_publishing_delivers_and_saves_link_messages() {
        let base = LogicalScenario {
            horizon: SimTime::from_secs(5),
            ..LogicalScenario::default()
        };
        let single = run_logical(&base);
        let batched = run_logical(&LogicalScenario {
            publish_batch: 8,
            ..base
        });
        // The batch path must still deliver traffic to the roaming
        // consumer…
        assert!(batched.delivered > 0);
        // …while spending fewer link messages for the same publication
        // rate (batches travel broker-to-broker as one message).
        assert!(batched.total_messages < single.total_messages);
    }

    #[test]
    fn churn_scenario_is_complete_and_leak_free() {
        // 200 publications at 1 ms span t = 50..250 ms, overlapping the
        // relocation window (moves staggered from 120 ms), so counterparts
        // really buffer and replay.
        let outcome = run_churn(&ChurnScenario {
            clients: 60,
            groups: 12,
            verify: true,
            ..ChurnScenario::default()
        });
        assert_eq!(outcome.lost, 0, "relocation churn must lose nothing");
        assert!(
            outcome.duplicated * 50 <= outcome.expected,
            "hand-over duplicates must stay a bounded sliver: {} of {}",
            outcome.duplicated,
            outcome.expected
        );
        assert_eq!(outcome.delivered, outcome.expected + outcome.duplicated);
        assert!(
            outcome.replayed > 0,
            "relocations must exercise the replay path"
        );
        assert_eq!(outcome.leaked_timeout_guards, 0);
    }

    #[test]
    fn churn_draining_reduces_messages_at_equal_deliveries() {
        let base = ChurnScenario {
            clients: 60,
            groups: 60,
            publications: 200,
            relocate: false,
            ..ChurnScenario::default()
        };
        let immediate = run_churn(&base);
        let drained = run_churn(&ChurnScenario {
            drain_interval: Some(SimDuration::from_millis(5)),
            ..base
        });
        assert_eq!(immediate.delivered, immediate.expected);
        assert_eq!(drained.delivered, immediate.delivered);
        assert!(
            drained.total_messages < immediate.total_messages,
            "drained {} vs immediate {}",
            drained.total_messages,
            immediate.total_messages
        );
    }

    #[test]
    fn storm_scenario_is_complete_and_leak_free() {
        let outcome = run_storm(&StormScenario {
            clients: 150,
            groups: 20,
            publications: 150,
            verify: true,
            ..StormScenario::default()
        });
        assert_eq!(outcome.lost, 0, "relocation storm must lose nothing");
        assert!(
            outcome.duplicated * 50 <= outcome.expected,
            "hand-over duplicates must stay a bounded sliver: {} of {}",
            outcome.duplicated,
            outcome.expected
        );
        assert_eq!(outcome.delivered, outcome.expected + outcome.duplicated);
        assert!(
            outcome.replayed > 0,
            "relocations must exercise the replay path"
        );
        assert_eq!(outcome.leaked_timeout_guards, 0);
    }

    #[test]
    fn scoped_relocation_cuts_control_traffic_by_thirty_percent() {
        // Same storm twice, only the flood scope differs.  The unscoped
        // (paper-baseline) protocol forwards every Relocate across every
        // broker link of a 13-broker line; the scoped protocol stops at
        // links without a covering routing entry, so each relocation stays
        // inside its group's two-broker cluster.
        let base = StormScenario {
            clients: 150,
            groups: 20,
            publications: 150,
            verify: true,
            ..StormScenario::default()
        };
        let scoped = run_storm(&base);
        let unscoped = run_storm(&StormScenario {
            scoped_relocation: false,
            ..base
        });
        // Equal deliveries: both runs owe the same publications and lose
        // nothing (duplicates are the usual bounded hand-over sliver).
        assert_eq!(scoped.expected, unscoped.expected);
        assert_eq!(scoped.lost, 0);
        assert_eq!(unscoped.lost, 0);
        assert_eq!(scoped.delivered, scoped.expected + scoped.duplicated);
        assert_eq!(unscoped.delivered, unscoped.expected + unscoped.duplicated);
        // ...at ≥ 30 % fewer broker-to-broker subscription-control messages.
        assert!(
            scoped.control_messages * 10 <= unscoped.control_messages * 7,
            "scoped {} vs unscoped {} control messages",
            scoped.control_messages,
            unscoped.control_messages
        );
        assert_eq!(scoped.leaked_timeout_guards, 0);
        assert_eq!(unscoped.leaked_timeout_guards, 0);
    }

    #[test]
    fn logical_scenario_flooding_costs_more_than_location_dependent() {
        let base = LogicalScenario {
            horizon: SimTime::from_secs(5),
            ..LogicalScenario::default()
        };
        let managed = run_logical(&LogicalScenario {
            scheme: LogicalScheme::LocationDependent(AdaptivityPlan::global_sub_unsub(5)),
            ..base.clone()
        });
        let flooding = run_logical(&LogicalScenario {
            scheme: LogicalScheme::Flooding,
            ..base
        });
        assert!(flooding.total_messages > managed.total_messages);
        assert!(!managed.message_series.is_empty());
        // The cumulative series is non-decreasing.
        assert!(managed.message_series.windows(2).all(|w| w[0].1 <= w[1].1));
    }
}
