//! Broker routing tables.
//!
//! Each broker maintains a routing table whose entries are pairs `(F, L)` of
//! a filter and the link it was received from, denoting that notifications
//! matching `F` are to be forwarded along `L` (Section 2.2 of the paper).

use std::collections::BTreeMap;
use std::fmt;

use rebeca_filter::{Filter, Notification};

/// A routing table mapping destinations (links) to the filters subscribed
/// from that direction.
///
/// The table stores *every* active subscription (with multiplicity), so the
/// routing decision is always exact regardless of which optimization the
/// surrounding [`RoutingEngine`](crate::RoutingEngine) applies to the
/// *forwarding* of administration messages.
#[derive(Debug, Clone, PartialEq)]
pub struct RoutingTable<D> {
    entries: BTreeMap<D, Vec<Filter>>,
}

impl<D: Ord + Clone> Default for RoutingTable<D> {
    fn default() -> Self {
        Self {
            entries: BTreeMap::new(),
        }
    }
}

impl<D: Ord + Clone> RoutingTable<D> {
    /// Creates an empty routing table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an entry `(filter, destination)`.
    pub fn insert(&mut self, filter: Filter, destination: D) {
        self.entries.entry(destination).or_default().push(filter);
    }

    /// Removes **one** instance of the exact filter for the destination.
    /// Returns `true` when an entry was removed.
    pub fn remove(&mut self, filter: &Filter, destination: &D) -> bool {
        if let Some(filters) = self.entries.get_mut(destination) {
            if let Some(pos) = filters.iter().position(|f| f == filter) {
                filters.remove(pos);
                if filters.is_empty() {
                    self.entries.remove(destination);
                }
                return true;
            }
        }
        false
    }

    /// Removes every entry for the destination and returns the filters.
    pub fn remove_destination(&mut self, destination: &D) -> Vec<Filter> {
        self.entries.remove(destination).unwrap_or_default()
    }

    /// Removes every entry (for any destination) covered by `filter` and
    /// returns the removed `(destination, filter)` pairs.
    pub fn remove_covered_by(&mut self, filter: &Filter) -> Vec<(D, Filter)> {
        let mut removed = Vec::new();
        self.entries.retain(|dest, filters| {
            let mut kept = Vec::with_capacity(filters.len());
            for f in filters.drain(..) {
                if filter.covers(&f) {
                    removed.push((dest.clone(), f));
                } else {
                    kept.push(f);
                }
            }
            *filters = kept;
            !filters.is_empty()
        });
        removed
    }

    /// The destinations whose filters match the notification.  The optional
    /// `exclude` destination (usually the link the notification came from)
    /// is never returned.
    pub fn matching_destinations(&self, n: &Notification, exclude: Option<&D>) -> Vec<D> {
        self.entries
            .iter()
            .filter(|(dest, _)| Some(*dest) != exclude)
            .filter(|(_, filters)| filters.iter().any(|f| f.matches(n)))
            .map(|(dest, _)| dest.clone())
            .collect()
    }

    /// The destinations holding at least one filter that *overlaps* the given
    /// filter (used to decide where a new subscription or a fetch request has
    /// to travel).
    pub fn destinations_overlapping(&self, filter: &Filter, exclude: Option<&D>) -> Vec<D> {
        self.entries
            .iter()
            .filter(|(dest, _)| Some(*dest) != exclude)
            .filter(|(_, filters)| filters.iter().any(|f| f.overlaps(filter)))
            .map(|(dest, _)| dest.clone())
            .collect()
    }

    /// The destinations holding at least one filter identical to `filter`.
    pub fn destinations_with_identical(&self, filter: &Filter, exclude: Option<&D>) -> Vec<D> {
        self.entries
            .iter()
            .filter(|(dest, _)| Some(*dest) != exclude)
            .filter(|(_, filters)| filters.iter().any(|f| f == filter))
            .map(|(dest, _)| dest.clone())
            .collect()
    }

    /// All filters currently stored for a destination.
    pub fn filters_for(&self, destination: &D) -> &[Filter] {
        self.entries
            .get(destination)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Iterates over every `(destination, filter)` entry.
    pub fn iter(&self) -> impl Iterator<Item = (&D, &Filter)> {
        self.entries
            .iter()
            .flat_map(|(d, fs)| fs.iter().map(move |f| (d, f)))
    }

    /// All destinations currently present in the table.
    pub fn destinations(&self) -> impl Iterator<Item = &D> {
        self.entries.keys()
    }

    /// Returns `true` when any stored filter (from any destination other than
    /// `exclude`) covers the given filter.
    pub fn is_covered(&self, filter: &Filter, exclude: Option<&D>) -> bool {
        self.entries
            .iter()
            .filter(|(dest, _)| Some(*dest) != exclude)
            .any(|(_, filters)| filters.iter().any(|f| f.covers(filter)))
    }

    /// Returns `true` when any stored filter from any destination equals the
    /// given filter.
    pub fn contains_identical(&self, filter: &Filter, exclude: Option<&D>) -> bool {
        !self
            .destinations_with_identical(filter, exclude)
            .is_empty()
    }

    /// Total number of `(filter, destination)` entries.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// `true` when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<D: Ord + Clone + fmt::Debug> fmt::Display for RoutingTable<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (dest, filters) in &self.entries {
            for filter in filters {
                writeln!(f, "{filter}  ->  {dest:?}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_filter::Constraint;

    fn parking(max: i64) -> Filter {
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(max.into()))
    }

    fn vacancy(cost: i64) -> Notification {
        Notification::builder()
            .attr("service", "parking")
            .attr("cost", cost)
            .build()
    }

    #[test]
    fn insert_and_route() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(10), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.matching_destinations(&vacancy(2), None), vec![1, 2]);
        assert_eq!(t.matching_destinations(&vacancy(5), None), vec![2]);
        assert!(t.matching_destinations(&vacancy(20), None).is_empty());
    }

    #[test]
    fn exclusion_of_the_source_link() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(3), 2);
        assert_eq!(t.matching_destinations(&vacancy(1), Some(&1)), vec![2]);
    }

    #[test]
    fn remove_only_one_instance() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(3), 1);
        assert!(t.remove(&parking(3), &1));
        assert_eq!(t.len(), 1);
        assert!(t.remove(&parking(3), &1));
        assert!(t.is_empty());
        assert!(!t.remove(&parking(3), &1));
    }

    #[test]
    fn remove_destination_drops_all_its_filters() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(5), 1);
        t.insert(parking(5), 2);
        let removed = t.remove_destination(&1);
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_covered_by_prunes_across_destinations() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(5), 2);
        t.insert(parking(20), 3);
        let removed = t.remove_covered_by(&parking(10));
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.filters_for(&3).len(), 1);
    }

    #[test]
    fn covering_and_identity_queries() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(10), 1);
        assert!(t.is_covered(&parking(3), None));
        assert!(!t.is_covered(&parking(20), None));
        assert!(!t.is_covered(&parking(3), Some(&1)));
        assert!(t.contains_identical(&parking(10), None));
        assert!(!t.contains_identical(&parking(3), None));
    }

    #[test]
    fn overlapping_destinations() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(10), 1);
        let weather = Filter::new().with("service", Constraint::Eq("weather".into()));
        t.insert(weather.clone(), 2);
        assert_eq!(t.destinations_overlapping(&parking(3), None), vec![1]);
        assert_eq!(t.destinations_overlapping(&weather, None), vec![2]);
    }

    #[test]
    fn iteration_and_destinations() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 2);
        t.insert(parking(5), 1);
        let dests: Vec<u32> = t.destinations().copied().collect();
        assert_eq!(dests, vec![1, 2]);
        assert_eq!(t.iter().count(), 2);
    }
}
