//! Simulation metrics: named counters and time-series sampling.
//!
//! The experiment harness reproduces the paper's Figure 9 (total number of
//! messages over time) by periodically sampling counters; individual
//! protocols additionally record semantic counters such as
//! `"notification.delivered"` or `"admin.location_update"`.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::time::SimTime;

/// A named-counter store with optional time-series snapshots.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    counters: BTreeMap<String, u64>,
    series: Vec<Sample>,
}

/// One time-series sample: the value of a counter at a point in virtual time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Sample {
    /// When the sample was taken.
    pub time: SimTime,
    /// Counter name.
    pub counter: String,
    /// Counter value at that time.
    pub value: u64,
}

impl Metrics {
    /// Creates an empty metrics store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Increments a counter by one.
    pub fn incr(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Adds `amount` to a counter.
    pub fn add(&mut self, name: &str, amount: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += amount;
    }

    /// The current value of a counter (0 when never written).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Sum of every counter whose name starts with the given prefix.
    pub fn counter_prefix_sum(&self, prefix: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.starts_with(prefix))
            .map(|(_, v)| *v)
            .sum()
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Records the current value of `counter` as a time-series sample.
    pub fn sample(&mut self, time: SimTime, counter: &str) {
        let value = self.counter(counter);
        self.series.push(Sample {
            time,
            counter: counter.to_string(),
            value,
        });
    }

    /// Records the current prefix-sum of `prefix` as a time-series sample
    /// stored under the prefix name.
    pub fn sample_prefix(&mut self, time: SimTime, prefix: &str) {
        let value = self.counter_prefix_sum(prefix);
        self.series.push(Sample {
            time,
            counter: prefix.to_string(),
            value,
        });
    }

    /// The recorded samples for one counter, in recording order.
    pub fn series(&self, counter: &str) -> Vec<(SimTime, u64)> {
        self.series
            .iter()
            .filter(|s| s.counter == counter)
            .map(|s| (s.time, s.value))
            .collect()
    }

    /// All recorded samples.
    pub fn all_samples(&self) -> &[Sample] {
        &self.series
    }

    /// Resets every counter and sample.
    pub fn reset(&mut self) {
        self.counters.clear();
        self.series.clear();
    }

    /// Merges another metrics store into this one (counters are added,
    /// samples appended).
    pub fn merge(&mut self, other: &Metrics) {
        for (name, value) in &other.counters {
            *self.counters.entry(name.clone()).or_insert(0) += value;
        }
        self.series.extend(other.series.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let mut m = Metrics::new();
        m.incr("msg");
        m.incr("msg");
        m.add("msg", 3);
        assert_eq!(m.counter("msg"), 5);
        assert_eq!(m.counter("missing"), 0);
    }

    #[test]
    fn prefix_sums_aggregate_related_counters() {
        let mut m = Metrics::new();
        m.add("admin.sub", 2);
        m.add("admin.unsub", 3);
        m.add("notification.delivered", 7);
        assert_eq!(m.counter_prefix_sum("admin."), 5);
        assert_eq!(m.counter_prefix_sum("notification."), 7);
        assert_eq!(m.counter_prefix_sum(""), 12);
    }

    #[test]
    fn time_series_sampling() {
        let mut m = Metrics::new();
        m.add("msg", 10);
        m.sample(SimTime::from_secs(1), "msg");
        m.add("msg", 5);
        m.sample(SimTime::from_secs(2), "msg");
        assert_eq!(
            m.series("msg"),
            vec![(SimTime::from_secs(1), 10), (SimTime::from_secs(2), 15)]
        );
        assert_eq!(m.all_samples().len(), 2);
    }

    #[test]
    fn prefix_sampling_records_totals() {
        let mut m = Metrics::new();
        m.add("admin.sub", 1);
        m.add("admin.unsub", 2);
        m.sample_prefix(SimTime::from_secs(1), "admin.");
        assert_eq!(m.series("admin."), vec![(SimTime::from_secs(1), 3)]);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new();
        m.incr("a");
        m.sample(SimTime::ZERO, "a");
        m.reset();
        assert_eq!(m.counter("a"), 0);
        assert!(m.all_samples().is_empty());
    }

    #[test]
    fn merge_adds_counters_and_appends_samples() {
        let mut a = Metrics::new();
        a.add("x", 1);
        let mut b = Metrics::new();
        b.add("x", 2);
        b.add("y", 3);
        b.sample(SimTime::from_secs(1), "y");
        a.merge(&b);
        assert_eq!(a.counter("x"), 3);
        assert_eq!(a.counter("y"), 3);
        assert_eq!(a.all_samples().len(), 1);
    }

    #[test]
    fn counters_iterate_in_name_order() {
        let mut m = Metrics::new();
        m.incr("z");
        m.incr("a");
        let names: Vec<&str> = m.counters().map(|(k, _)| k).collect();
        assert_eq!(names, vec!["a", "z"]);
    }
}
