//! Acceptance tests of the retention subsystem: time-aware subscriptions
//! over the segment-rotated retained-publication store.
//!
//! The headline scenario is the one the paper's relocation protocol cannot
//! cover: a client detaches, stays away long enough that it misses more
//! than a hundred matching publications, and reattaches *at a different
//! broker* with a `since`-scoped subscription.  The history replay must
//! close the gap exactly once, merged in order with live traffic — the
//! delivery log must be byte-identical to a run that never detached.

use rebeca_broker::ClientId;
use rebeca_core::{BrokerConfig, MobilitySystem, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_retain::RetentionConfig;
use rebeca_sim::{DelayModel, SimDuration, SimTime, Topology};

const CONSUMER: ClientId = ClientId::new(1);
const PRODUCER: ClientId = ClientId::new(2);

/// Publications delivered live before the detach.
const PRE: u64 = 20;
/// Matching publications published while the consumer is away (the
/// acceptance floor is 100).
const MISSED: u64 = 110;
/// Publications after the reattach: one inside the open history-gather
/// window (exercising the hold-and-merge path) plus a live tail.
const TAIL: u64 = 9;
const TOTAL: u64 = PRE + MISSED + 1 + TAIL;

/// The consumer detaches at t = 1 s and the offline publications start at
/// t = 1.5 s; any instant in the quiet gap is a correct window start.
const SINCE_MICROS: u64 = 1_250_000;

fn parking_filter() -> Filter {
    Filter::new().with("service", Constraint::Eq("parking".into()))
}

fn vacancy(i: u64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("spot", i as i64)
        .build()
}

fn retention_config() -> BrokerConfig {
    BrokerConfig::default()
        // Doubles as the history-gather timeout; short keeps the test fast.
        .with_relocation_timeout(SimDuration::from_secs(1))
        .with_retention(Some(RetentionConfig {
            segment_max_records: 32,
            max_segments: 64,
            retention_window_micros: 0,
        }))
}

fn retention_system(config: BrokerConfig) -> MobilitySystem {
    SystemBuilder::new(&Topology::line(3))
        .config(config)
        .link_delay(DelayModel::constant_millis(2))
        .seed(42)
        .build()
        .expect("non-empty topology")
}

/// Runs the scenario on a fixed virtual-time schedule; `detach` switches
/// between the detach/reattach run and the never-detached oracle.  The
/// publication timeline is identical either way, so the two delivery logs
/// are comparable byte for byte.
fn drive(detach: bool) -> MobilitySystem {
    let mut sys = retention_system(retention_config());
    let consumer = sys.connect(CONSUMER, 0).expect("consumer connects");
    consumer
        .subscribe(&mut sys, parking_filter())
        .expect("subscribe");
    let producer = sys.connect(PRODUCER, 2).expect("producer connects");
    sys.run_until(SimTime::from_millis(100));

    // Phase 1: live deliveries at broker 0.
    for i in 1..=PRE {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    sys.run_until(SimTime::from_millis(1_000));

    if detach {
        consumer.detach(&mut sys).expect("detach");
    }
    sys.run_until(SimTime::from_millis(1_500));

    // Phase 2: published while the consumer is away — only the origin
    // broker's retention store sees them through to the reattached client.
    for i in PRE + 1..=PRE + MISSED {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    sys.run_until(SimTime::from_millis(3_000));

    if detach {
        // Reattach at a *different* broker and close the gap from history.
        consumer.reattach(&mut sys, 1).expect("reattach");
        sys.run_until(SimTime::from_millis(3_100));
        consumer
            .subscribe_since(&mut sys, parking_filter(), SINCE_MICROS)
            .expect("subscribe_since");
    }
    sys.run_until(SimTime::from_millis(3_500));

    // Phase 3: one publication inside the open history-gather window (the
    // session closes at ~4.1 s): routed live, held, merged exactly once.
    producer
        .publish(&mut sys, vacancy(PRE + MISSED + 1))
        .expect("publish");
    sys.run_until(SimTime::from_millis(6_000));

    // Phase 4: plain live tail after the session has closed.
    for i in PRE + MISSED + 2..=TOTAL {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    sys.run_until(SimTime::from_millis(8_000));
    sys
}

/// The acceptance criterion: detach, miss >100 matching publications,
/// reattach elsewhere with a `since`-scoped subscription — and the
/// delivery log is byte-identical to the never-detached oracle.
#[test]
fn reattach_with_subscribe_since_matches_never_detached_oracle() {
    let with_gap = drive(true);
    let oracle = drive(false);

    let gap_log = with_gap.client_log(CONSUMER).unwrap();
    let oracle_log = oracle.client_log(CONSUMER).unwrap();

    assert!(gap_log.is_clean(), "violations: {:?}", gap_log.violations());
    assert!(oracle_log.is_clean());
    assert_eq!(oracle_log.len(), TOTAL as usize);
    assert_eq!(
        gap_log.distinct_publisher_seqs(PRODUCER),
        (1..=TOTAL).collect::<Vec<u64>>(),
        "history must close the offline gap exactly once"
    );
    assert_eq!(
        gap_log, oracle_log,
        "detach/reattach-with-history and never-detached runs must record \
         identical deliveries"
    );
    // Literally byte-identical, not just structurally equal.
    assert_eq!(
        format!("{gap_log:?}").into_bytes(),
        format!("{oracle_log:?}").into_bytes()
    );

    // The machinery actually ran: a session opened and closed, remote
    // retained history was replayed, and the in-window live publication
    // went through the hold-and-merge path.
    let m = with_gap.metrics();
    assert_eq!(m.counter("retain.history_session_opened"), 1);
    assert_eq!(m.counter("retain.history_session_closed"), 1);
    assert!(
        m.counter("retain.replayed") >= MISSED,
        "remote broker replayed its retained slice"
    );
    assert!(
        m.counter("retain.history_held") >= 1,
        "the in-window live delivery was held and merged"
    );
}

/// Retention surfaces in the status plane, and the broker-path store
/// honours the segment cap: with 8-record segments and at most 3 segments,
/// 100 appends must leave exactly 2 archived + 1 live segment.
#[test]
fn status_reports_capped_segment_rotation() {
    let config = BrokerConfig::default().with_retention(Some(RetentionConfig {
        segment_max_records: 8,
        max_segments: 3,
        retention_window_micros: 0,
    }));
    let mut sys = retention_system(config);
    let consumer = sys.connect(CONSUMER, 0).expect("consumer connects");
    consumer
        .subscribe(&mut sys, parking_filter())
        .expect("subscribe");
    let producer = sys.connect(PRODUCER, 2).expect("producer connects");
    sys.run_until(SimTime::from_millis(100));
    for i in 1..=100u64 {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    sys.run_until(SimTime::from_secs(2));

    let status = sys.status();
    let b2 = status
        .brokers
        .iter()
        .find(|b| b.broker == 2)
        .expect("broker 2 reports");
    // 100 appends in 8-record segments: 12 rotations, the cap keeps the
    // newest 2 archived segments (16 records) plus 4 in the live tail.
    assert_eq!(b2.retained_segments, 3);
    assert_eq!(b2.retained_publications, 20);
    assert!(
        b2.oldest_retained_age_ms.is_some(),
        "a non-empty store reports its oldest record's age"
    );
    // The consumer-only brokers retain nothing (origin-broker retention).
    let b0 = status.brokers.iter().find(|b| b.broker == 0).unwrap();
    assert_eq!(b0.retained_publications, 0);
}

/// Time-based expiry through the broker path drops whole archived
/// segments — never a partial segment, never the live tail.
#[test]
fn expiry_drops_whole_archived_segments_through_the_broker() {
    let config = BrokerConfig::default().with_retention(Some(RetentionConfig {
        segment_max_records: 8,
        max_segments: 64,
        retention_window_micros: 1_000_000,
    }));
    let mut sys = retention_system(config);
    let consumer = sys.connect(CONSUMER, 0).expect("consumer connects");
    consumer
        .subscribe(&mut sys, parking_filter())
        .expect("subscribe");
    let producer = sys.connect(PRODUCER, 2).expect("producer connects");
    sys.run_until(SimTime::from_millis(100));
    // 20 appends: 2 sealed segments of 8 plus 4 live records.
    for i in 1..=20u64 {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    sys.run_until(SimTime::from_millis(200));

    // Let both archived segments age past the 1 s window, then append one
    // more record — expiry runs on the append path.
    sys.run_until(SimTime::from_secs(3));
    producer.publish(&mut sys, vacancy(21)).expect("publish");
    sys.run_until(SimTime::from_secs(4));

    let status = sys.status();
    let b2 = status
        .brokers
        .iter()
        .find(|b| b.broker == 2)
        .expect("broker 2 reports");
    // The two sealed segments aged out wholesale; the live tail (4 old
    // records + the fresh one) is never expired.
    assert_eq!(b2.retained_segments, 1);
    assert_eq!(b2.retained_publications, 5);
}

/// Lease-based counterpart GC: a client that detaches and never returns
/// has its virtual counterpart (and the buffered deliveries behind it)
/// reclaimed once the lease expires, visible in the status plane.
#[test]
fn expired_lease_reaps_the_abandoned_counterpart() {
    let config = BrokerConfig::default()
        .with_counterpart_lease(Some(SimDuration::from_millis(500)))
        .with_retention(Some(RetentionConfig::default()));
    let mut sys = retention_system(config);
    let consumer = sys.connect(CONSUMER, 0).expect("consumer connects");
    consumer
        .subscribe(&mut sys, parking_filter())
        .expect("subscribe");
    let producer = sys.connect(PRODUCER, 2).expect("producer connects");
    sys.run_until(SimTime::from_millis(100));
    for i in 1..=5u64 {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    sys.run_until(SimTime::from_millis(500));

    consumer.detach(&mut sys).expect("detach");
    sys.run_until(SimTime::from_millis(600));
    let status = sys.status();
    let b0 = status.brokers.iter().find(|b| b.broker == 0).unwrap();
    assert_eq!(b0.counterparts, 1, "detach opens a virtual counterpart");
    assert_eq!(b0.expired_leases, 0);

    // Published into the void: buffered by the counterpart of a client
    // that will never come back.
    for i in 6..=10u64 {
        producer.publish(&mut sys, vacancy(i)).expect("publish");
    }
    sys.run_until(SimTime::from_millis(700));
    let status = sys.status();
    let b0 = status.brokers.iter().find(|b| b.broker == 0).unwrap();
    assert!(
        b0.buffered_deliveries > 0,
        "counterpart buffers while leased"
    );

    // Let the lease sweep fire.
    sys.run_until(SimTime::from_secs(5));
    let status = sys.status();
    let b0 = status.brokers.iter().find(|b| b.broker == 0).unwrap();
    assert_eq!(b0.counterparts, 0, "expired counterpart is reclaimed");
    assert_eq!(b0.expired_leases, 1, "the expiry is counted");
    assert_eq!(b0.buffered_deliveries, 0, "its buffer is released");

    // The client's pre-detach log is untouched by the GC.
    let log = sys.client_log(CONSUMER).unwrap();
    assert!(log.is_clean());
    assert_eq!(log.len(), 5);
}

/// `subscribe_since` on brokers without a retention store degrades to a
/// plain subscription: no history, but live delivery stays exactly-once
/// (in-window deliveries ride through the hold-and-merge path).
#[test]
fn subscribe_since_without_retention_degrades_to_live_only() {
    let config = BrokerConfig::default().with_relocation_timeout(SimDuration::from_secs(1));
    let mut sys = retention_system(config);
    let consumer = sys.connect(CONSUMER, 0).expect("consumer connects");
    let producer = sys.connect(PRODUCER, 2).expect("producer connects");
    sys.run_until(SimTime::from_millis(100));
    // Published before the subscription ever existed: unrecoverable
    // without a retention store.
    producer.publish(&mut sys, vacancy(1)).expect("publish");
    sys.run_until(SimTime::from_millis(500));

    consumer
        .subscribe_since(&mut sys, parking_filter(), 0)
        .expect("subscribe_since");
    // Inside the gather window: held, then merged.
    sys.run_until(SimTime::from_millis(800));
    producer.publish(&mut sys, vacancy(2)).expect("publish");
    // After the session closed: plain live delivery.
    sys.run_until(SimTime::from_secs(3));
    producer.publish(&mut sys, vacancy(3)).expect("publish");
    sys.run_until(SimTime::from_secs(4));

    let log = sys.client_log(CONSUMER).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(PRODUCER),
        vec![2, 3],
        "without retention only post-subscription publications arrive"
    );
}
