//! Regenerates the Figure 2 experiment: lost and duplicated notifications
//! with the naive hand-off, compared against the relocation protocol.
fn main() {
    println!("Figure 2: notification loss/duplication during a hand-off (40 publications,");
    println!("consumer moves B6 -> B1 of the Figure 5 topology at t = 500 ms)\n");
    println!(
        "{:<42} {:>9} {:>6} {:>11} {:>6}",
        "scheme", "received", "lost", "duplicated", "fifo"
    );
    for row in rebeca_bench::figures::figure2() {
        println!(
            "{:<42} {:>9} {:>6} {:>11} {:>6}",
            row.scheme, row.received, row.lost, row.duplicated, row.fifo_preserved
        );
    }
}
