//! Broker routing tables.
//!
//! Each broker maintains a routing table whose entries are pairs `(F, L)` of
//! a filter and the link it was received from, denoting that notifications
//! matching `F` are to be forwarded along `L` (Section 2.2 of the paper).
//!
//! The table is backed by the sharded predicate index of
//! [`rebeca_matcher::ShardedFilterIndex`]: every entry is registered in the
//! index under a stable id, so [`RoutingTable::matching_destinations`] runs
//! the counting algorithm instead of scanning all filters (and
//! [`RoutingTable::matching_destinations_batch`] matches whole notification
//! queues with the index's batch kernel), while the covering-based queries
//! ([`RoutingTable::is_covered`], [`RoutingTable::remove_covered_by`],
//! [`RoutingTable::covered_entries`]) run the same counting walk over
//! deduplicated predicates in the covering domain.

use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::fmt;

use rebeca_filter::{Filter, Notification};
use rebeca_matcher::ShardedFilterIndex;

/// A routing table mapping destinations (links) to the filters subscribed
/// from that direction.
///
/// The table stores *every* active subscription (with multiplicity), so the
/// routing decision is always exact regardless of which optimization the
/// surrounding [`RoutingEngine`](crate::RoutingEngine) applies to the
/// *forwarding* of administration messages.
#[derive(Debug, Clone)]
pub struct RoutingTable<D> {
    /// Entry ids per destination, in insertion order.
    dests: BTreeMap<D, Vec<u64>>,
    /// Entry id → `(destination, filter)`.
    entries: HashMap<u64, (D, Filter)>,
    index: ShardedFilterIndex<u64>,
    next_id: u64,
}

impl<D: Ord + Clone> Default for RoutingTable<D> {
    fn default() -> Self {
        Self {
            dests: BTreeMap::new(),
            entries: HashMap::new(),
            index: ShardedFilterIndex::new(),
            next_id: 0,
        }
    }
}

impl<D: Ord + Clone> RoutingTable<D> {
    /// Creates an empty routing table (default shard count).
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty routing table whose index uses `shards` worker
    /// shards.  Results are independent of the shard count; the parameter
    /// only tunes the index layout.
    pub fn with_shards(shards: usize) -> Self {
        Self {
            dests: BTreeMap::new(),
            entries: HashMap::new(),
            index: ShardedFilterIndex::with_shards(shards),
            next_id: 0,
        }
    }

    /// Adds an entry `(filter, destination)`.
    pub fn insert(&mut self, filter: Filter, destination: D) {
        let id = self.next_id;
        self.next_id += 1;
        self.index.insert(id, &filter);
        self.dests.entry(destination.clone()).or_default().push(id);
        self.entries.insert(id, (destination, filter));
    }

    fn remove_id(&mut self, id: u64) -> Option<(D, Filter)> {
        let (dest, filter) = self.entries.remove(&id)?;
        self.index.remove(&id);
        if let Some(ids) = self.dests.get_mut(&dest) {
            ids.retain(|&i| i != id);
            if ids.is_empty() {
                self.dests.remove(&dest);
            }
        }
        Some((dest, filter))
    }

    /// Removes **one** instance of the exact filter for the destination.
    /// Returns `true` when an entry was removed.
    pub fn remove(&mut self, filter: &Filter, destination: &D) -> bool {
        let Some(ids) = self.dests.get(destination) else {
            return false;
        };
        let found = ids.iter().find(|id| &self.entries[id].1 == filter).copied();
        match found {
            Some(id) => {
                self.remove_id(id);
                true
            }
            None => false,
        }
    }

    /// Removes every entry for the destination and returns the filters.
    pub fn remove_destination(&mut self, destination: &D) -> Vec<Filter> {
        let ids = self.dests.remove(destination).unwrap_or_default();
        ids.into_iter()
            .map(|id| {
                self.index.remove(&id);
                self.entries.remove(&id).expect("live entry").1
            })
            .collect()
    }

    /// Entry ids whose filter is covered by `filter`, in deterministic
    /// (destination, insertion) order.
    fn covered_ids(&self, filter: &Filter) -> Vec<u64> {
        // Report grouped by destination, insertion order within each
        // (matching the pre-index behaviour) — but sort only the covered
        // ids instead of walking the whole table.
        let mut keyed: Vec<((&D, usize), u64)> = self
            .index
            .covered_keys(filter)
            .into_iter()
            .map(|&id| {
                let dest = &self.entries[&id].0;
                let pos = self.dests[dest]
                    .iter()
                    .position(|&i| i == id)
                    .expect("id in its destination's list");
                ((dest, pos), id)
            })
            .collect();
        keyed.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        keyed.into_iter().map(|(_, id)| id).collect()
    }

    /// Removes every entry (for any destination) covered by `filter` and
    /// returns the removed `(destination, filter)` pairs.
    pub fn remove_covered_by(&mut self, filter: &Filter) -> Vec<(D, Filter)> {
        self.covered_ids(filter)
            .into_iter()
            .map(|id| self.remove_id(id).expect("live entry"))
            .collect()
    }

    /// The `(destination, filter)` entries covered by `filter` (including
    /// exact matches), answered by the index's exact covering query.
    pub fn covered_entries(&self, filter: &Filter) -> Vec<(&D, &Filter)> {
        self.covered_ids(filter)
            .into_iter()
            .map(|id| {
                let (d, f) = &self.entries[&id];
                (d, f)
            })
            .collect()
    }

    /// The destinations whose filters match the notification.  The optional
    /// `exclude` destination (usually the link the notification came from)
    /// is never returned.
    ///
    /// Runs the index's counting algorithm: cost is proportional to the
    /// matching entries, not the table size.
    pub fn matching_destinations(&self, n: &Notification, exclude: Option<&D>) -> Vec<D> {
        let mut dests: Vec<D> = Vec::new();
        self.for_each_matching_destination(n, exclude, |d| dests.push(d.clone()));
        dests
    }

    /// Visits each destination with a matching filter exactly once, in
    /// ascending destination order, skipping `exclude`.  Unlike
    /// [`RoutingTable::matching_destinations`] it neither materializes the
    /// matching entry-id vector nor clones the destinations — only the
    /// deduplication set (one `&D` per distinct matching destination) is
    /// built per call.
    pub fn for_each_matching_destination(
        &self,
        n: &Notification,
        exclude: Option<&D>,
        mut visit: impl FnMut(&D),
    ) {
        let mut dests: BTreeSet<&D> = BTreeSet::new();
        self.index.for_each_match(n, |id| {
            let dest = &self.entries[id].0;
            if Some(dest) != exclude {
                dests.insert(dest);
            }
        });
        for d in dests {
            visit(d);
        }
    }

    /// The matching destinations of a whole queue of notifications, via the
    /// index's batch kernel (every posting list is walked once per
    /// 64-notification chunk; chunks fan out across worker threads on
    /// multicore machines).  Equivalent to calling
    /// [`RoutingTable::matching_destinations`] per notification.
    pub fn matching_destinations_batch<N>(&self, ns: &[N], exclude: Option<&D>) -> Vec<Vec<D>>
    where
        N: std::borrow::Borrow<Notification> + Sync,
        D: Sync,
    {
        self.index
            .match_batch(ns)
            .into_iter()
            .map(|ids| {
                let dests: BTreeSet<&D> = ids
                    .into_iter()
                    .map(|id| &self.entries[id].0)
                    .filter(|d| Some(*d) != exclude)
                    .collect();
                dests.into_iter().cloned().collect()
            })
            .collect()
    }

    /// The destinations holding at least one filter that *overlaps* the given
    /// filter (used to decide where a new subscription or a fetch request has
    /// to travel).
    pub fn destinations_overlapping(&self, filter: &Filter, exclude: Option<&D>) -> Vec<D> {
        self.dests
            .iter()
            .filter(|(dest, _)| Some(*dest) != exclude)
            .filter(|(_, ids)| ids.iter().any(|id| self.entries[id].1.overlaps(filter)))
            .map(|(dest, _)| dest.clone())
            .collect()
    }

    /// The destinations holding at least one filter identical to `filter`.
    pub fn destinations_with_identical(&self, filter: &Filter, exclude: Option<&D>) -> Vec<D> {
        // Identical filters cover each other, so they are always among the
        // covering keys; collect their destinations in order.
        let identical: BTreeSet<&D> = self
            .index
            .covering_keys(filter)
            .into_iter()
            .filter(|id| &self.entries[*id].1 == filter)
            .map(|id| &self.entries[id].0)
            .filter(|d| Some(*d) != exclude)
            .collect();
        identical.into_iter().cloned().collect()
    }

    /// All filters currently stored for a destination, in insertion order.
    pub fn filters_for(&self, destination: &D) -> Vec<&Filter> {
        self.dests
            .get(destination)
            .map(|ids| ids.iter().map(|id| &self.entries[id].1).collect())
            .unwrap_or_default()
    }

    /// `true` when the exact filter is stored for the destination.
    pub fn contains_entry(&self, filter: &Filter, destination: &D) -> bool {
        self.dests
            .get(destination)
            .is_some_and(|ids| ids.iter().any(|id| &self.entries[id].1 == filter))
    }

    /// Iterates over every `(destination, filter)` entry in deterministic
    /// (destination, insertion) order.
    pub fn iter(&self) -> impl Iterator<Item = (&D, &Filter)> {
        self.dests
            .iter()
            .flat_map(move |(d, ids)| ids.iter().map(move |id| (d, &self.entries[id].1)))
    }

    /// All destinations currently present in the table.
    pub fn destinations(&self) -> impl Iterator<Item = &D> {
        self.dests.keys()
    }

    /// Returns `true` when any stored filter (from any destination other than
    /// `exclude`) covers the given filter, via the index's exact covering
    /// query.
    pub fn is_covered(&self, filter: &Filter, exclude: Option<&D>) -> bool {
        match exclude {
            None => self.index.covers_any(filter),
            Some(excl) => self
                .index
                .covering_keys(filter)
                .into_iter()
                .any(|id| &self.entries[id].0 != excl),
        }
    }

    /// Returns `true` when any stored filter from any destination equals the
    /// given filter.
    pub fn contains_identical(&self, filter: &Filter, exclude: Option<&D>) -> bool {
        self.index.covering_keys(filter).into_iter().any(|id| {
            let (dest, f) = &self.entries[id];
            Some(dest) != exclude && f == filter
        })
    }

    /// Total number of `(filter, destination)` entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

impl<D: Ord + Clone> PartialEq for RoutingTable<D> {
    /// Logical equality: the same destinations hold the same multisets of
    /// filters (entry ids and index internals are representation).
    fn eq(&self, other: &Self) -> bool {
        if self.dests.len() != other.dests.len() {
            return false;
        }
        self.dests
            .iter()
            .zip(other.dests.iter())
            .all(|((d1, ids1), (d2, ids2))| {
                if d1 != d2 || ids1.len() != ids2.len() {
                    return false;
                }
                let mut f1: Vec<&Filter> = ids1.iter().map(|id| &self.entries[id].1).collect();
                let mut f2: Vec<&Filter> = ids2.iter().map(|id| &other.entries[id].1).collect();
                f1.sort_unstable();
                f2.sort_unstable();
                f1 == f2
            })
    }
}

impl<D: Ord + Clone + fmt::Debug> fmt::Display for RoutingTable<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (dest, filter) in self.iter() {
            writeln!(f, "{filter}  ->  {dest:?}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_filter::Constraint;

    fn parking(max: i64) -> Filter {
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(max.into()))
    }

    fn vacancy(cost: i64) -> Notification {
        Notification::builder()
            .attr("service", "parking")
            .attr("cost", cost)
            .build()
    }

    #[test]
    fn insert_and_route() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(10), 2);
        assert_eq!(t.len(), 2);
        assert_eq!(t.matching_destinations(&vacancy(2), None), vec![1, 2]);
        assert_eq!(t.matching_destinations(&vacancy(5), None), vec![2]);
        assert!(t.matching_destinations(&vacancy(20), None).is_empty());
    }

    #[test]
    fn exclusion_of_the_source_link() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(3), 2);
        assert_eq!(t.matching_destinations(&vacancy(1), Some(&1)), vec![2]);
    }

    #[test]
    fn remove_only_one_instance() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(3), 1);
        assert!(t.remove(&parking(3), &1));
        assert_eq!(t.len(), 1);
        assert!(t.remove(&parking(3), &1));
        assert!(t.is_empty());
        assert!(!t.remove(&parking(3), &1));
    }

    #[test]
    fn remove_destination_drops_all_its_filters() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(5), 1);
        t.insert(parking(5), 2);
        let removed = t.remove_destination(&1);
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn remove_covered_by_prunes_across_destinations() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(5), 2);
        t.insert(parking(20), 3);
        let removed = t.remove_covered_by(&parking(10));
        assert_eq!(removed.len(), 2);
        assert_eq!(t.len(), 1);
        assert_eq!(t.filters_for(&3).len(), 1);
    }

    #[test]
    fn covering_and_identity_queries() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(10), 1);
        assert!(t.is_covered(&parking(3), None));
        assert!(!t.is_covered(&parking(20), None));
        assert!(!t.is_covered(&parking(3), Some(&1)));
        assert!(t.contains_identical(&parking(10), None));
        assert!(!t.contains_identical(&parking(3), None));
        assert!(t.contains_entry(&parking(10), &1));
        assert!(!t.contains_entry(&parking(10), &2));
    }

    #[test]
    fn overlapping_destinations() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(10), 1);
        let weather = Filter::new().with("service", Constraint::Eq("weather".into()));
        t.insert(weather.clone(), 2);
        assert_eq!(t.destinations_overlapping(&parking(3), None), vec![1]);
        assert_eq!(t.destinations_overlapping(&weather, None), vec![2]);
    }

    #[test]
    fn iteration_and_destinations() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 2);
        t.insert(parking(5), 1);
        let dests: Vec<u32> = t.destinations().copied().collect();
        assert_eq!(dests, vec![1, 2]);
        assert_eq!(t.iter().count(), 2);
    }

    #[test]
    fn covered_entries_lists_destination_and_filter() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(20), 2);
        let covered = t.covered_entries(&parking(10));
        assert_eq!(covered, vec![(&1, &parking(3))]);
    }

    #[test]
    fn batch_matching_agrees_with_per_notification_routing() {
        for shards in [1, 4] {
            let mut t: RoutingTable<u32> = RoutingTable::with_shards(shards);
            for i in 0..40 {
                t.insert(parking((i % 7) as i64), i % 5);
            }
            let ns: Vec<Notification> = (0..90).map(|i| vacancy((i % 9) as i64)).collect();
            let batch = t.matching_destinations_batch(&ns, Some(&2));
            assert_eq!(batch.len(), ns.len());
            for (n, dests) in ns.iter().zip(&batch) {
                assert_eq!(
                    dests,
                    &t.matching_destinations(n, Some(&2)),
                    "{shards} shards"
                );
            }
        }
    }

    #[test]
    fn destination_visitor_agrees_with_matching_destinations() {
        let mut t: RoutingTable<u32> = RoutingTable::new();
        t.insert(parking(3), 1);
        t.insert(parking(3), 2);
        t.insert(parking(10), 3);
        let mut seen = Vec::new();
        t.for_each_matching_destination(&vacancy(1), Some(&2), |d| seen.push(*d));
        assert_eq!(seen, t.matching_destinations(&vacancy(1), Some(&2)));
        assert_eq!(seen, vec![1, 3]);
    }

    #[test]
    fn logical_equality_ignores_entry_ids() {
        let mut a: RoutingTable<u32> = RoutingTable::new();
        a.insert(parking(3), 1);
        a.insert(parking(5), 1);
        let mut b: RoutingTable<u32> = RoutingTable::new();
        b.insert(parking(5), 1);
        b.insert(parking(3), 1);
        assert_eq!(a, b);
        b.insert(parking(9), 2);
        assert_ne!(a, b);
    }
}
