//! Location-dependent filters: subscription templates containing the `myloc`
//! marker of Section 5 of the paper.
//!
//! A [`LocationDependentFilter`] looks like an ordinary subscription except
//! that one (or more) attributes are constrained by the special marker
//! `location ∈ myloc` rather than a concrete constraint.  The marker stands
//! for "a set of locations that depends on the client's current location".
//! The logical-mobility machinery *instantiates* the template against a
//! concrete location set to obtain a plain [`Filter`] that can be routed with
//! the unchanged Rebeca infrastructure.

use std::collections::BTreeMap;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::constraint::Constraint;
use crate::filter::Filter;

/// One attribute slot of a location-dependent subscription: either a
/// concrete constraint or the `myloc` marker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum TemplateConstraint {
    /// A plain, location-independent constraint.
    Concrete(Constraint),
    /// The `myloc` marker: the attribute must be one of the locations in the
    /// set `myloc(current_location)`, whose extent (`vicinity`) is measured
    /// in movement-graph hops around the client's current location.
    ///
    /// `vicinity = 0` means "exactly my current location"; the paper's
    /// parking example ("at most two blocks away from myloc") corresponds to
    /// `vicinity = 2`.
    MyLoc {
        /// Radius, in movement-graph hops, around the current location.
        vicinity: usize,
    },
}

/// A subscription template with `myloc` markers (a *location-dependent
/// subscription*).
///
/// # Examples
///
/// ```
/// use rebeca_filter::{LocationDependentFilter, Constraint, Value};
///
/// // (service = "parking"), (location ∈ myloc), (car-type = "compact")
/// let sub = LocationDependentFilter::new("location", 0)
///     .with_concrete("service", Constraint::Eq("parking".into()))
///     .with_concrete("car-type", Constraint::Eq("compact".into()));
///
/// // Instantiate for the location set {4, 5} computed by the middleware.
/// let filter = sub.instantiate([4, 5]);
/// assert!(filter.constraint("location").is_some());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LocationDependentFilter {
    constraints: BTreeMap<String, TemplateConstraint>,
}

impl LocationDependentFilter {
    /// Creates a template whose attribute `location_attribute` carries the
    /// `myloc` marker with the given vicinity.
    pub fn new(location_attribute: impl Into<String>, vicinity: usize) -> Self {
        let mut constraints = BTreeMap::new();
        constraints.insert(
            location_attribute.into(),
            TemplateConstraint::MyLoc { vicinity },
        );
        Self { constraints }
    }

    /// Creates a template from an ordinary filter (no `myloc` marker); useful
    /// for uniform handling of mobile and immobile subscriptions.
    pub fn from_filter(filter: &Filter) -> Self {
        Self {
            constraints: filter
                .iter()
                .map(|(k, c)| (k.to_string(), TemplateConstraint::Concrete(c.clone())))
                .collect(),
        }
    }

    /// Adds (or replaces) a concrete constraint.
    pub fn with_concrete(mut self, attribute: impl Into<String>, constraint: Constraint) -> Self {
        self.constraints
            .insert(attribute.into(), TemplateConstraint::Concrete(constraint));
        self
    }

    /// Adds (or replaces) an additional `myloc` marker on another attribute.
    pub fn with_myloc(mut self, attribute: impl Into<String>, vicinity: usize) -> Self {
        self.constraints
            .insert(attribute.into(), TemplateConstraint::MyLoc { vicinity });
        self
    }

    /// Names of the attributes that carry a `myloc` marker, with their
    /// vicinities.
    pub fn myloc_attributes(&self) -> impl Iterator<Item = (&str, usize)> {
        self.constraints.iter().filter_map(|(k, c)| match c {
            TemplateConstraint::MyLoc { vicinity } => Some((k.as_str(), *vicinity)),
            TemplateConstraint::Concrete(_) => None,
        })
    }

    /// The largest vicinity requested by any `myloc` marker (0 when the
    /// template has no marker).
    pub fn max_vicinity(&self) -> usize {
        self.myloc_attributes().map(|(_, v)| v).max().unwrap_or(0)
    }

    /// `true` when the template contains at least one `myloc` marker.
    pub fn is_location_dependent(&self) -> bool {
        self.myloc_attributes().next().is_some()
    }

    /// Iterates over all template constraints.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &TemplateConstraint)> {
        self.constraints.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Instantiates the template for a concrete set of location ids,
    /// replacing every `myloc` marker by `∈ {locations…}`.
    ///
    /// The same location set is used for every marker; the set is usually
    /// `ploc(current_location, q)` computed by the logical-mobility layer.
    pub fn instantiate<I>(&self, locations: I) -> Filter
    where
        I: IntoIterator<Item = u32>,
    {
        let locations: Vec<u32> = locations.into_iter().collect();
        self.constraints
            .iter()
            .map(|(name, c)| {
                let concrete = match c {
                    TemplateConstraint::Concrete(c) => c.clone(),
                    TemplateConstraint::MyLoc { .. } => {
                        Constraint::any_location_of(locations.iter().copied())
                    }
                };
                (name.clone(), concrete)
            })
            .collect()
    }

    /// The location-independent part of the template as a plain filter
    /// (every `myloc` marker dropped).  A notification matching the
    /// instantiated filter always matches the base filter too.
    pub fn base_filter(&self) -> Filter {
        self.constraints
            .iter()
            .filter_map(|(name, c)| match c {
                TemplateConstraint::Concrete(c) => Some((name.clone(), c.clone())),
                TemplateConstraint::MyLoc { .. } => None,
            })
            .collect()
    }
}

impl fmt::Display for LocationDependentFilter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (name, c)) in self.constraints.iter().enumerate() {
            if i > 0 {
                write!(f, " ∧ ")?;
            }
            match c {
                TemplateConstraint::Concrete(c) => write!(f, "({name} {c})")?,
                TemplateConstraint::MyLoc { vicinity } => {
                    write!(f, "({name} ∈ myloc[{vicinity}])")?
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::notification::Notification;
    use crate::value::Value;

    fn parking_template(vicinity: usize) -> LocationDependentFilter {
        LocationDependentFilter::new("location", vicinity)
            .with_concrete("service", Constraint::Eq("parking".into()))
    }

    #[test]
    fn instantiate_replaces_marker_with_location_set() {
        let t = parking_template(1);
        let f = t.instantiate([4, 5, 6]);
        let hit = Notification::builder()
            .attr("service", "parking")
            .attr("location", Value::Location(5))
            .build();
        let miss = hit.with_attr("location", Value::Location(9));
        assert!(f.matches(&hit));
        assert!(!f.matches(&miss));
    }

    #[test]
    fn concrete_constraints_survive_instantiation() {
        let t = parking_template(0);
        let f = t.instantiate([1]);
        assert_eq!(
            f.constraint("service"),
            Some(&Constraint::Eq("parking".into()))
        );
    }

    #[test]
    fn vicinity_is_reported() {
        let t = parking_template(2);
        assert_eq!(t.max_vicinity(), 2);
        assert!(t.is_location_dependent());
        let attrs: Vec<(&str, usize)> = t.myloc_attributes().collect();
        assert_eq!(attrs, vec![("location", 2)]);
    }

    #[test]
    fn from_filter_has_no_marker() {
        let f = Filter::new().with("a", Constraint::Eq(1.into()));
        let t = LocationDependentFilter::from_filter(&f);
        assert!(!t.is_location_dependent());
        assert_eq!(t.max_vicinity(), 0);
        assert_eq!(t.instantiate([]), f);
    }

    #[test]
    fn base_filter_drops_markers() {
        let t = parking_template(1);
        let base = t.base_filter();
        assert_eq!(base.len(), 1);
        assert!(base.constraint("location").is_none());
        // Instantiated filter is always at least as strict as the base.
        let inst = t.instantiate([2, 3]);
        assert!(base.covers(&inst));
    }

    #[test]
    fn multiple_myloc_markers_share_the_location_set() {
        let t = LocationDependentFilter::new("from", 0).with_myloc("to", 1);
        let f = t.instantiate([7]);
        let n = Notification::builder()
            .attr("from", Value::Location(7))
            .attr("to", Value::Location(7))
            .build();
        assert!(f.matches(&n));
    }

    #[test]
    fn wider_location_sets_cover_narrower_instantiations() {
        let t = parking_template(2);
        let narrow = t.instantiate([4]);
        let wide = t.instantiate([3, 4, 5]);
        assert!(wide.covers(&narrow));
        assert!(!narrow.covers(&wide));
    }

    #[test]
    fn display_shows_marker() {
        let t = parking_template(2);
        let s = t.to_string();
        assert!(s.contains("myloc[2]"), "{s}");
        assert!(s.contains("parking"), "{s}");
    }
}
