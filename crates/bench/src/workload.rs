//! Seeded, skew-aware workload generation shared by the matcher and churn
//! benchmarks.
//!
//! Real subscription populations are zipf-skewed: a few "hot" groups hold
//! most of the subscribers, a long tail of groups holds one or two each.
//! That skew is exactly what subscription subgrouping and covering
//! summaries exploit (many byte-identical filters collapse into one
//! subgroup / one posting list), so the benchmarks have to generate it the
//! same way everywhere.  [`ZipfSampler`] is a deterministic inverse-CDF
//! sampler over `P(k) ∝ 1 / (k+1)^s`; [`zipf_group_filters`] and
//! [`zipf_group_notifications`] turn it into the telemetry-group filters
//! and notifications the churn scenario routes.

use rebeca_filter::{Constraint, Filter, Notification, Value};

/// A deterministic sampler over `0..n` with zipf weights
/// `P(k) ∝ 1 / (k+1)^exponent`.
///
/// Sampling uses a private xorshift64* stream seeded explicitly, so two
/// samplers with the same `(n, exponent, seed)` produce identical sequences
/// on every platform — benchmark workloads and simulation scenarios stay
/// reproducible without threading a shared RNG through every call site.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative weights, `cdf[k]` = P(X <= k), scaled to the total.
    cdf: Vec<f64>,
    state: u64,
}

impl ZipfSampler {
    /// Creates a sampler over `0..n` (n >= 1) with the given skew exponent
    /// (`0.0` = uniform, `~1.0` = classic zipf) and seed.
    pub fn new(n: usize, exponent: f64, seed: u64) -> Self {
        assert!(n >= 1, "zipf domain must be non-empty");
        let mut cdf = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for k in 0..n {
            total += 1.0 / ((k + 1) as f64).powf(exponent);
            cdf.push(total);
        }
        for c in &mut cdf {
            *c /= total;
        }
        Self {
            cdf,
            // xorshift64* must not start at 0.
            state: seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1,
        }
    }

    /// The next uniform value in `[0, 1)`.
    fn next_unit(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }

    /// Draws the next zipf-distributed value in `0..n`.
    pub fn sample(&mut self) -> usize {
        let u = self.next_unit();
        // Binary search for the first cdf entry >= u.
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Number of distinct values the sampler draws from.
    pub fn domain(&self) -> usize {
        self.cdf.len()
    }
}

/// The subscription filter of telemetry group `g` (the filter family of the
/// churn scenario: `service = telemetry ∧ group = g`).
pub fn group_filter(g: usize) -> Filter {
    Filter::new()
        .with("service", Constraint::Eq("telemetry".into()))
        .with("group", Constraint::Eq(Value::Int(g as i64)))
}

/// A telemetry notification for group `g`.
pub fn group_notification(g: usize, reading: i64) -> Notification {
    Notification::builder()
        .attr("service", "telemetry")
        .attr("group", g as i64)
        .attr("reading", reading)
        .build()
}

/// `count` zipf-skewed subscription filters over `groups` telemetry groups:
/// the population a routing table holds under realistic skew (hot groups
/// repeat often, so subgrouping collapses most of the list).
pub fn zipf_group_filters(groups: usize, count: usize, exponent: f64, seed: u64) -> Vec<Filter> {
    let mut zipf = ZipfSampler::new(groups, exponent, seed);
    (0..count).map(|_| group_filter(zipf.sample())).collect()
}

/// `count` zipf-skewed telemetry notifications over `groups` groups
/// (publication popularity follows subscription popularity).
pub fn zipf_group_notifications(
    groups: usize,
    count: usize,
    exponent: f64,
    seed: u64,
) -> Vec<Notification> {
    let mut zipf = ZipfSampler::new(groups, exponent, seed);
    (0..count)
        .map(|i| group_notification(zipf.sample(), i as i64))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampler_is_deterministic_and_in_range() {
        let mut a = ZipfSampler::new(50, 1.0, 7);
        let mut b = ZipfSampler::new(50, 1.0, 7);
        for _ in 0..1000 {
            let x = a.sample();
            assert_eq!(x, b.sample());
            assert!(x < 50);
        }
    }

    #[test]
    fn skew_concentrates_mass_on_low_ranks() {
        let mut zipf = ZipfSampler::new(100, 1.1, 3);
        let head = (0..10_000).filter(|_| zipf.sample() < 10).count();
        // Under uniform sampling the first 10 ranks would get ~10% of the
        // draws; zipf at s=1.1 concentrates well over a third there.
        assert!(head > 3_500, "head draws: {head}");
    }

    #[test]
    fn uniform_exponent_spreads_mass() {
        let mut flat = ZipfSampler::new(100, 0.0, 3);
        let head = (0..10_000).filter(|_| flat.sample() < 10).count();
        assert!((700..1_400).contains(&head), "head draws: {head}");
    }

    #[test]
    fn filters_share_identical_instances_under_skew() {
        let filters = zipf_group_filters(50, 1_000, 1.0, 11);
        assert_eq!(filters.len(), 1_000);
        let distinct: std::collections::BTreeSet<_> = filters.iter().collect();
        assert!(
            distinct.len() < filters.len() / 4,
            "skewed population must repeat filters heavily: {} distinct",
            distinct.len()
        );
    }
}
