//! Advertisement tables.
//!
//! Producers may issue *advertisements* describing the notifications they are
//! about to publish (Section 2.1).  Brokers record from which link each
//! advertisement was received; the physical-mobility relocation protocol uses
//! this information at the *junction broker*: a broker recognises that it
//! sits on the old delivery path of a relocated subscription by comparing the
//! re-issued subscription against its routing table **and** its list of
//! received advertisements (Section 4.1).

use std::collections::BTreeMap;
use std::fmt;

use rebeca_filter::{Filter, Notification};

/// Advertisements per link.
#[derive(Debug, Clone, PartialEq)]
pub struct AdvertisementTable<D> {
    entries: BTreeMap<D, Vec<Filter>>,
}

impl<D: Ord + Clone> Default for AdvertisementTable<D> {
    fn default() -> Self {
        Self {
            entries: BTreeMap::new(),
        }
    }
}

impl<D: Ord + Clone> AdvertisementTable<D> {
    /// Creates an empty advertisement table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an advertisement received from `from`.  Returns `true` when
    /// the advertisement is new for that link (and therefore has to be
    /// propagated further).
    pub fn insert(&mut self, advertisement: Filter, from: D) -> bool {
        let filters = self.entries.entry(from).or_default();
        if filters.contains(&advertisement) {
            false
        } else {
            filters.push(advertisement);
            true
        }
    }

    /// Removes an advertisement previously received from `from`.  Returns
    /// `true` when it was present.
    pub fn remove(&mut self, advertisement: &Filter, from: &D) -> bool {
        if let Some(filters) = self.entries.get_mut(from) {
            if let Some(pos) = filters.iter().position(|f| f == advertisement) {
                filters.remove(pos);
                if filters.is_empty() {
                    self.entries.remove(from);
                }
                return true;
            }
        }
        false
    }

    /// Removes every advertisement recorded for the given link.
    pub fn remove_link(&mut self, from: &D) -> Vec<Filter> {
        self.entries.remove(from).unwrap_or_default()
    }

    /// Links from which an advertisement *overlapping* the subscription was
    /// received — i.e. the directions in which a subscription has to be
    /// propagated to reach all potential producers when advertisements are in
    /// use.
    pub fn producers_for(&self, subscription: &Filter, exclude: Option<&D>) -> Vec<D> {
        self.entries
            .iter()
            .filter(|(link, _)| Some(*link) != exclude)
            .filter(|(_, ads)| ads.iter().any(|ad| ad.overlaps(subscription)))
            .map(|(link, _)| link.clone())
            .collect()
    }

    /// `true` when some advertisement (from any link except `exclude`)
    /// overlaps the subscription.
    pub fn has_producer_for(&self, subscription: &Filter, exclude: Option<&D>) -> bool {
        !self.producers_for(subscription, exclude).is_empty()
    }

    /// Links whose advertisements match a concrete notification (used for
    /// sanity checks: a notification should only arrive from links that
    /// advertised it).
    pub fn advertisers_of(&self, notification: &Notification) -> Vec<D> {
        self.entries
            .iter()
            .filter(|(_, ads)| ads.iter().any(|ad| ad.matches(notification)))
            .map(|(link, _)| link.clone())
            .collect()
    }

    /// Total number of stored advertisements.
    pub fn len(&self) -> usize {
        self.entries.values().map(Vec::len).sum()
    }

    /// `true` when no advertisements are stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over `(link, advertisement)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&D, &Filter)> {
        self.entries
            .iter()
            .flat_map(|(d, fs)| fs.iter().map(move |f| (d, f)))
    }
}

impl<D: Ord + Clone + fmt::Debug> fmt::Display for AdvertisementTable<D> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (link, ads) in &self.entries {
            for ad in ads {
                writeln!(f, "adv {ad}  <-  {link:?}")?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_filter::Constraint;

    fn parking_ads() -> Filter {
        Filter::new().with("service", Constraint::Eq("parking".into()))
    }

    fn weather_ads() -> Filter {
        Filter::new().with("service", Constraint::Eq("weather".into()))
    }

    fn parking_sub(max: i64) -> Filter {
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(max.into()))
    }

    #[test]
    fn insert_is_deduplicated_per_link() {
        let mut t: AdvertisementTable<u32> = AdvertisementTable::new();
        assert!(t.insert(parking_ads(), 1));
        assert!(!t.insert(parking_ads(), 1));
        assert!(t.insert(parking_ads(), 2));
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn producers_for_uses_overlap() {
        let mut t: AdvertisementTable<u32> = AdvertisementTable::new();
        t.insert(parking_ads(), 1);
        t.insert(weather_ads(), 2);
        assert_eq!(t.producers_for(&parking_sub(3), None), vec![1]);
        assert!(t.has_producer_for(&parking_sub(3), None));
        assert!(!t.has_producer_for(&parking_sub(3), Some(&1)));
    }

    #[test]
    fn advertisers_of_notifications() {
        let mut t: AdvertisementTable<u32> = AdvertisementTable::new();
        t.insert(parking_ads(), 1);
        t.insert(weather_ads(), 2);
        let n = Notification::builder().attr("service", "parking").build();
        assert_eq!(t.advertisers_of(&n), vec![1]);
    }

    #[test]
    fn remove_and_remove_link() {
        let mut t: AdvertisementTable<u32> = AdvertisementTable::new();
        t.insert(parking_ads(), 1);
        t.insert(weather_ads(), 1);
        assert!(t.remove(&parking_ads(), &1));
        assert!(!t.remove(&parking_ads(), &1));
        assert_eq!(t.remove_link(&1), vec![weather_ads()]);
        assert!(t.is_empty());
    }

    #[test]
    fn iteration_counts_all_entries() {
        let mut t: AdvertisementTable<u32> = AdvertisementTable::new();
        t.insert(parking_ads(), 1);
        t.insert(weather_ads(), 2);
        assert_eq!(t.iter().count(), 2);
    }
}
