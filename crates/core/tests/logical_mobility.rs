//! Integration tests for logical mobility (Section 5 of the paper):
//! location-dependent subscriptions, per-hop `ploc` filter placement
//! (Table 2), the location-update protocol, and the blackout comparison
//! against the manual sub/unsub baseline (Figure 3).

use std::collections::BTreeSet;

use rebeca_broker::{ClientId, SubscriptionId};
use rebeca_core::{BrokerConfig, ClientAction, LogicalMobilityMode, MobilitySystem, SystemBuilder};
use rebeca_filter::{Constraint, Filter, LocationDependentFilter, Notification, Value};
use rebeca_location::{AdaptivityPlan, LocationId, MovementGraph};
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{DelayModel, SimDuration, SimTime, Topology};

fn config() -> BrokerConfig {
    BrokerConfig::default()
        .with_strategy(RoutingStrategyKind::Covering)
        .with_movement_graph(MovementGraph::paper_example())
        .with_relocation_timeout(SimDuration::from_secs(10))
}

fn template() -> LocationDependentFilter {
    LocationDependentFilter::new("location", 0)
        .with_concrete("service", Constraint::Eq("parking".into()))
}

fn vacancy_at(location: LocationId) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("location", Value::Location(location.raw()))
        .build()
}

fn loc(graph: &MovementGraph, name: &str) -> LocationId {
    graph.space().id(name).unwrap()
}

/// Extracts the set of locations accepted by a broker's installed filter for
/// one location-dependent subscription.
fn installed_locations(sys: &MobilitySystem, broker: usize, sub: SubscriptionId) -> BTreeSet<u32> {
    let filter: &Filter = sys
        .broker(broker)
        .unwrap()
        .loc_sub_filter(sub)
        .expect("broker must participate in the subscription");
    filter
        .constraint("location")
        .and_then(|c| c.as_value_set())
        .map(|set| set.iter().filter_map(|v| v.as_location()).collect())
        .unwrap_or_default()
}

/// A consumer at broker 0 of a 3-broker line with the one-step-per-hop plan:
/// the per-hop filters must match Table 2 of the paper as the client moves
/// a → b → d through the Figure 7 movement graph.
#[test]
fn per_hop_filters_reproduce_table_2() {
    let graph = MovementGraph::paper_example();
    let a = loc(&graph, "a");
    let b = loc(&graph, "b");
    let d = loc(&graph, "d");

    let topo = Topology::line(3);
    let mut sys = SystemBuilder::new(&topo)
        .config(config())
        .link_delay(DelayModel::constant_millis(5))
        .seed(1)
        .build()
        .unwrap();
    let consumer = ClientId::new(1);
    let sub = SubscriptionId::new(consumer, 0);

    sys.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[0],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(0).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::LocSubscribe {
                    template: template(),
                    plan: AdaptivityPlan::one_step_per_hop(3),
                    location: a,
                },
            ),
            (SimTime::from_secs(1), ClientAction::SetLocation(b)),
            (SimTime::from_secs(2), ClientAction::SetLocation(d)),
        ],
    )
    .unwrap();

    // Row t = 0 of Table 2 (client at a): F0 = {a}, F1 = {a,b,c}, F2 = {a,b,c,d}.
    sys.run_until(SimTime::from_millis(500));
    let ids =
        |names: &[&str]| -> BTreeSet<u32> { names.iter().map(|n| loc(&graph, n).raw()).collect() };
    assert_eq!(installed_locations(&sys, 0, sub), ids(&["a"]));
    assert_eq!(installed_locations(&sys, 1, sub), ids(&["a", "b", "c"]));
    assert_eq!(
        installed_locations(&sys, 2, sub),
        ids(&["a", "b", "c", "d"])
    );

    // Row t = 1 (client at b): F0 = {b}, F1 = {a,b,d}, F2 = {a,b,c,d}.
    sys.run_until(SimTime::from_millis(1_500));
    assert_eq!(installed_locations(&sys, 0, sub), ids(&["b"]));
    assert_eq!(installed_locations(&sys, 1, sub), ids(&["a", "b", "d"]));
    assert_eq!(
        installed_locations(&sys, 2, sub),
        ids(&["a", "b", "c", "d"])
    );

    // Row t = 2 (client at d): F0 = {d}, F1 = {b,c,d}, F2 = {a,b,c,d}.
    sys.run_until(SimTime::from_millis(2_500));
    assert_eq!(installed_locations(&sys, 0, sub), ids(&["d"]));
    assert_eq!(installed_locations(&sys, 1, sub), ids(&["b", "c", "d"]));
    assert_eq!(
        installed_locations(&sys, 2, sub),
        ids(&["a", "b", "c", "d"])
    );

    // The brokers also record the consumer's latest location.
    assert_eq!(sys.broker(0).unwrap().loc_sub_location(sub), Some(d));
    assert_eq!(sys.broker(2).unwrap().loc_sub_location(sub), Some(d));
}

/// Builds the blackout scenario of Figure 3: a producer at the far end of a
/// broker line publishes one notification per location every
/// `publish_interval_ms`; the consumer moves from `a` to `b` at `move_at`.
/// Returns the system, the consumer id and the graph.
fn blackout_scenario(
    mode: LogicalMobilityMode,
    plan: AdaptivityPlan,
    move_at: SimTime,
    horizon: SimTime,
) -> (MobilitySystem, ClientId, MovementGraph) {
    let graph = MovementGraph::paper_example();
    let a = loc(&graph, "a");
    let b = loc(&graph, "b");

    let topo = Topology::line(4);
    let mut sys = SystemBuilder::new(&topo)
        .config(config())
        .link_delay(DelayModel::constant_millis(20))
        .seed(3)
        .build()
        .unwrap();

    let consumer = ClientId::new(1);
    let producer = ClientId::new(2);

    sys.add_client(
        consumer,
        mode,
        &[0],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(0).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::LocSubscribe {
                    template: template(),
                    plan,
                    location: a,
                },
            ),
            (move_at, ClientAction::SetLocation(b)),
        ],
    )
    .unwrap();

    // The producer publishes a vacancy for every location every 20 ms.
    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(3).unwrap(),
        },
    )];
    let mut t = SimTime::from_millis(40);
    while t < horizon {
        for location in graph.space().ids() {
            script.push((t, ClientAction::Publish(vacancy_at(location))));
        }
        t += SimDuration::from_millis(20);
    }
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[3],
        script,
    )
    .unwrap();

    (sys, consumer, graph)
}

/// Counts the deliveries for notifications of the given location arriving in
/// the window `[from, to]`.
fn deliveries_for_location_in_window(
    sys: &MobilitySystem,
    client: ClientId,
    location: LocationId,
    from: SimTime,
    to: SimTime,
) -> usize {
    let node = sys.client(client).unwrap();
    node.log()
        .deliveries()
        .iter()
        .zip(node.delivery_times())
        .filter(|(d, (t, _))| {
            *t >= from
                && *t <= to
                && d.envelope
                    .notification
                    .get("location")
                    .and_then(|v| v.as_location())
                    == Some(location.raw())
        })
        .count()
}

/// Figure 3 comparison: after a location change, the location-dependent
/// subscription resumes delivering notifications for the *new* location
/// almost immediately (only the client ↔ broker update is on the critical
/// path), while the manual sub/unsub baseline starves for roughly `2 · t_d`
/// (the subscription has to travel to the producer's broker and matching
/// notifications have to travel back).
#[test]
fn location_dependent_subscriptions_avoid_the_blackout_period() {
    let move_at = SimTime::from_secs(1);
    let horizon = SimTime::from_secs(2);
    let window_end = move_at + SimDuration::from_millis(110);

    // Paper scheme: ploc pre-subscription along the path.
    let (mut managed_sys, consumer, graph) = blackout_scenario(
        LogicalMobilityMode::LocationDependent,
        AdaptivityPlan::one_step_per_hop(4),
        move_at,
        horizon,
    );
    managed_sys.run_until(horizon);
    let b = loc(&graph, "b");
    let managed_in_window =
        deliveries_for_location_in_window(&managed_sys, consumer, b, move_at, window_end);

    // Baseline: the application unsubscribes/subscribes manually.
    let (mut baseline_sys, consumer_b, _) = blackout_scenario(
        LogicalMobilityMode::ManualSubUnsub { vicinity: 0 },
        AdaptivityPlan::global_sub_unsub(4),
        move_at,
        horizon,
    );
    baseline_sys.run_until(horizon);
    let baseline_in_window =
        deliveries_for_location_in_window(&baseline_sys, consumer_b, b, move_at, window_end);

    assert!(
        managed_in_window >= 2,
        "the location-dependent subscription must keep delivering right after the move \
         (got {managed_in_window} deliveries in the window)"
    );
    assert_eq!(
        baseline_in_window, 0,
        "the manual baseline must starve for about 2·t_d after the move"
    );

    // Over the whole run the managed consumer never receives less than the
    // baseline.
    assert!(
        managed_sys.client(consumer).unwrap().log().len()
            >= baseline_sys.client(consumer_b).unwrap().log().len(),
        "the paper's scheme must dominate the baseline"
    );
}

/// The flooding baseline of Figure 3b also avoids the blackout, at the price
/// of transmitting every notification over every link.
#[test]
fn flooding_with_client_side_filtering_avoids_the_blackout_but_costs_more() {
    let move_at = SimTime::from_secs(1);
    let horizon = SimTime::from_secs(2);
    let window_end = move_at + SimDuration::from_millis(110);

    let build = |strategy: RoutingStrategyKind, mode: LogicalMobilityMode, plan: AdaptivityPlan| {
        let graph = MovementGraph::paper_example();
        let a = loc(&graph, "a");
        let b = loc(&graph, "b");
        let topo = Topology::line(4);
        let mut cfg = config();
        cfg.strategy = strategy;
        let mut sys = SystemBuilder::new(&topo)
            .config(cfg)
            .link_delay(DelayModel::constant_millis(20))
            .seed(3)
            .build()
            .unwrap();
        let consumer = ClientId::new(1);
        let producer = ClientId::new(2);
        sys.add_client(
            consumer,
            mode,
            &[0],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(0).unwrap(),
                    },
                ),
                (
                    SimTime::from_millis(2),
                    ClientAction::LocSubscribe {
                        template: template(),
                        plan,
                        location: a,
                    },
                ),
                (move_at, ClientAction::SetLocation(b)),
            ],
        )
        .unwrap();
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(3).unwrap(),
            },
        )];
        let mut t = SimTime::from_millis(40);
        while t < horizon {
            for location in graph.space().ids() {
                script.push((t, ClientAction::Publish(vacancy_at(location))));
            }
            t += SimDuration::from_millis(20);
        }
        sys.add_client(
            producer,
            LogicalMobilityMode::LocationDependent,
            &[3],
            script,
        )
        .unwrap();
        sys.run_until(horizon);
        (sys, consumer)
    };

    // Flooding with client-side filtering: the border broker holds the exact
    // location filter; everything else is flooded.
    let (flooding_sys, consumer_f) = build(
        RoutingStrategyKind::Flooding,
        LogicalMobilityMode::ManualSubUnsub { vicinity: 0 },
        AdaptivityPlan::flooding(4),
    );
    let graph = MovementGraph::paper_example();
    let b = loc(&graph, "b");
    let flooding_in_window =
        deliveries_for_location_in_window(&flooding_sys, consumer_f, b, move_at, window_end);
    assert!(
        flooding_in_window >= 2,
        "flooding with client-side filtering must not starve after a move \
         (got {flooding_in_window})"
    );

    // The paper's scheme achieves the same responsiveness with fewer link
    // transmissions.
    let (managed_sys, _) = build(
        RoutingStrategyKind::Covering,
        LogicalMobilityMode::LocationDependent,
        AdaptivityPlan::one_step_per_hop(4),
    );
    assert!(
        managed_sys.total_messages() < flooding_sys.total_messages(),
        "restricted flooding must generate fewer messages than full flooding \
         ({} vs {})",
        managed_sys.total_messages(),
        flooding_sys.total_messages()
    );
}

/// Every notification matching the consumer's *current* location at delivery
/// time is delivered (the "as if flooding were used" quality of service of
/// Figure 4), and nothing not matching the current or previous location slips
/// through.
#[test]
fn delivered_notifications_always_match_a_recent_location() {
    let graph = MovementGraph::paper_example();
    let a = loc(&graph, "a");
    let b = loc(&graph, "b");
    let d = loc(&graph, "d");

    let (mut sys, consumer, _) = {
        let topo = Topology::line(4);
        let mut sys = SystemBuilder::new(&topo)
            .config(config())
            .link_delay(DelayModel::constant_millis(20))
            .seed(9)
            .build()
            .unwrap();
        let consumer = ClientId::new(1);
        let producer = ClientId::new(2);
        sys.add_client(
            consumer,
            LogicalMobilityMode::LocationDependent,
            &[0],
            vec![
                (
                    SimTime::from_millis(1),
                    ClientAction::Attach {
                        broker: sys.broker_node(0).unwrap(),
                    },
                ),
                (
                    SimTime::from_millis(2),
                    ClientAction::LocSubscribe {
                        template: template(),
                        plan: AdaptivityPlan::one_step_per_hop(4),
                        location: a,
                    },
                ),
                (SimTime::from_secs(1), ClientAction::SetLocation(b)),
                (SimTime::from_secs(2), ClientAction::SetLocation(d)),
            ],
        )
        .unwrap();
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(3).unwrap(),
            },
        )];
        let mut t = SimTime::from_millis(40);
        while t < SimTime::from_secs(3) {
            for location in graph.space().ids() {
                script.push((t, ClientAction::Publish(vacancy_at(location))));
            }
            t += SimDuration::from_millis(20);
        }
        sys.add_client(
            producer,
            LogicalMobilityMode::LocationDependent,
            &[3],
            script,
        )
        .unwrap();
        (sys, consumer, producer)
    };
    sys.run_until(SimTime::from_secs(3));

    let itinerary = [
        (SimTime::ZERO, a),
        (SimTime::from_secs(1), b),
        (SimTime::from_secs(2), d),
    ];
    let location_at = |t: SimTime| {
        itinerary
            .iter()
            .rev()
            .find(|(start, _)| *start <= t)
            .map(|(_, l)| *l)
            .unwrap()
    };

    let client = sys.client(consumer).unwrap();
    assert!(
        client.log().len() > 50,
        "the consumer must receive a steady stream"
    );
    for delivery in client.log().deliveries() {
        let delivered_loc = delivery
            .envelope
            .notification
            .get("location")
            .and_then(|v| v.as_location())
            .unwrap();
        // Every delivered notification was selected by the exact filter of
        // the consumer's location at the time the border broker forwarded it;
        // allow the location held just before a move as well (in-flight
        // deliveries).
        let now_locs: BTreeSet<u32> = itinerary.iter().map(|(_, l)| l.raw()).collect();
        assert!(
            now_locs.contains(&delivered_loc),
            "delivered location {delivered_loc} was never visited"
        );
    }
    // The bulk of deliveries match the location the consumer was in exactly.
    let exact = client
        .log()
        .deliveries()
        .iter()
        .zip(client.delivery_times())
        .filter(|(d, (t, _))| {
            d.envelope
                .notification
                .get("location")
                .and_then(|v| v.as_location())
                == Some(location_at(*t).raw())
        })
        .count();
    assert!(
        exact * 10 >= client.log().len() * 9,
        "at least 90% of deliveries must match the consumer's current location \
         ({exact} of {})",
        client.log().len()
    );
}

/// Retracting a location-dependent subscription removes the per-hop state and
/// stops delivery.
#[test]
fn loc_unsubscribe_removes_state_everywhere() {
    let graph = MovementGraph::paper_example();
    let a = loc(&graph, "a");
    let topo = Topology::line(3);
    let mut sys = SystemBuilder::new(&topo)
        .config(config())
        .link_delay(DelayModel::constant_millis(5))
        .seed(1)
        .build()
        .unwrap();
    let consumer = ClientId::new(1);
    let sub = SubscriptionId::new(consumer, 0);

    sys.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[0],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(0).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::LocSubscribe {
                    template: template(),
                    plan: AdaptivityPlan::one_step_per_hop(2),
                    location: a,
                },
            ),
        ],
    )
    .unwrap();
    sys.run_until(SimTime::from_millis(500));
    assert!(sys.broker(0).unwrap().loc_sub_filter(sub).is_some());
    assert!(sys.broker(2).unwrap().loc_sub_filter(sub).is_some());
    assert_eq!(sys.broker(1).unwrap().loc_sub_count(), 1);

    // Retract by injecting the unsubscribe through the client's broker: the
    // cleanest way within the scripted model is a second system run; here we
    // drive it directly by scripting the unsubscribe in a fresh system.
    let mut sys2 = SystemBuilder::new(&topo)
        .config(config())
        .link_delay(DelayModel::constant_millis(5))
        .seed(1)
        .build()
        .unwrap();
    sys2.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[0],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys2.broker_node(0).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::LocSubscribe {
                    template: template(),
                    plan: AdaptivityPlan::one_step_per_hop(2),
                    location: a,
                },
            ),
            (
                SimTime::from_millis(500),
                ClientAction::LocUnsubscribe { index: 0 },
            ),
        ],
    )
    .unwrap();
    sys2.run_until(SimTime::from_secs(1));
    for broker in 0..3 {
        assert_eq!(
            sys2.broker(broker).unwrap().loc_sub_count(),
            0,
            "broker {broker} must have dropped the subscription state"
        );
    }
}
