//! Property-based tests of the relocation protocol: on random tree
//! topologies, with random attachment points, move times and publication
//! schedules, a roaming consumer served by the Section 4 protocol receives
//! every publication exactly once and in publisher order.

use proptest::prelude::*;

use rebeca_broker::ClientId;
use rebeca_core::{BrokerConfig, ClientAction, LogicalMobilityMode, MobilitySystem, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_location::MovementGraph;
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{DelayModel, SimDuration, SimTime, Topology};

fn filter() -> Filter {
    Filter::new().with("service", Constraint::Eq("telemetry".into()))
}

fn sample(i: u64) -> Notification {
    Notification::builder()
        .attr("service", "telemetry")
        .attr("reading", i as i64)
        .build()
}

/// Parameters of one randomized relocation scenario.
#[derive(Debug, Clone)]
struct Scenario {
    /// Number of brokers (tree generated from the seed).
    brokers: usize,
    /// Seed for the random tree and the link-delay jitter.
    seed: u64,
    /// Broker index the consumer starts at.
    start: usize,
    /// Broker index the consumer moves to.
    target: usize,
    /// Broker index of the producer.
    producer_at: usize,
    /// When the consumer moves (milliseconds).
    move_at_ms: u64,
    /// Number of publications, every 20 ms from t = 50 ms.
    publications: u64,
    /// Routing strategy.
    strategy: RoutingStrategyKind,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        3usize..9,
        any::<u64>(),
        0usize..100,
        0usize..100,
        0usize..100,
        100u64..900,
        5u64..40,
        prop_oneof![
            Just(RoutingStrategyKind::Simple),
            Just(RoutingStrategyKind::Covering),
            Just(RoutingStrategyKind::Merging),
        ],
    )
        .prop_map(
            |(brokers, seed, start, target, producer_at, move_at_ms, publications, strategy)| {
                Scenario {
                    brokers,
                    seed,
                    start: start % brokers,
                    target: target % brokers,
                    producer_at: producer_at % brokers,
                    move_at_ms,
                    publications,
                    strategy,
                }
            },
        )
}

fn run(s: &Scenario) -> (MobilitySystem, ClientId, ClientId) {
    use rand::SeedableRng;
    let mut rng = rand::rngs::StdRng::seed_from_u64(s.seed);
    let topo = Topology::random_tree(s.brokers, &mut rng);

    let config = BrokerConfig::default()
        .with_strategy(s.strategy)
        .with_movement_graph(MovementGraph::paper_example())
        .with_relocation_timeout(SimDuration::from_secs(60));
    let mut sys = SystemBuilder::new(&topo)
        .config(config)
        .link_delay(DelayModel::constant_millis(5))
        .seed(s.seed)
        .build()
        .unwrap();

    let consumer = ClientId::new(1);
    let producer = ClientId::new(2);

    let mut reachable = vec![s.start, s.target];
    reachable.dedup();
    sys.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &reachable,
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(s.start).unwrap(),
                },
            ),
            (SimTime::from_millis(2), ClientAction::Subscribe(filter())),
            (
                SimTime::from_millis(s.move_at_ms),
                ClientAction::MoveTo {
                    broker: sys.broker_node(s.target).unwrap(),
                },
            ),
        ],
    )
    .unwrap();

    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(s.producer_at).unwrap(),
        },
    )];
    for i in 0..s.publications {
        script.push((
            SimTime::from_millis(50 + i * 20),
            ClientAction::Publish(sample(i)),
        ));
    }
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[s.producer_at],
        script,
    )
    .unwrap();

    sys.run_until(SimTime::from_secs(30));
    (sys, consumer, producer)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// Completeness, exactly-once and FIFO order hold for every random
    /// topology, attachment, move time and routing strategy.
    #[test]
    fn relocation_is_always_complete_ordered_and_duplicate_free(s in scenario()) {
        let (sys, consumer, producer) = run(&s);
        let log = sys.client_log(consumer).unwrap();
        prop_assert!(log.is_clean(), "scenario {:?}: violations {:?}", s, log.violations());
        prop_assert_eq!(
            log.distinct_publisher_seqs(producer),
            (1..=s.publications).collect::<Vec<u64>>(),
            "scenario {:?}: publications missing or extra", s
        );
        prop_assert_eq!(
            log.publisher_seqs(producer),
            (1..=s.publications).collect::<Vec<u64>>(),
            "scenario {:?}: arrival order differs from publication order", s
        );
    }

    /// After the dust settles, no broker is left holding virtual-counterpart
    /// buffers, pending relocations or relocation-timeout guards for the
    /// roamed client (the guard map is reclaimed on replay completion — the
    /// 60 s timeout of these scenarios never fires within the 30 s horizon,
    /// so a leaked tag would be visible here).
    #[test]
    fn relocation_leaves_no_dangling_buffers(s in scenario()) {
        let (sys, _, _) = run(&s);
        for b in 0..sys.broker_count() {
            prop_assert_eq!(sys.broker(b).unwrap().pending_relocations(), 0,
                "broker {} still holds a pending relocation in scenario {:?}", b, s);
            prop_assert_eq!(sys.broker(b).unwrap().buffered_deliveries(), 0,
                "broker {} still buffers deliveries in scenario {:?}", b, s);
            prop_assert_eq!(sys.broker(b).unwrap().timeout_tag_count(), 0,
                "broker {} leaked a timeout guard in scenario {:?}", b, s);
        }
    }
}
