//! The mobility-aware Rebeca broker — a thin adapter over the extracted
//! mobility engine.
//!
//! [`MobileBroker`] wraps the static [`BrokerCore`] of `rebeca-broker` and
//! wires it to the two mobility layers:
//!
//! * **Physical mobility** (Section 4 of the paper) is implemented by the
//!   [`RelocationMachine`] of `rebeca-mobility`: virtual counterparts with a
//!   write-ahead [`HandoffLog`], the reactive relocation protocol (junction
//!   detection, fetch, batched replay, in-order merge at the new border
//!   broker, garbage collection at the old one) and crash recovery.  This
//!   adapter only demultiplexes messages into machine transitions and
//!   interprets the returned [`Effect`]s against the simulator's
//!   [`Context`] (sends, timers, metrics).
//! * **Logical mobility** (Section 5): location-dependent subscriptions
//!   whose per-hop filters are instantiated from `ploc(location, q_hop)`
//!   according to an [`AdaptivityPlan`], and the location-update protocol
//!   that swaps those filters hop by hop when the client moves.
//!
//! The adapter also owns the **drain queue**: with
//! [`BrokerConfig::drain_interval`] set, transit notifications are coalesced
//! and flushed through the batch matching path
//! (`BrokerCore::route_envelope_batch`) on a timer, so under load fewer,
//! larger [`Message::NotificationBatch`]es travel per link.
//!
//! All control traffic uses the ordinary [`Message`] vocabulary and travels
//! over the ordinary broker links ("pub/sub adherence").

use std::collections::BTreeMap;

use rebeca_broker::{BrokerCore, BrokerRole, ClientId, Envelope, Message, SubscriptionId};
use rebeca_filter::{Filter, LocationDependentFilter};
use rebeca_location::{AdaptivityPlan, LocationId, MovementGraph};
use rebeca_mobility::{
    Effect, HandoffLog, PersistenceConfig, RelocationMachine, RelocationPhase,
    DEFAULT_CHECKPOINT_EVERY,
};
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{Context, Incoming, Node, NodeId, SimDuration, SimTime};

/// Histogram name under which relocation hand-off latencies (ReSubscribe
/// hold to replay settle, in microseconds) are recorded.
pub const HANDOFF_LATENCY_HISTOGRAM: &str = "mobility.handoff_latency_micros";

/// Timer tag reserved for the drain-queue flush (relocation timeouts use
/// tags counted up from zero, so the top of the range never collides).
const DRAIN_TIMER_TAG: u64 = u64::MAX;

/// Per-broker state of one location-dependent subscription.
#[derive(Debug, Clone)]
struct LocSubState {
    /// The link pointing towards the consumer (a client node at the border
    /// broker, a broker link elsewhere).
    towards_consumer: NodeId,
    /// Hop distance from the consumer's border broker (0 at that broker).
    hop: usize,
    /// The subscription template with its `myloc` markers.
    template: LocationDependentFilter,
    /// The adaptivity plan assigning uncertainty steps to hops.
    plan: AdaptivityPlan,
    /// The consumer's last known location.
    location: LocationId,
    /// The currently installed instantiation of the template at this hop.
    current_filter: Filter,
}

/// Configuration shared by all brokers of a deployment.
///
/// The struct is `#[non_exhaustive]`: build it with
/// [`BrokerConfig::default`] and the `with_*` setters (or mutate the public
/// fields on a default instance) so future fields are not a breaking change.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct BrokerConfig {
    /// Routing strategy used by the static routing engine.
    pub strategy: RoutingStrategyKind,
    /// The movement graph over which `ploc` is evaluated (the location model
    /// is deployment-wide configuration).
    pub movement_graph: MovementGraph,
    /// How long the new border broker waits for a replay before it flushes
    /// its holding buffer anyway (a safety valve; the paper notes that
    /// buffering approaches guarantee completeness only "within the
    /// boundaries of time and/or space limitations").
    pub relocation_timeout: SimDuration,
    /// When set, transit notifications are queued and flushed through the
    /// batch matching path every `drain_interval` instead of being routed
    /// one at a time — fewer link messages at equal deliveries under load.
    /// `None` (the default) routes every notification immediately.
    pub drain_interval: Option<SimDuration>,
    /// Where the per-broker write-ahead handoff logs live.
    pub persistence: PersistenceConfig,
    /// Records between WAL compaction checkpoints (0 disables compaction).
    pub wal_checkpoint_every: usize,
    /// Scope relocation floods to broker links holding a covering routing
    /// entry (the default).  Disable only as an instrumentation baseline:
    /// unscoped floods send `Relocate` over every broker link, as the plain
    /// Section 4 protocol does.
    pub scoped_relocation: bool,
}

impl Default for BrokerConfig {
    fn default() -> Self {
        Self {
            strategy: RoutingStrategyKind::Covering,
            movement_graph: MovementGraph::paper_example(),
            relocation_timeout: SimDuration::from_secs(10),
            drain_interval: None,
            persistence: PersistenceConfig::InMemory,
            wal_checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
            scoped_relocation: true,
        }
    }
}

impl BrokerConfig {
    /// Sets the routing strategy.
    pub fn with_strategy(mut self, strategy: RoutingStrategyKind) -> Self {
        self.strategy = strategy;
        self
    }

    /// Sets the movement graph over which `ploc` is evaluated.
    pub fn with_movement_graph(mut self, graph: MovementGraph) -> Self {
        self.movement_graph = graph;
        self
    }

    /// Sets the holding-buffer safety-valve timeout of the relocation
    /// protocol.
    pub fn with_relocation_timeout(mut self, timeout: SimDuration) -> Self {
        self.relocation_timeout = timeout;
        self
    }

    /// Sets (or, with `None`, disables) the transit-notification drain
    /// interval.
    pub fn with_drain_interval(mut self, interval: Option<SimDuration>) -> Self {
        self.drain_interval = interval;
        self
    }

    /// Sets where the per-broker write-ahead handoff logs live.
    pub fn with_persistence(mut self, persistence: PersistenceConfig) -> Self {
        self.persistence = persistence;
        self
    }

    /// Sets the number of WAL records between compaction checkpoints
    /// (0 disables compaction).
    pub fn with_wal_checkpoint_every(mut self, records: usize) -> Self {
        self.wal_checkpoint_every = records;
        self
    }

    /// Enables or disables covering-scoped relocation floods.
    pub fn with_scoped_relocation(mut self, scoped: bool) -> Self {
        self.scoped_relocation = scoped;
        self
    }
}

/// A Rebeca broker extended with the paper's mobility support.
#[derive(Debug, Clone)]
pub struct MobileBroker {
    core: BrokerCore,
    config: BrokerConfig,
    /// The extracted relocation engine (state machine + write-ahead log).
    machine: RelocationMachine,
    /// Location-dependent subscription state per subscription id.
    loc_subs: BTreeMap<SubscriptionId, LocSubState>,
    /// Coalescing queue for transit notifications, keyed by arrival link
    /// (the routing exclude differs per source).
    drain_queue: BTreeMap<NodeId, Vec<Envelope>>,
    /// Whether a drain-flush timer is currently armed.
    drain_armed: bool,
    /// Streams currently held at this (new border) broker and when the hold
    /// began — settling them feeds the hand-off latency histogram.  A plain
    /// vector: relocations in flight at one broker are few.
    holding_since: Vec<((ClientId, Filter), SimTime)>,
    /// When this broker last compacted its WAL (observed via the log's
    /// checkpoint counter; `None` until the first compaction).
    last_checkpoint_at: Option<SimTime>,
    /// WAL lifetime-append count at the last observation — diffed after
    /// every event to journal `wal.append` without touching the log's
    /// append path.
    wal_appends_seen: u64,
    /// WAL checkpoint count at the last observation.
    wal_checkpoints_seen: u64,
    /// Set by [`MobileBroker::recover`]; the first handled event journals
    /// it as a `wal.recovered` event (a restarted node has no live metrics
    /// context at construction time).
    recovery_note: Option<String>,
}

impl MobileBroker {
    /// Creates a mobility-aware broker with a fresh in-memory handoff log.
    pub fn new(
        id: NodeId,
        role: BrokerRole,
        broker_links: Vec<NodeId>,
        config: BrokerConfig,
    ) -> Self {
        let log = HandoffLog::in_memory().checkpoint_every(config.wal_checkpoint_every);
        Self::with_log(id, role, broker_links, config, log)
    }

    /// Creates a mobility-aware broker over an explicit handoff log (the
    /// deployment facade passes per-broker logs whose backends it keeps
    /// handles to, so the "disk" survives a broker crash).
    pub fn with_log(
        id: NodeId,
        role: BrokerRole,
        broker_links: Vec<NodeId>,
        config: BrokerConfig,
        log: HandoffLog,
    ) -> Self {
        let mut machine = RelocationMachine::new(config.relocation_timeout, log);
        machine.set_scoped_flood(config.scoped_relocation);
        let wal_appends_seen = machine.log().appends_total();
        let wal_checkpoints_seen = machine.log().checkpoints_total();
        Self {
            core: BrokerCore::new(id, role, broker_links, config.strategy),
            config,
            machine,
            loc_subs: BTreeMap::new(),
            drain_queue: BTreeMap::new(),
            drain_armed: false,
            holding_since: Vec::new(),
            last_checkpoint_at: None,
            wal_appends_seen,
            wal_checkpoints_seen,
            recovery_note: None,
        }
    }

    /// Restarts a broker from its write-ahead handoff log: the machine and
    /// the mobility-relevant parts of the static broker (disconnected
    /// client records, their routing entries, sequence watermarks, buffered
    /// counterparts) are reconstructed exactly.  Returns the broker plus
    /// the timer tags of recovered relocation holdings; the caller must
    /// re-arm each with the configured relocation timeout.
    pub fn recover(
        id: NodeId,
        role: BrokerRole,
        broker_links: Vec<NodeId>,
        config: BrokerConfig,
        log: HandoffLog,
    ) -> (Self, Vec<u64>) {
        let mut core = BrokerCore::new(id, role, broker_links, config.strategy);
        let (mut machine, tags) =
            RelocationMachine::recover(config.relocation_timeout, log, &mut core);
        machine.set_scoped_flood(config.scoped_relocation);
        let recovery_note = Some(format!(
            "broker={id} generation={} wal_depth={} rearmed_holdings={}",
            machine.generation(),
            machine.log().depth(),
            tags.len()
        ));
        let wal_appends_seen = machine.log().appends_total();
        let wal_checkpoints_seen = machine.log().checkpoints_total();
        (
            Self {
                core,
                config,
                machine,
                loc_subs: BTreeMap::new(),
                drain_queue: BTreeMap::new(),
                drain_armed: false,
                holding_since: Vec::new(),
                last_checkpoint_at: None,
                wal_appends_seen,
                wal_checkpoints_seen,
                recovery_note,
            },
            tags,
        )
    }

    /// Read access to the wrapped static broker.
    pub fn core(&self) -> &BrokerCore {
        &self.core
    }

    /// The configuration the broker was created with.
    pub fn config(&self) -> &BrokerConfig {
        &self.config
    }

    /// Read access to the relocation engine.
    pub fn machine(&self) -> &RelocationMachine {
        &self.machine
    }

    /// Number of `(client, filter)` streams currently buffered by virtual
    /// counterparts at this broker.
    pub fn counterpart_count(&self) -> usize {
        self.machine.counterpart_count()
    }

    /// Total number of deliveries currently buffered by virtual counterparts.
    pub fn buffered_deliveries(&self) -> usize {
        self.machine.buffered_deliveries()
    }

    /// Number of relocations currently waiting for their replay at this
    /// broker.
    pub fn pending_relocations(&self) -> usize {
        self.machine.pending_relocations()
    }

    /// Number of live relocation-timeout guards (zero once every relocation
    /// has settled — guards of completed relocations are reclaimed, not
    /// leaked).
    pub fn timeout_tag_count(&self) -> usize {
        self.machine.timeout_tag_count()
    }

    /// The relocation phase of a stream at this broker.
    pub fn relocation_phase(&self, client: ClientId, filter: &Filter) -> RelocationPhase {
        self.machine.phase(client, filter)
    }

    /// Number of transit notifications currently queued for the next drain
    /// flush.
    pub fn drain_queue_len(&self) -> usize {
        self.drain_queue.values().map(Vec::len).sum()
    }

    /// Number of location-dependent subscriptions installed at this broker.
    pub fn loc_sub_count(&self) -> usize {
        self.loc_subs.len()
    }

    /// The currently installed filter for a location-dependent subscription,
    /// if this broker participates in it.
    pub fn loc_sub_filter(&self, sub_id: SubscriptionId) -> Option<&Filter> {
        self.loc_subs.get(&sub_id).map(|s| &s.current_filter)
    }

    /// The consumer location this broker last recorded for a
    /// location-dependent subscription.
    pub fn loc_sub_location(&self, sub_id: SubscriptionId) -> Option<LocationId> {
        self.loc_subs.get(&sub_id).map(|s| s.location)
    }

    /// Number of entries in the content-based routing table.
    pub fn routing_entries(&self) -> usize {
        self.core.engine().table_size()
    }

    /// Number of subscription subgroups (distinct filters) in the routing
    /// table; `routing_entries() / routing_subgroups()` is the table's
    /// compaction ratio.
    pub fn routing_subgroups(&self) -> usize {
        self.core.engine().subgroup_count()
    }

    /// When this broker last compacted its WAL (`None` until the first
    /// compaction of this incarnation).
    pub fn last_checkpoint_at(&self) -> Option<SimTime> {
        self.last_checkpoint_at
    }

    // ------------------------------------------------------------------
    // Observability
    // ------------------------------------------------------------------

    /// Starts the hand-off latency clock for a stream that entered a
    /// holding phase with this ReSubscribe, and journals the transition.
    fn note_resubscribed(
        &mut self,
        client: ClientId,
        filter: Filter,
        ctx: &mut Context<'_, Message>,
    ) {
        let phase = self.machine.phase(client, &filter);
        if !matches!(
            phase,
            RelocationPhase::Holding | RelocationPhase::AwaitingReplay
        ) {
            return;
        }
        let key = (client, filter);
        if !self.holding_since.iter().any(|(k, _)| *k == key) {
            if ctx.metrics().journal_enabled() {
                let now = ctx.now();
                let detail = format!("broker={} client={} phase={phase:?}", ctx.self_id(), key.0);
                ctx.metrics()
                    .record_event(now, "relocation.holding", detail);
            }
            let now = ctx.now();
            self.holding_since.push((key, now));
        }
    }

    /// Settles the hand-off latency clock for streams that left their
    /// holding phase: records the hold duration into the
    /// [`HANDOFF_LATENCY_HISTOGRAM`] and journals the transition under
    /// `kind`.
    ///
    /// `only` scopes the phase re-check to one client's streams — the
    /// per-replay path passes the replayed client so thousands of
    /// concurrent relocations do not turn each settle into a full
    /// phase-probe sweep of every held stream (`phase` walks the machine's
    /// relocation map with a filter comparison; the guard below is an
    /// integer compare).  `None` sweeps everything, for the timeout-flush
    /// path where the machine may have flushed arbitrary streams.
    fn note_settled(
        &mut self,
        ctx: &mut Context<'_, Message>,
        kind: &'static str,
        only: Option<ClientId>,
    ) {
        if self.holding_since.is_empty() {
            return;
        }
        let now = ctx.now();
        let mut settled = Vec::new();
        self.holding_since.retain(|((client, filter), since)| {
            if only.is_some_and(|c| c != *client) {
                return true;
            }
            let phase = self.machine.phase(*client, filter);
            if matches!(
                phase,
                RelocationPhase::Holding | RelocationPhase::AwaitingReplay
            ) {
                true
            } else {
                settled.push((*client, now.since(*since).as_micros()));
                false
            }
        });
        for (client, latency) in settled {
            ctx.metrics().observe(HANDOFF_LATENCY_HISTOGRAM, latency);
            if ctx.metrics().journal_enabled() {
                let detail = format!(
                    "broker={} client={client} latency_micros={latency}",
                    ctx.self_id()
                );
                ctx.metrics().record_event(now, kind, detail);
            }
        }
    }

    /// Diffs the WAL's lifetime counters against the last observation and
    /// journals `wal.append` / `wal.checkpoint` / `wal.recovered` events.
    /// Called once per handled event: the steady-state cost is two integer
    /// compares, so the notification hot path stays flat.
    fn note_wal(&mut self, ctx: &mut Context<'_, Message>) {
        if let Some(note) = self.recovery_note.take() {
            ctx.metrics().incr("wal.recoveries");
            let now = ctx.now();
            ctx.metrics().record_event(now, "wal.recovered", note);
        }
        let appends = self.machine.log().appends_total();
        if appends != self.wal_appends_seen {
            let grew = appends - self.wal_appends_seen;
            self.wal_appends_seen = appends;
            ctx.metrics().add("wal.appends", grew);
            if ctx.metrics().journal_enabled() {
                let now = ctx.now();
                let detail = format!(
                    "broker={} records={grew} depth={}",
                    ctx.self_id(),
                    self.machine.log().depth()
                );
                ctx.metrics().record_event(now, "wal.append", detail);
            }
        }
        let checkpoints = self.machine.log().checkpoints_total();
        if checkpoints != self.wal_checkpoints_seen {
            let grew = checkpoints - self.wal_checkpoints_seen;
            self.wal_checkpoints_seen = checkpoints;
            self.last_checkpoint_at = Some(ctx.now());
            ctx.metrics().add("wal.checkpoints", grew);
            if ctx.metrics().journal_enabled() {
                let now = ctx.now();
                let detail = format!(
                    "broker={} depth={}",
                    ctx.self_id(),
                    self.machine.log().depth()
                );
                ctx.metrics().record_event(now, "wal.checkpoint", detail);
            }
        }
    }

    /// Journals a relocation-protocol control message (old-broker side of
    /// the hand-off: Relocate repoints routing, Fetch starts the replay).
    fn note_control(
        &mut self,
        kind: &'static str,
        client: ClientId,
        ctx: &mut Context<'_, Message>,
    ) {
        if ctx.metrics().journal_enabled() {
            let now = ctx.now();
            let detail = format!("broker={} client={client}", ctx.self_id());
            ctx.metrics().record_event(now, kind, detail);
        }
    }

    // ------------------------------------------------------------------
    // Shared helpers
    // ------------------------------------------------------------------

    /// Runs a static-broker handler and applies the mobility
    /// post-processing (holding interception and counterpart absorption).
    fn run_core(&mut self, from: NodeId, message: Message) -> Vec<(NodeId, Message)> {
        let out = match self.core.handle_message(from, message) {
            Ok(out) => out,
            Err(unhandled) => {
                unreachable!("static broker rejected a non-mobility message: {unhandled:?}")
            }
        };
        let out = self.machine.intercept_holding(out);
        self.machine.absorb_parked(&mut self.core);
        out
    }

    /// Interprets machine effects against the simulation context, collecting
    /// outgoing messages.
    fn apply_effects(
        &mut self,
        effects: Vec<Effect>,
        ctx: &mut Context<'_, Message>,
        out: &mut Vec<(NodeId, Message)>,
    ) {
        for effect in effects {
            match effect {
                Effect::Send(to, message) => out.push((to, message)),
                Effect::SetTimer(delay, tag) => ctx.set_timer(delay, tag),
                Effect::Incr(name) => ctx.metrics().incr(name),
                Effect::Add(name, amount) => ctx.metrics().add(name, amount),
            }
        }
    }

    // ------------------------------------------------------------------
    // Batch draining
    // ------------------------------------------------------------------

    /// Queues transit envelopes for the next drain flush, arming the flush
    /// timer when the queue was empty.
    fn enqueue_for_drain(
        &mut self,
        from: NodeId,
        envelopes: Vec<Envelope>,
        interval: SimDuration,
        ctx: &mut Context<'_, Message>,
    ) {
        ctx.metrics()
            .add("broker.drain_queued", envelopes.len() as u64);
        self.drain_queue.entry(from).or_default().extend(envelopes);
        if !self.drain_armed {
            self.drain_armed = true;
            ctx.set_timer(interval, DRAIN_TIMER_TAG);
        }
    }

    /// Flushes the coalescing queue through the batch matching path: one
    /// `route_envelope_batch` call per arrival link, survivors re-grouped
    /// into per-link [`Message::NotificationBatch`]es by the engine.
    fn drain_queued(&mut self, ctx: &mut Context<'_, Message>) -> Vec<(NodeId, Message)> {
        self.drain_armed = false;
        let queues = std::mem::take(&mut self.drain_queue);
        let mut out = Vec::new();
        for (from, envelopes) in queues {
            ctx.metrics().add("broker.drained", envelopes.len() as u64);
            let routed = self.core.route_envelope_batch(envelopes, Some(from));
            let routed = self.machine.intercept_holding(routed);
            self.machine.absorb_parked(&mut self.core);
            out.extend(routed);
        }
        ctx.metrics().incr("broker.drain_flush");
        out
    }

    /// Flushes the drain queue ahead of a mobility control message.
    ///
    /// The relocation protocol relies on per-link FIFO order between
    /// notifications and the control messages that chase them (a
    /// notification forwarded before a `Relocate`/`Fetch` must reach the
    /// old border broker before it, so it lands in the counterpart and not
    /// in the void after garbage collection).  Coalescing would let control
    /// messages overtake queued notifications, so the queue is flushed —
    /// and the flushed messages emitted — *before* the control message is
    /// handled, restoring the FIFO relationship.
    fn flush_drain_for_control(
        &mut self,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        if self.drain_queue.is_empty() {
            return Vec::new();
        }
        ctx.metrics().incr("broker.drain_control_flush");
        self.drain_queued(ctx)
    }

    // ------------------------------------------------------------------
    // Logical mobility (Section 5)
    // ------------------------------------------------------------------

    /// Installs (or refreshes) the filter of a location-dependent
    /// subscription at this hop and returns the old filter, if any.
    fn install_loc_filter(&mut self, sub_id: SubscriptionId, state: LocSubState) -> Option<Filter> {
        let previous = self.loc_subs.insert(sub_id, state.clone());
        let towards = state.towards_consumer;
        if let Some(prev) = &previous {
            self.core
                .engine_mut()
                .table_mut()
                .remove(&prev.current_filter, &prev.towards_consumer);
            if let Some(client) = self.core.client_by_node(prev.towards_consumer) {
                if let Some(record) = self.core.client_mut(client) {
                    record.subscriptions.retain(|f| f != &prev.current_filter);
                }
            }
        }
        self.core
            .engine_mut()
            .table_mut()
            .insert(state.current_filter.clone(), towards);
        if let Some(client) = self.core.client_by_node(towards) {
            if let Some(record) = self.core.client_mut(client) {
                if !record.subscriptions.contains(&state.current_filter) {
                    record.subscriptions.push(state.current_filter.clone());
                }
            }
        }
        previous.map(|p| p.current_filter)
    }

    /// Handles a location-dependent subscription entering or travelling
    /// through the network.
    #[allow(clippy::too_many_arguments)] // mirrors the LocSubscribe message fields
    fn handle_loc_subscribe(
        &mut self,
        sub_id: SubscriptionId,
        template: LocationDependentFilter,
        plan: AdaptivityPlan,
        location: LocationId,
        hop: usize,
        from: NodeId,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        // If the subscription comes directly from a local client, make sure
        // the client is attached.
        if self.core.client_by_node(from).is_none() && !self.core.broker_links().contains(&from) {
            self.core.handle_attach(sub_id.client, from);
        }

        let q = plan.step_at(hop);
        let locations = self
            .config
            .movement_graph
            .ploc(location, q)
            .into_iter()
            .map(|l| l.raw());
        let current_filter = template.instantiate(locations);
        self.install_loc_filter(
            sub_id,
            LocSubState {
                towards_consumer: from,
                hop,
                template: template.clone(),
                plan: plan.clone(),
                location,
                current_filter,
            },
        );
        ctx.metrics().incr("logical.subscription_installed");

        self.core
            .broker_links_except(from)
            .into_iter()
            .map(|link| {
                ctx.metrics().incr("logical.subscribe_forwarded");
                (
                    link,
                    Message::LocSubscribe {
                        sub_id,
                        template: template.clone(),
                        plan: plan.clone(),
                        location,
                        hop: hop + 1,
                    },
                )
            })
            .collect()
    }

    /// Handles the retraction of a location-dependent subscription.
    fn handle_loc_unsubscribe(
        &mut self,
        sub_id: SubscriptionId,
        from: NodeId,
    ) -> Vec<(NodeId, Message)> {
        if let Some(state) = self.loc_subs.remove(&sub_id) {
            self.core
                .engine_mut()
                .table_mut()
                .remove(&state.current_filter, &state.towards_consumer);
            if let Some(client) = self.core.client_by_node(state.towards_consumer) {
                if let Some(record) = self.core.client_mut(client) {
                    record.subscriptions.retain(|f| f != &state.current_filter);
                }
            }
        }
        self.core
            .broker_links_except(from)
            .into_iter()
            .map(|link| (link, Message::LocUnsubscribe { sub_id }))
            .collect()
    }

    /// Handles a location update travelling along the delivery paths: the
    /// broker swaps its instantiated filter (unsubscribing vanished
    /// locations, subscribing new ones) and forwards the update.
    fn handle_location_update(
        &mut self,
        sub_id: SubscriptionId,
        location: LocationId,
        hop: usize,
        from: NodeId,
        ctx: &mut Context<'_, Message>,
    ) -> Vec<(NodeId, Message)> {
        let Some(state) = self.loc_subs.get(&sub_id).cloned() else {
            // Not participating in this subscription (e.g. the update reached
            // a broker the subscription never covered): nothing to do.
            return Vec::new();
        };
        let q = state.plan.step_at(state.hop);
        let locations = self
            .config
            .movement_graph
            .ploc(location, q)
            .into_iter()
            .map(|l| l.raw());
        let new_filter = state.template.instantiate(locations);
        let unchanged = new_filter == state.current_filter;
        self.install_loc_filter(
            sub_id,
            LocSubState {
                location,
                current_filter: new_filter,
                ..state
            },
        );
        if unchanged {
            ctx.metrics().incr("logical.update_noop");
        } else {
            ctx.metrics().incr("logical.filter_swapped");
        }

        self.core
            .broker_links_except(from)
            .into_iter()
            .map(|link| {
                ctx.metrics().incr("logical.update_forwarded");
                (
                    link,
                    Message::LocationUpdate {
                        sub_id,
                        location,
                        hop: hop + 1,
                    },
                )
            })
            .collect()
    }
}

impl Node for MobileBroker {
    type Message = Message;

    fn handle(&mut self, ctx: &mut Context<'_, Message>, event: Incoming<Message>) {
        let mut out = Vec::new();
        match event {
            Incoming::Timer {
                tag: DRAIN_TIMER_TAG,
            } => {
                out = self.drain_queued(ctx);
            }
            Incoming::Timer { tag } => {
                let effects = self.machine.on_timeout(&mut self.core, tag);
                self.apply_effects(effects, ctx, &mut out);
                // A fired timeout may have flushed held streams without a
                // replay — settle their latency clocks under the flush kind.
                self.note_settled(ctx, "relocation.timeout_flush", None);
            }
            Incoming::Message { from, message } => {
                ctx.metrics().incr(message.rx_counter());
                match message {
                    Message::ReSubscribe {
                        client,
                        filter,
                        last_seq,
                    } => {
                        out = self.flush_drain_for_control(ctx);
                        let effects = self.machine.on_resubscribe(
                            &mut self.core,
                            client,
                            filter.clone(),
                            last_seq,
                            from,
                        );
                        self.apply_effects(effects, ctx, &mut out);
                        self.note_resubscribed(client, filter, ctx);
                    }
                    Message::Relocate {
                        client,
                        filter,
                        last_seq,
                        new_broker,
                    } => {
                        out = self.flush_drain_for_control(ctx);
                        let effects = self.machine.on_relocate(
                            &mut self.core,
                            client,
                            filter,
                            last_seq,
                            new_broker,
                            from,
                        );
                        self.apply_effects(effects, ctx, &mut out);
                        self.note_control("relocation.relocate", client, ctx);
                    }
                    Message::Fetch {
                        client,
                        filter,
                        last_seq,
                        junction,
                    } => {
                        out = self.flush_drain_for_control(ctx);
                        let effects = self.machine.on_fetch(
                            &mut self.core,
                            client,
                            filter,
                            last_seq,
                            junction,
                            from,
                        );
                        self.apply_effects(effects, ctx, &mut out);
                        self.note_control("relocation.fetch", client, ctx);
                    }
                    Message::Replay {
                        client,
                        filter,
                        deliveries,
                    } => {
                        out = self.flush_drain_for_control(ctx);
                        let effects = self.machine.on_replay(
                            &mut self.core,
                            client,
                            filter,
                            deliveries,
                            from,
                        );
                        self.apply_effects(effects, ctx, &mut out);
                        // The replay settles the holding phase; record the
                        // hand-off latency.
                        self.note_settled(ctx, "relocation.settled", Some(client));
                    }
                    Message::Detach { client } => {
                        // Queued notifications arrived before the detach:
                        // deliver them first, then let the static broker
                        // mark the client disconnected and the machine open
                        // durable counterparts for what is left behind.
                        out = self.flush_drain_for_control(ctx);
                        out.extend(self.run_core(from, Message::Detach { client }));
                        self.machine.on_detach(&self.core, client);
                        self.note_control("relocation.detach", client, ctx);
                    }
                    Message::Notification(envelope) if self.config.drain_interval.is_some() => {
                        let interval = self.config.drain_interval.expect("checked above");
                        self.enqueue_for_drain(from, vec![envelope], interval, ctx);
                    }
                    Message::NotificationBatch(envelopes)
                        if self.config.drain_interval.is_some() =>
                    {
                        let interval = self.config.drain_interval.expect("checked above");
                        self.enqueue_for_drain(from, envelopes, interval, ctx);
                    }
                    Message::LocSubscribe {
                        sub_id,
                        template,
                        plan,
                        location,
                        hop,
                    } => {
                        out = self
                            .handle_loc_subscribe(sub_id, template, plan, location, hop, from, ctx);
                    }
                    Message::LocUnsubscribe { sub_id } => {
                        out = self.handle_loc_unsubscribe(sub_id, from);
                    }
                    Message::LocationUpdate {
                        sub_id,
                        location,
                        hop,
                    } => {
                        out = self.handle_location_update(sub_id, location, hop, from, ctx);
                    }
                    other => out = self.run_core(from, other),
                }
            }
        }
        self.note_wal(ctx);
        for (to, message) in out {
            ctx.metrics().incr(message.tx_counter());
            ctx.send(to, message);
        }
    }
}
