//! Observability core for the Rebeca mobility middleware.
//!
//! This crate is dependency-free on purpose: it sits *below* the simulator
//! (`rebeca-sim` embeds these types in its `Metrics` store) and *below* the
//! transport (`rebeca-net` ships [`StatusReport`]s over the wire), so it can
//! only depend on `std`.  Three pieces live here:
//!
//! * [`Histogram`] — a fixed-bucket log2 latency histogram: 64 buckets, one
//!   per bit width, mergeable across threads and nodes by plain bucket-wise
//!   addition, with p50/p95/p99 extraction.  Recording is two integer ops
//!   and an array increment — cheap enough for hot paths.
//! * [`ObsEvent`] / [`EventJournal`] — a bounded per-node structured event
//!   ring (relocation phase transitions, WAL appends and checkpoints, link
//!   dial/drop/heartbeat) with monotonic sequence numbers, so an operator
//!   tail can resume from the last sequence it saw and detect gaps.
//! * [`StatusReport`] / [`BrokerStatus`] / [`LinkStatus`] — the cluster
//!   status plane: the answer to a `StatusRequest` admin frame and the
//!   return value of the `Driver::status()` surface, identical in shape
//!   whether it comes from a live TCP broker or the deterministic
//!   simulator.
//! * [`TraceContext`] / [`SpanRecord`] / [`SpanBuffer`] / [`TraceReport`] —
//!   causal distributed tracing: a per-publication (or per-relocation)
//!   context propagated on envelopes, deterministic seeded sampling
//!   ([`sample_publication`] / [`sample_relocation`] — a pure hash of
//!   publisher+seq, so every driver samples the *same* traffic), span
//!   records appended to a bounded per-broker ring, and the causal-tree
//!   reassembly ([`render_trace_tree`]) shared by `rebeca-ctl trace` and
//!   the deterministic acceptance tests.
//!
//! All report types render themselves as JSON via hand-rolled `to_json`
//! methods (the workspace's `serde` is an offline no-op shim); the field
//! names are a stable operator interface documented in the README's
//! "Observability" section.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::collections::VecDeque;
use std::fmt::Write as _;

/// Number of buckets in a [`Histogram`]: one per bit width of a `u64`.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// Default capacity of an [`EventJournal`] ring.
pub const DEFAULT_JOURNAL_CAPACITY: usize = 1024;

/// A fixed-bucket log2 histogram over `u64` samples (latencies in
/// microseconds, sizes, …).
///
/// Bucket `0` holds the value `0`; bucket `i > 0` holds the values with bit
/// width `i`, i.e. the range `[2^(i-1), 2^i - 1]`.  Quantiles are reported
/// as the *upper bound* of the bucket containing the requested rank, so
/// they never under-estimate.  Two histograms merge by bucket-wise
/// addition, which is how per-thread and per-node recordings aggregate into
/// a cluster-wide view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
        }
    }
}

/// The bucket index a value falls into (its bit width, 0 for 0).
fn bucket_index(value: u64) -> usize {
    (u64::BITS - value.leading_zeros()) as usize
}

/// The inclusive upper bound of a bucket.
fn bucket_upper(index: usize) -> u64 {
    match index {
        0 => 0,
        63.. => u64::MAX,
        i => (1u64 << i) - 1,
    }
}

/// The inclusive lower bound of a bucket.
fn bucket_lower(index: usize) -> u64 {
    match index {
        0 => 0,
        i => 1u64 << (i - 1),
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value).min(HISTOGRAM_BUCKETS - 1)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// `true` when nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The raw per-bucket counts (index = bit width of the value).
    pub fn bucket_counts(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Rebuilds a histogram from raw bucket counts and a sample sum — the
    /// wire-decode constructor.  The sample count is derived.
    pub fn from_parts(buckets: [u64; HISTOGRAM_BUCKETS], sum: u64) -> Self {
        let count = buckets.iter().sum();
        Self {
            buckets,
            count,
            sum,
        }
    }

    /// Adds another histogram's samples into this one (bucket-wise).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += *theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// The value below which a fraction `q` (in `0.0..=1.0`) of the samples
    /// fall, reported as the containing bucket's upper bound.  Returns 0
    /// for an empty histogram.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// The median (bucket upper bound).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// The 95th percentile (bucket upper bound).
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// The 99th percentile (bucket upper bound).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// The non-empty buckets as `(lower, upper, count)` triples.
    pub fn nonzero_buckets(&self) -> impl Iterator<Item = (u64, u64, u64)> + '_ {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (bucket_lower(i), bucket_upper(i), n))
    }

    /// Renders the histogram as a JSON object:
    /// `{"count":..,"sum":..,"p50":..,"p95":..,"p99":..,"buckets":[[lo,hi,n],..]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"count\":{},\"sum\":{},\"p50\":{},\"p95\":{},\"p99\":{},\"buckets\":[",
            self.count,
            self.sum,
            self.p50(),
            self.p95(),
            self.p99()
        );
        for (i, (lo, hi, n)) in self.nonzero_buckets().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "[{lo},{hi},{n}]");
        }
        out.push_str("]}");
        out
    }
}

/// One structured journal entry: something observable happened on this node.
///
/// `kind` follows the same dotted naming convention as the counters
/// (`relocation.holding`, `wal.checkpoint`, `link.heartbeat`, …); `detail`
/// is free-form `key=value` text for the operator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObsEvent {
    /// Monotonic per-journal sequence number (gaps mean the ring evicted
    /// entries between two tails).
    pub seq: u64,
    /// Node-local timestamp in microseconds (virtual time under the
    /// simulator, wall time since process start under the TCP driver).
    pub at_micros: u64,
    /// Dotted event kind, e.g. `"relocation.settled"`.
    pub kind: String,
    /// Free-form `key=value` detail text.
    pub detail: String,
}

impl ObsEvent {
    /// Renders the event as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"at_micros\":{},\"kind\":\"{}\",\"detail\":\"{}\"}}",
            self.seq,
            self.at_micros,
            json_escape(&self.kind),
            json_escape(&self.detail)
        )
    }
}

/// A bounded ring of [`ObsEvent`]s with monotonic sequence numbers.
///
/// The ring keeps the most recent `capacity` events; sequence numbers keep
/// counting across evictions, so a tailing client that remembers the last
/// sequence it saw can both resume (`events_after`) and detect that it
/// missed entries (a gap in the numbers).  A capacity of 0 disables the
/// journal entirely — [`EventJournal::record`] becomes a no-op and
/// [`EventJournal::enabled`] lets callers skip building the detail string,
/// which is the cheap guard the hot paths use.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EventJournal {
    events: VecDeque<ObsEvent>,
    capacity: usize,
    next_seq: u64,
}

impl Default for EventJournal {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_JOURNAL_CAPACITY)
    }
}

impl EventJournal {
    /// Creates a journal retaining at most `capacity` events (0 disables).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            events: VecDeque::new(),
            capacity,
            next_seq: 0,
        }
    }

    /// `true` when recording is enabled (capacity > 0).  Check this before
    /// formatting an expensive detail string.
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Changes the retention capacity (0 disables and drops all entries).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.events.len() > capacity {
            self.events.pop_front();
        }
    }

    /// Appends an event, evicting the oldest entry when full.  Returns the
    /// assigned sequence number, or `None` when the journal is disabled.
    pub fn record(
        &mut self,
        at_micros: u64,
        kind: impl Into<String>,
        detail: impl Into<String>,
    ) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        if self.events.len() == self.capacity {
            self.events.pop_front();
        }
        self.events.push_back(ObsEvent {
            seq,
            at_micros,
            kind: kind.into(),
            detail: detail.into(),
        });
        Some(seq)
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &ObsEvent> {
        self.events.iter()
    }

    /// The retained events with a sequence number strictly greater than
    /// `seq` — the resumable-tail cursor.
    pub fn events_after(&self, seq: u64) -> impl Iterator<Item = &ObsEvent> {
        self.events.iter().filter(move |e| e.seq > seq)
    }

    /// The sequence number the next recorded event will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of retained events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when no events are retained.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Drops every retained event, keeping the capacity and the sequence
    /// counter (a tail spanning the clear still sees monotonic numbers).
    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// Appends another journal's retained events into this one, assigning
    /// *fresh* sequence numbers from this journal (per-thread journals use
    /// independent counters, so the original numbers would collide).
    pub fn merge(&mut self, other: &EventJournal) {
        for event in other.events() {
            self.record(event.at_micros, event.kind.clone(), event.detail.clone());
        }
    }
}

/// Liveness of one broker↔peer link as seen from the reporting broker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkStatus {
    /// Peer broker index.
    pub peer: u64,
    /// `true` when the link currently has a live connection (always `true`
    /// under the in-process drivers, whose links cannot drop).
    pub connected: bool,
    /// Milliseconds since the peer was last heard from (heartbeat or any
    /// frame).  `None` when the peer has never been heard from, or under
    /// the in-process drivers, which have no heartbeats.
    pub last_heartbeat_age_ms: Option<u64>,
    /// Milliseconds since the link lost its connection (writer redialing or
    /// heartbeat silence past the liveness budget).  `None` while the link
    /// is connected — and always under the in-process drivers.
    pub down_since_ms: Option<u64>,
    /// Cumulative redial attempts the local writer has made towards this
    /// peer over the link's lifetime (0 under the in-process drivers).
    pub redial_attempts: u64,
}

impl LinkStatus {
    /// Renders the link status as a JSON object.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"peer\":{},\"connected\":{},\"last_heartbeat_age_ms\":{},\
             \"down_since_ms\":{},\"redial_attempts\":{}}}",
            self.peer,
            self.connected,
            json_opt_u64(self.last_heartbeat_age_ms),
            json_opt_u64(self.down_since_ms),
            self.redial_attempts
        )
    }
}

/// The status of one broker: routing and WAL state, relocation activity,
/// link liveness.  One entry per hosted broker in a [`StatusReport`].
#[derive(Debug, Clone, PartialEq, Default)]
pub struct BrokerStatus {
    /// Broker index (== its node id in the cluster topology).
    pub broker: u64,
    /// Restart epoch: how many incarnations this broker has had.  Under the
    /// TCP driver this is the larger of the process `--epoch` flag and the
    /// WAL recovery generation; under the in-process drivers it is the
    /// recovery generation alone.
    pub restart_epoch: u64,
    /// WAL recovery generation (0 for a broker that never recovered).
    pub generation: u64,
    /// Number of entries in the content-based routing table.
    pub routing_entries: u64,
    /// Number of subscription subgroups (distinct filters) in the routing
    /// table — the size the predicate index actually pays.  The
    /// entries-per-subgroup ratio `routing_entries / routing_subgroups`
    /// is the table's compaction factor.
    pub routing_subgroups: u64,
    /// Number of live records in the handoff write-ahead log.
    pub wal_depth: u64,
    /// Records appended since the last checkpoint compaction.
    pub wal_since_checkpoint: u64,
    /// Milliseconds since the last checkpoint compaction (`None` when the
    /// broker never checkpointed).
    pub last_checkpoint_age_ms: Option<u64>,
    /// Active mobility counterparts (paper Section 4: stand-ins buffering
    /// for relocating clients).
    pub counterparts: u64,
    /// Notifications currently buffered for relocating clients.
    pub buffered_deliveries: u64,
    /// Relocations currently in flight at this broker.
    pub pending_relocations: u64,
    /// Publications currently retained for time-aware subscriptions
    /// (0 when retention is not configured).
    pub retained_publications: u64,
    /// Segments (archived + live) of the retention store (0 when retention
    /// is not configured).
    pub retained_segments: u64,
    /// Milliseconds since the oldest retained publication was appended
    /// (`None` when nothing is retained).
    pub oldest_retained_age_ms: Option<u64>,
    /// Counterpart streams expired by the lease sweep over this broker
    /// incarnation's lifetime.
    pub expired_leases: u64,
    /// The `mobility.*` counters, in name order.
    pub relocations: Vec<(String, u64)>,
    /// Relocation hand-off latency (ReSubscribe hold to replay settle), in
    /// microseconds.  Node-local: per-process under the TCP driver,
    /// cluster-wide under the in-process drivers (one shared metrics
    /// store); merge across brokers for the cluster view.
    pub handoff_latency_micros: Histogram,
    /// Per-link liveness, one entry per topology neighbour.
    pub links: Vec<LinkStatus>,
}

impl BrokerStatus {
    /// Renders the broker status as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"broker\":{},\"restart_epoch\":{},\"generation\":{},\"routing_entries\":{},\
             \"routing_subgroups\":{},\
             \"wal_depth\":{},\"wal_since_checkpoint\":{},\"last_checkpoint_age_ms\":{},\
             \"counterparts\":{},\"buffered_deliveries\":{},\"pending_relocations\":{},\
             \"retained_publications\":{},\"retained_segments\":{},\
             \"oldest_retained_age_ms\":{},\"expired_leases\":{},",
            self.broker,
            self.restart_epoch,
            self.generation,
            self.routing_entries,
            self.routing_subgroups,
            self.wal_depth,
            self.wal_since_checkpoint,
            json_opt_u64(self.last_checkpoint_age_ms),
            self.counterparts,
            self.buffered_deliveries,
            self.pending_relocations,
            self.retained_publications,
            self.retained_segments,
            json_opt_u64(self.oldest_retained_age_ms),
            self.expired_leases,
        );
        out.push_str("\"relocations\":{");
        for (i, (name, value)) in self.relocations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{}\":{}", json_escape(name), value);
        }
        let _ = write!(
            out,
            "}},\"handoff_latency_micros\":{},\"links\":[",
            self.handoff_latency_micros.to_json()
        );
        for (i, link) in self.links.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&link.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// The answer to a status request: everything one driver (one process under
/// TCP deployment, the whole cluster under the in-process drivers) knows
/// about its hosted brokers, plus an optional slice of the event journal.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatusReport {
    /// Reporting driver's current time in microseconds.
    pub now_micros: u64,
    /// Total nodes hosted by the reporting driver (brokers *and* clients).
    pub node_count: u64,
    /// One status per hosted broker, in broker-index order.
    pub brokers: Vec<BrokerStatus>,
    /// Journal slice: empty unless the request asked to tail from a
    /// sequence cursor (`StatusRequest::events_after`).
    pub events: Vec<ObsEvent>,
}

impl StatusReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(
            out,
            "{{\"now_micros\":{},\"node_count\":{},\"brokers\":[",
            self.now_micros, self.node_count
        );
        for (i, broker) in self.brokers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&broker.to_json());
        }
        out.push_str("],\"events\":[");
        for (i, event) in self.events.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&event.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// Escapes a string for embedding in a JSON string literal.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_opt_u64(v: Option<u64>) -> String {
    match v {
        Some(v) => v.to_string(),
        None => "null".to_string(),
    }
}

// ---------------------------------------------------------------------------
// Causal distributed tracing
// ---------------------------------------------------------------------------

/// Default capacity of a [`SpanBuffer`] ring.
pub const DEFAULT_SPAN_CAPACITY: usize = 1024;

/// Causal trace context, carried on an envelope (and implied for mobility
/// control messages, whose phase spans derive deterministically from the
/// relocating client — see [`phase_span_id`]).
///
/// `parent_span` is rewritten hop by hop: a broker that forwards a sampled
/// envelope stamps the outgoing copy with its own `route` span id, so the
/// receiving broker's `match` span attaches to the correct parent without
/// any out-of-band coordination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace identifier, identical at every hop of one publication (or one
    /// relocation): a pure hash of its origin, see [`trace_id_for`].
    pub trace_id: u64,
    /// Span id of the causal parent at the *previous* stage (0 for a root).
    pub parent_span: u64,
    /// `true` when the trace is being recorded.  Unsampled traffic never
    /// carries a context at all, so the hot path pays nothing.
    pub sampled: bool,
}

/// SplitMix64 — the workspace-standard seed mixer (also used by the shim
/// `rand`), here the basis of deterministic trace and span ids.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Salt separating relocation traces from publication traces that would
/// otherwise hash the same `(origin, seq)` pair.
const RELOCATION_SALT: u64 = 0x5265_6C6F_6361_7465; // "Relocate"

/// The deterministic trace id of a publication: a pure function of the
/// publishing client and its per-publisher sequence number, so the
/// simulator, the threaded driver and every TCP broker process derive the
/// *same* id for the same publication without coordination.
pub fn trace_id_for(publisher: u64, seq: u64) -> u64 {
    splitmix64(splitmix64(publisher) ^ seq)
}

/// Sampling decision for a trace id: the low 16 bits are compared against
/// a rate expressed in parts per 65536 ([`rate_per_64k`]).
pub fn sampled(trace_id: u64, rate_per_64k: u32) -> bool {
    rate_per_64k >= (1 << 16) || ((trace_id & 0xFFFF) as u32) < rate_per_64k
}

/// Converts a sampling rate in `0.0..=1.0` to parts per 65536, the integer
/// form the deterministic sampler compares against.
pub fn rate_per_64k(rate: f64) -> u32 {
    (rate.clamp(0.0, 1.0) * 65536.0).round() as u32
}

/// Deterministic sampling of a publication: `Some(trace_id)` when the
/// publication identified by `(publisher, publisher_seq)` falls inside the
/// sampling rate, `None` otherwise.  Pure, so all drivers agree.
pub fn sample_publication(publisher: u64, publisher_seq: u64, rate_per_64k: u32) -> Option<u64> {
    if rate_per_64k == 0 {
        return None;
    }
    let id = trace_id_for(publisher, publisher_seq);
    sampled(id, rate_per_64k).then_some(id)
}

/// Deterministic sampling of a relocation: keyed by the relocating client
/// and the `last_seq` watermark its ReSubscribe carried, salted so it never
/// collides with a publication trace of the same numbers.
pub fn sample_relocation(client: u64, last_seq: u64, rate_per_64k: u32) -> Option<u64> {
    if rate_per_64k == 0 {
        return None;
    }
    let id = trace_id_for(client ^ RELOCATION_SALT, last_seq);
    sampled(id, rate_per_64k).then_some(id)
}

/// A fresh span id: deterministic in `(trace_id, broker, nonce)`, where the
/// nonce is a per-broker counter (deterministic under the simulator's total
/// event order).  Never 0 — 0 is the "root" parent sentinel.
pub fn span_id(trace_id: u64, broker: u64, nonce: u64) -> u64 {
    splitmix64(trace_id ^ splitmix64(broker.wrapping_mul(0x0100_0000_01B3) ^ nonce)) | 1
}

/// A *derivable* span id for a relocation-phase span: a pure function of
/// `(trace_id, broker, phase)`, so the broker receiving the next protocol
/// message can compute its causal parent's id without the control message
/// carrying any trace fields on the wire.  Never 0.
pub fn phase_span_id(trace_id: u64, broker: u64, phase: &str) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64; // FNV-1a over the phase name
    for b in phase.bytes() {
        h = (h ^ b as u64).wrapping_mul(0x0100_0000_01B3);
    }
    splitmix64(trace_id ^ splitmix64(broker).rotate_left(17) ^ h) | 1
}

/// One recorded span: a named stage of a trace, attributed to a broker,
/// with start/end timestamps in the recording node's clock domain.
///
/// `kind` is one of the documented stage names (`publish`, `match`,
/// `route`, `deliver`, `link.tx`, `link.rx`, `hold`, `replay`,
/// `history.merge`, `relocation.resubscribe`, `relocation.relocate`,
/// `relocation.fetch`, `relocation.replay`, `relocation.settled`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Monotonic per-buffer sequence number (the resumable-tail cursor).
    pub seq: u64,
    /// The trace this span belongs to.
    pub trace_id: u64,
    /// This span's id (unique within the trace).
    pub span_id: u64,
    /// The causal parent's span id (0 for a trace root).
    pub parent_span: u64,
    /// Broker index that recorded the span.
    pub broker: u64,
    /// Stage name, e.g. `"route"`.
    pub kind: String,
    /// Stage start, microseconds in the recording node's clock.
    pub start_micros: u64,
    /// Stage end, microseconds (== start for instantaneous stages).
    pub end_micros: u64,
    /// Free-form `key=value` detail text.
    pub detail: String,
}

impl SpanRecord {
    /// Renders the span as a JSON object (ids as fixed-width hex strings).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"seq\":{},\"trace_id\":\"{:016x}\",\"span_id\":\"{:016x}\",\
             \"parent_span\":\"{:016x}\",\"broker\":{},\"kind\":\"{}\",\
             \"start_micros\":{},\"end_micros\":{},\"detail\":\"{}\"}}",
            self.seq,
            self.trace_id,
            self.span_id,
            self.parent_span,
            self.broker,
            json_escape(&self.kind),
            self.start_micros,
            self.end_micros,
            json_escape(&self.detail)
        )
    }
}

/// A bounded ring of [`SpanRecord`]s with monotonic sequence numbers — the
/// span analogue of [`EventJournal`], with the same resumable-cursor and
/// capacity-0-disables semantics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanBuffer {
    spans: VecDeque<SpanRecord>,
    capacity: usize,
    next_seq: u64,
}

impl Default for SpanBuffer {
    fn default() -> Self {
        Self::with_capacity(DEFAULT_SPAN_CAPACITY)
    }
}

impl SpanBuffer {
    /// Creates a buffer retaining at most `capacity` spans (0 disables).
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            spans: VecDeque::new(),
            capacity,
            next_seq: 0,
        }
    }

    /// `true` when recording is enabled (capacity > 0).
    pub fn enabled(&self) -> bool {
        self.capacity > 0
    }

    /// Changes the retention capacity (0 disables and drops all entries).
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity;
        while self.spans.len() > capacity {
            self.spans.pop_front();
        }
    }

    /// Appends a span (its `seq` field is assigned here), evicting the
    /// oldest entry when full.  Returns the assigned sequence number, or
    /// `None` when the buffer is disabled.
    pub fn record(&mut self, mut span: SpanRecord) -> Option<u64> {
        if self.capacity == 0 {
            return None;
        }
        let seq = self.next_seq;
        self.next_seq += 1;
        span.seq = seq;
        if self.spans.len() == self.capacity {
            self.spans.pop_front();
        }
        self.spans.push_back(span);
        Some(seq)
    }

    /// The retained spans, oldest first.
    pub fn spans(&self) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter()
    }

    /// The retained spans with a sequence number strictly greater than
    /// `seq` — the resumable-tail cursor.
    pub fn spans_after(&self, seq: u64) -> impl Iterator<Item = &SpanRecord> {
        self.spans.iter().filter(move |s| s.seq > seq)
    }

    /// The sequence number the next recorded span will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Number of retained spans.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// `true` when no spans are retained.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Drops every retained span, keeping capacity and sequence counter.
    pub fn clear(&mut self) {
        self.spans.clear();
    }

    /// Appends another buffer's retained spans, assigning fresh sequence
    /// numbers from this buffer.
    pub fn merge(&mut self, other: &SpanBuffer) {
        for span in other.spans() {
            self.record(span.clone());
        }
    }
}

/// The answer to a `TraceRequest` admin frame: the reporting driver's
/// retained spans (optionally only those past a cursor).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TraceReport {
    /// Reporting driver's current time in microseconds.
    pub now_micros: u64,
    /// The retained spans, oldest first.
    pub spans: Vec<SpanRecord>,
}

impl TraceReport {
    /// Renders the report as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        let _ = write!(out, "{{\"now_micros\":{},\"spans\":[", self.now_micros);
        for (i, span) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&span.to_json());
        }
        out.push_str("]}");
        out
    }
}

/// The distinct trace ids present in a span set, most recent root first
/// (ordered by the latest `start_micros` seen for each trace).
pub fn trace_ids(spans: &[SpanRecord]) -> Vec<u64> {
    let mut latest: Vec<(u64, u64)> = Vec::new(); // (last start, trace_id)
    for span in spans {
        match latest.iter_mut().find(|(_, id)| *id == span.trace_id) {
            Some(slot) => slot.0 = slot.0.max(span.start_micros),
            None => latest.push((span.start_micros, span.trace_id)),
        }
    }
    latest.sort_by(|a, b| b.cmp(a));
    latest.into_iter().map(|(_, id)| id).collect()
}

/// The most recently active trace id in a span set, if any.
pub fn latest_trace_id(spans: &[SpanRecord]) -> Option<u64> {
    trace_ids(spans).first().copied()
}

/// Reassembles the spans of one trace into a causal tree and renders it as
/// a per-hop latency timeline: one line per span, children indented under
/// their parent, each stamped with its offset from the trace start and its
/// duration.  Deterministic: spans are deduplicated by id and children are
/// ordered by `(start, kind, broker, id)`, so the same span set always
/// renders byte-identically regardless of collection order.
pub fn render_trace_tree(trace_id: u64, spans: &[SpanRecord]) -> String {
    let mut mine: Vec<&SpanRecord> = spans.iter().filter(|s| s.trace_id == trace_id).collect();
    mine.sort_by_key(|s| (s.span_id, s.start_micros));
    mine.dedup_by_key(|s| s.span_id);
    mine.sort_by_key(|s| (s.start_micros, s.kind.clone(), s.broker, s.span_id));
    let mut out = format!("trace {:016x}: {} spans\n", trace_id, mine.len());
    if mine.is_empty() {
        return out;
    }
    let base = mine.iter().map(|s| s.start_micros).min().unwrap_or(0);
    let known: Vec<u64> = mine.iter().map(|s| s.span_id).collect();
    // Roots: explicit roots plus orphans whose parent was never collected
    // (evicted from a ring, or an unsampled stage) — still rendered, so a
    // partial trace degrades to a forest instead of disappearing.
    let mut stack: Vec<(usize, usize)> = Vec::new(); // (index into mine, depth)
    for (i, s) in mine.iter().enumerate().rev() {
        if s.parent_span == 0 || !known.contains(&s.parent_span) {
            stack.push((i, 0));
        }
    }
    let mut emitted = vec![false; mine.len()];
    while let Some((i, depth)) = stack.pop() {
        if emitted[i] {
            continue;
        }
        emitted[i] = true;
        let s = mine[i];
        let _ = writeln!(
            out,
            "{:indent$}{} broker={} +{}us dur={}us{}{}",
            "",
            s.kind,
            s.broker,
            s.start_micros.saturating_sub(base),
            s.end_micros.saturating_sub(s.start_micros),
            if s.detail.is_empty() { "" } else { " " },
            s.detail,
            indent = depth * 2
        );
        for (j, c) in mine.iter().enumerate().rev() {
            if !emitted[j] && c.parent_span == s.span_id {
                stack.push((j, depth + 1));
            }
        }
    }
    // Parent cycles in corrupt data would never be reached from a root;
    // render them flat rather than dropping them.
    for (i, s) in mine.iter().enumerate() {
        if !emitted[i] {
            let _ = writeln!(
                out,
                "{} broker={} +{}us dur={}us (unrooted)",
                s.kind,
                s.broker,
                s.start_micros.saturating_sub(base),
                s.end_micros.saturating_sub(s.start_micros)
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_by_bit_width() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            h.record(v);
        }
        assert_eq!(h.count(), 10);
        let counts = h.bucket_counts();
        assert_eq!(counts[0], 1); // 0
        assert_eq!(counts[1], 1); // 1
        assert_eq!(counts[2], 2); // 2, 3
        assert_eq!(counts[3], 2); // 4, 7
        assert_eq!(counts[4], 1); // 8
        assert_eq!(counts[10], 1); // 1023
        assert_eq!(counts[11], 1); // 1024
        assert_eq!(counts[63], 1); // u64::MAX
    }

    #[test]
    fn quantiles_report_bucket_upper_bounds() {
        let mut h = Histogram::new();
        assert_eq!(h.p50(), 0);
        for _ in 0..98 {
            h.record(100); // bucket 7: [64, 127]
        }
        h.record(5_000); // bucket 13: [4096, 8191]
        h.record(100_000); // bucket 17: [65536, 131071]
        assert_eq!(h.p50(), 127);
        assert_eq!(h.p95(), 127);
        assert_eq!(h.p99(), 8191);
        assert_eq!(h.quantile(1.0), 131071);
    }

    #[test]
    fn histograms_merge_bucket_wise() {
        let mut a = Histogram::new();
        a.record(10);
        let mut b = Histogram::new();
        b.record(10);
        b.record(1000);
        a.merge(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1020);
        assert_eq!(a.bucket_counts()[4], 2);
    }

    #[test]
    fn histogram_roundtrips_through_parts() {
        let mut h = Histogram::new();
        h.record(7);
        h.record(900);
        let again = Histogram::from_parts(*h.bucket_counts(), h.sum());
        assert_eq!(again, h);
    }

    #[test]
    fn journal_is_bounded_with_monotonic_seqs() {
        let mut j = EventJournal::with_capacity(3);
        for i in 0..5u64 {
            assert_eq!(j.record(i, "k", "d"), Some(i));
        }
        assert_eq!(j.len(), 3);
        let seqs: Vec<u64> = j.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]); // oldest evicted, numbering continues
        let tail: Vec<u64> = j.events_after(3).map(|e| e.seq).collect();
        assert_eq!(tail, vec![4]);
        assert_eq!(j.next_seq(), 5);
    }

    #[test]
    fn disabled_journal_records_nothing() {
        let mut j = EventJournal::with_capacity(0);
        assert!(!j.enabled());
        assert_eq!(j.record(1, "k", "d"), None);
        assert!(j.is_empty());
        j.set_capacity(2);
        assert!(j.enabled());
        assert_eq!(j.record(1, "k", "d"), Some(0));
    }

    #[test]
    fn journal_merge_renumbers() {
        let mut a = EventJournal::with_capacity(8);
        a.record(1, "a", "");
        let mut b = EventJournal::with_capacity(8);
        b.record(2, "b1", "");
        b.record(3, "b2", "");
        a.merge(&b);
        let seqs: Vec<u64> = a.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2]);
        assert_eq!(a.events().nth(1).unwrap().kind, "b1");
    }

    #[test]
    fn report_renders_json() {
        let mut h = Histogram::new();
        h.record(100);
        let report = StatusReport {
            now_micros: 42,
            node_count: 4,
            brokers: vec![BrokerStatus {
                broker: 0,
                restart_epoch: 1,
                generation: 1,
                routing_entries: 3,
                routing_subgroups: 2,
                wal_depth: 2,
                wal_since_checkpoint: 2,
                last_checkpoint_age_ms: None,
                counterparts: 0,
                buffered_deliveries: 0,
                pending_relocations: 0,
                retained_publications: 5,
                retained_segments: 2,
                oldest_retained_age_ms: Some(30),
                expired_leases: 1,
                relocations: vec![("mobility.broker_restart".into(), 1)],
                handoff_latency_micros: h,
                links: vec![LinkStatus {
                    peer: 1,
                    connected: true,
                    last_heartbeat_age_ms: Some(12),
                    down_since_ms: None,
                    redial_attempts: 4,
                }],
            }],
            events: vec![ObsEvent {
                seq: 7,
                at_micros: 40,
                kind: "wal.checkpoint".into(),
                detail: "depth=1".into(),
            }],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"now_micros\":42,\"node_count\":4,"));
        assert!(json.contains("\"routing_subgroups\":2"));
        assert!(json.contains("\"last_checkpoint_age_ms\":null"));
        assert!(json.contains("\"retained_publications\":5"));
        assert!(json.contains("\"retained_segments\":2"));
        assert!(json.contains("\"oldest_retained_age_ms\":30"));
        assert!(json.contains("\"expired_leases\":1"));
        assert!(json.contains("\"last_heartbeat_age_ms\":12"));
        assert!(json.contains("\"down_since_ms\":null"));
        assert!(json.contains("\"redial_attempts\":4"));
        assert!(json.contains("\"mobility.broker_restart\":1"));
        assert!(json.contains("\"kind\":\"wal.checkpoint\""));
        assert!(json.contains("\"p50\":127"));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    // --- EventJournal ring wraparound (beyond the happy path) ---

    #[test]
    fn events_after_across_an_overflowed_ring_reports_only_retained_tail() {
        let mut j = EventJournal::with_capacity(4);
        for i in 0..20u64 {
            j.record(i, "k", "d");
        }
        // Ring retains 16..=19; a cursor pointing into the evicted range
        // returns the whole retained tail, and the seq gap (cursor 5 →
        // first seq 16) is the client's missed-entries signal.
        let tail: Vec<u64> = j.events_after(5).map(|e| e.seq).collect();
        assert_eq!(tail, vec![16, 17, 18, 19]);
        // A cursor inside the retained window resumes exactly.
        let tail: Vec<u64> = j.events_after(17).map(|e| e.seq).collect();
        assert_eq!(tail, vec![18, 19]);
        // A cursor at (or past) the head returns nothing.
        assert_eq!(j.events_after(19).count(), 0);
        assert_eq!(j.events_after(1000).count(), 0);
        assert_eq!(j.next_seq(), 20);
    }

    #[test]
    fn seq_stays_monotonic_across_merge_and_clear() {
        let mut a = EventJournal::with_capacity(3);
        for i in 0..5u64 {
            a.record(i, "a", "");
        }
        assert_eq!(a.next_seq(), 5);
        // Merging an overflowing donor evicts but keeps numbering rising.
        let mut b = EventJournal::with_capacity(8);
        for i in 0..4u64 {
            b.record(100 + i, "b", "");
        }
        a.merge(&b);
        let seqs: Vec<u64> = a.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![6, 7, 8]); // capacity 3, merged entries renumbered
                                         // Clear drops entries but not the counter; the next record (and a
                                         // tail spanning the clear) still sees strictly increasing numbers.
        a.clear();
        assert!(a.is_empty());
        assert_eq!(a.next_seq(), 9);
        assert_eq!(a.record(200, "c", ""), Some(9));
        let resumed: Vec<u64> = a.events_after(8).map(|e| e.seq).collect();
        assert_eq!(resumed, vec![9]);
    }

    #[test]
    fn shrinking_capacity_evicts_oldest_first() {
        let mut j = EventJournal::with_capacity(8);
        for i in 0..6u64 {
            j.record(i, "k", "");
        }
        j.set_capacity(2);
        let seqs: Vec<u64> = j.events().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![4, 5]);
        assert_eq!(j.record(9, "k", ""), Some(6));
        assert_eq!(j.len(), 2);
    }

    // --- tracing primitives ---

    #[test]
    fn sampling_is_deterministic_and_rate_gated() {
        assert_eq!(sample_publication(7, 42, 0), None);
        let full = rate_per_64k(1.0);
        let id = sample_publication(7, 42, full).expect("rate 1.0 samples everything");
        assert_eq!(id, trace_id_for(7, 42));
        // Same inputs, same id — on every call (driver-independence).
        assert_eq!(sample_publication(7, 42, full), Some(id));
        // Relocation traces of the same numbers get a distinct id.
        let rid = sample_relocation(7, 42, full).unwrap();
        assert_ne!(rid, id);
        // A fractional rate keeps roughly its share of 1000 publications.
        let kept = (0..1000u64)
            .filter(|&s| sample_publication(3, s, rate_per_64k(0.25)).is_some())
            .count();
        assert!((150..350).contains(&kept), "kept {kept} of 1000 at 25%");
    }

    #[test]
    fn span_ids_are_nonzero_and_deterministic() {
        let t = trace_id_for(1, 1);
        assert_ne!(span_id(t, 2, 0), 0);
        assert_eq!(span_id(t, 2, 0), span_id(t, 2, 0));
        assert_ne!(span_id(t, 2, 0), span_id(t, 2, 1));
        assert_ne!(span_id(t, 2, 0), span_id(t, 3, 0));
        assert_eq!(phase_span_id(t, 2, "hold"), phase_span_id(t, 2, "hold"));
        assert_ne!(phase_span_id(t, 2, "hold"), phase_span_id(t, 2, "replay"));
        assert_ne!(phase_span_id(t, 2, "hold"), 0);
    }

    fn span(trace: u64, id: u64, parent: u64, broker: u64, kind: &str, start: u64) -> SpanRecord {
        SpanRecord {
            seq: 0,
            trace_id: trace,
            span_id: id,
            parent_span: parent,
            broker,
            kind: kind.into(),
            start_micros: start,
            end_micros: start + 5,
            detail: String::new(),
        }
    }

    #[test]
    fn span_buffer_is_bounded_with_resumable_cursor() {
        let mut b = SpanBuffer::with_capacity(3);
        for i in 0..5u64 {
            assert_eq!(b.record(span(1, 10 + i, 0, 0, "k", i)), Some(i));
        }
        assert_eq!(b.len(), 3);
        let seqs: Vec<u64> = b.spans().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![2, 3, 4]);
        let tail: Vec<u64> = b.spans_after(3).map(|s| s.seq).collect();
        assert_eq!(tail, vec![4]);
        assert_eq!(b.next_seq(), 5);

        let mut disabled = SpanBuffer::with_capacity(0);
        assert!(!disabled.enabled());
        assert_eq!(disabled.record(span(1, 1, 0, 0, "k", 0)), None);

        let mut other = SpanBuffer::with_capacity(8);
        other.record(span(2, 20, 0, 1, "k", 9));
        b.merge(&other);
        assert_eq!(b.spans().last().unwrap().seq, 5); // renumbered
        b.clear();
        assert!(b.is_empty());
        assert_eq!(b.next_seq(), 6);
    }

    #[test]
    fn trace_tree_renders_deterministically() {
        let t = 0xABCD;
        let spans = vec![
            span(t, 100, 0, 0, "publish", 10),
            span(t, 101, 100, 0, "match", 10),
            span(t, 102, 101, 0, "route", 11),
            span(t, 103, 102, 1, "match", 13),
            span(t, 104, 103, 1, "deliver", 14),
            span(9, 999, 0, 0, "publish", 0), // other trace, excluded
        ];
        let rendered = render_trace_tree(t, &spans);
        // Collection order must not matter.
        let mut reversed: Vec<SpanRecord> = spans.clone();
        reversed.reverse();
        reversed.push(spans[2].clone()); // duplicate from a second broker fetch
        assert_eq!(rendered, render_trace_tree(t, &reversed));
        assert_eq!(
            rendered,
            "trace 000000000000abcd: 5 spans\n\
             publish broker=0 +0us dur=5us\n\
             \x20 match broker=0 +0us dur=5us\n\
             \x20   route broker=0 +1us dur=5us\n\
             \x20     match broker=1 +3us dur=5us\n\
             \x20       deliver broker=1 +4us dur=5us\n"
        );
    }

    #[test]
    fn orphan_spans_render_as_forest_roots() {
        let t = 5;
        let spans = vec![
            span(t, 50, 4242, 1, "match", 20), // parent evicted
            span(t, 51, 50, 1, "deliver", 21),
        ];
        let rendered = render_trace_tree(t, &spans);
        assert!(rendered.starts_with("trace 0000000000000005: 2 spans\n"));
        assert!(rendered.contains("match broker=1 +0us"));
        assert!(rendered.contains("  deliver broker=1 +1us"));
    }

    #[test]
    fn latest_trace_id_picks_most_recent_activity() {
        let spans = vec![
            span(1, 10, 0, 0, "publish", 5),
            span(2, 20, 0, 0, "publish", 9),
            span(1, 11, 10, 0, "deliver", 6),
        ];
        assert_eq!(latest_trace_id(&spans), Some(2));
        assert_eq!(trace_ids(&spans), vec![2, 1]);
        assert_eq!(latest_trace_id(&[]), None);
    }

    #[test]
    fn trace_report_renders_json() {
        let report = TraceReport {
            now_micros: 77,
            spans: vec![span(0x1F, 0x2F, 0, 3, "publish", 1)],
        };
        let json = report.to_json();
        assert!(json.starts_with("{\"now_micros\":77,\"spans\":["));
        assert!(json.contains("\"trace_id\":\"000000000000001f\""));
        assert!(json.contains("\"span_id\":\"000000000000002f\""));
        assert!(json.contains("\"parent_span\":\"0000000000000000\""));
        assert!(json.contains("\"broker\":3"));
        assert!(json.contains("\"kind\":\"publish\""));
    }
}
