//! Integration tests for the physical-mobility relocation protocol
//! (Section 4 of the paper), including the Figure 5 walk-through and the
//! naive hand-off baseline of Figure 2.

use rebeca_broker::ClientId;
use rebeca_core::{BrokerConfig, ClientAction, LogicalMobilityMode, MobilitySystem, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_location::MovementGraph;
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{DelayModel, SimDuration, SimTime, Topology};

fn parking_filter() -> Filter {
    Filter::new().with("service", Constraint::Eq("parking".into()))
}

fn vacancy(i: i64) -> Notification {
    Notification::builder()
        .attr("service", "parking")
        .attr("spot", i)
        .build()
}

fn config(strategy: RoutingStrategyKind) -> BrokerConfig {
    BrokerConfig::default()
        .with_strategy(strategy)
        .with_movement_graph(MovementGraph::paper_example())
        .with_relocation_timeout(SimDuration::from_secs(30))
}

/// Builds the Figure 5 scenario: the producer attaches at B8 (index 7), the
/// consumer starts at the old border broker B6 (index 5) and moves to the new
/// border broker B1 (index 0) at `move_at`, while the producer publishes one
/// notification every `publish_interval_ms` milliseconds from t = 50 ms on.
fn figure5_scenario(
    strategy: RoutingStrategyKind,
    move_at: SimTime,
    publications: u64,
    publish_interval_ms: u64,
    naive: Option<bool>,
) -> (MobilitySystem, ClientId, ClientId) {
    let topo = Topology::figure5();
    let mut sys = SystemBuilder::new(&topo)
        .config(config(strategy))
        .link_delay(DelayModel::constant_millis(5))
        .seed(7)
        .build()
        .unwrap();

    let consumer = ClientId::new(1);
    let producer = ClientId::new(2);

    let old_broker = sys.broker_node(5).unwrap(); // B6
    let new_broker = sys.broker_node(0).unwrap(); // B1

    let move_action = match naive {
        None => ClientAction::MoveTo { broker: new_broker },
        Some(sign_off) => ClientAction::NaiveMoveTo {
            broker: new_broker,
            sign_off,
        },
    };
    sys.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[5, 0],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach { broker: old_broker },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(parking_filter()),
            ),
            (move_at, move_action),
        ],
    )
    .unwrap();

    let mut producer_script = vec![
        (
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(7).unwrap(),
            },
        ),
        (
            SimTime::from_millis(2),
            ClientAction::Advertise(parking_filter()),
        ),
    ];
    for i in 0..publications {
        producer_script.push((
            SimTime::from_millis(50 + i * publish_interval_ms),
            ClientAction::Publish(vacancy(i as i64)),
        ));
    }
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[7],
        producer_script,
    )
    .unwrap();

    (sys, consumer, producer)
}

/// The headline property of Section 4: a roaming client using the relocation
/// protocol receives **every** notification **exactly once** and in
/// **sender-FIFO order**, even though it moves in the middle of a publication
/// stream.
#[test]
fn relocation_is_complete_ordered_and_duplicate_free() {
    let publications = 40;
    let (mut sys, consumer, producer) = figure5_scenario(
        RoutingStrategyKind::Covering,
        SimTime::from_millis(500),
        publications,
        25,
        None,
    );
    sys.run_until(SimTime::from_secs(10));

    let log = sys.client_log(consumer).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(producer),
        (1..=publications).collect::<Vec<u64>>(),
        "every publication must arrive exactly once"
    );
    assert_eq!(log.duplicate_publications(producer), 0);
    // FIFO end to end: arrival order equals publication order.
    assert_eq!(
        log.publisher_seqs(producer),
        (1..=publications).collect::<Vec<u64>>()
    );
}

/// The same property holds under simple routing and merging routing — the
/// relocation protocol does not depend on a particular routing optimization.
#[test]
fn relocation_works_under_other_routing_strategies() {
    for strategy in [RoutingStrategyKind::Simple, RoutingStrategyKind::Merging] {
        let publications = 20;
        let (mut sys, consumer, producer) =
            figure5_scenario(strategy, SimTime::from_millis(300), publications, 20, None);
        sys.run_until(SimTime::from_secs(10));
        let log = sys.client_log(consumer).unwrap();
        assert!(log.is_clean(), "{strategy:?}: {:?}", log.violations());
        assert_eq!(
            log.distinct_publisher_seqs(producer),
            (1..=publications).collect::<Vec<u64>>(),
            "{strategy:?}: every publication must arrive exactly once"
        );
    }
}

/// After the relocation the old border broker has garbage collected every
/// resource of the roamed client, and no virtual counterpart keeps growing.
#[test]
fn old_broker_garbage_collects_after_relocation() {
    let (mut sys, consumer, _) = figure5_scenario(
        RoutingStrategyKind::Covering,
        SimTime::from_millis(500),
        40,
        25,
        None,
    );
    sys.run_until(SimTime::from_secs(10));

    let old_broker = sys.broker(5).unwrap(); // B6
    assert_eq!(
        old_broker.counterpart_count(),
        0,
        "counterpart must be garbage collected"
    );
    assert!(
        old_broker.core().client(consumer).is_none(),
        "client record must be gone"
    );
    assert_eq!(old_broker.buffered_deliveries(), 0);

    // The new border broker has taken over the client and holds no pending
    // relocation state either.
    let new_broker = sys.broker(0).unwrap(); // B1
    assert!(new_broker.core().client(consumer).is_some());
    assert_eq!(new_broker.pending_relocations(), 0);
}

/// Regression test for the timeout-tag leak: the guard of a relocation that
/// completes *before* its timeout used to stay in the tag map forever.  The
/// guard map must be empty on every broker once the relocation has settled
/// — reclaimed on replay completion, not only when the timer fires.
#[test]
fn settled_relocations_leave_no_timeout_guards() {
    let (mut sys, consumer, producer) = figure5_scenario(
        RoutingStrategyKind::Covering,
        SimTime::from_millis(500),
        40,
        25,
        None,
    );
    // Run well past the relocation but far short of the 30 s timeout, so a
    // leaked guard could not have been cleaned up by the timer firing.
    sys.run_until(SimTime::from_secs(10));
    let log = sys.client_log(consumer).unwrap();
    assert!(log.is_clean());
    assert_eq!(log.distinct_publisher_seqs(producer).len(), 40);
    for b in 0..sys.broker_count() {
        assert_eq!(
            sys.broker(b).unwrap().timeout_tag_count(),
            0,
            "broker {b} leaked a relocation-timeout guard after the relocation settled"
        );
        assert_eq!(sys.broker(b).unwrap().pending_relocations(), 0);
    }
}

/// Repeated relocations do not accumulate guards either (the map is churned
/// and emptied once per move).
#[test]
fn repeated_relocations_do_not_accumulate_timeout_guards() {
    let topo = Topology::figure5();
    let mut sys = SystemBuilder::new(&topo)
        .config(config(RoutingStrategyKind::Covering))
        .link_delay(DelayModel::constant_millis(5))
        .seed(13)
        .build()
        .unwrap();
    let consumer = ClientId::new(1);
    sys.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[5, 0, 2],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(5).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(parking_filter()),
            ),
            (
                SimTime::from_millis(400),
                ClientAction::MoveTo {
                    broker: sys.broker_node(0).unwrap(),
                },
            ),
            (
                SimTime::from_millis(900),
                ClientAction::MoveTo {
                    broker: sys.broker_node(2).unwrap(),
                },
            ),
            (
                SimTime::from_millis(1400),
                ClientAction::MoveTo {
                    broker: sys.broker_node(5).unwrap(),
                },
            ),
        ],
    )
    .unwrap();
    sys.run_until(SimTime::from_secs(5));
    for b in 0..sys.broker_count() {
        assert_eq!(
            sys.broker(b).unwrap().timeout_tag_count(),
            0,
            "broker {b} accumulated guards across repeated relocations"
        );
    }
}

/// Notifications published *while the client is disconnected* (between the
/// detach at the old broker and the completion of the relocation) are
/// buffered by the virtual counterpart and replayed — nothing is lost.
#[test]
fn notifications_during_disconnection_are_replayed() {
    let topo = Topology::figure5();
    let mut sys = SystemBuilder::new(&topo)
        .config(config(RoutingStrategyKind::Covering))
        .link_delay(DelayModel::constant_millis(5))
        .seed(3)
        .build()
        .unwrap();
    let consumer = ClientId::new(1);
    let producer = ClientId::new(2);
    let old_broker = sys.broker_node(5).unwrap();
    let new_broker = sys.broker_node(0).unwrap();

    // The consumer detaches at t = 200 ms and only re-subscribes at the new
    // broker at t = 800 ms; the producer publishes throughout.
    sys.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[5, 0],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach { broker: old_broker },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(parking_filter()),
            ),
            // Modelled as two steps: the old broker detects the link drop at
            // 200 ms, the client shows up at the new broker at 800 ms.
            (
                SimTime::from_millis(200),
                ClientAction::MoveTo { broker: new_broker },
            ),
        ],
    )
    .unwrap();
    let mut producer_script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(7).unwrap(),
        },
    )];
    for i in 0..30u64 {
        producer_script.push((
            SimTime::from_millis(50 + i * 20),
            ClientAction::Publish(vacancy(i as i64)),
        ));
    }
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[7],
        producer_script,
    )
    .unwrap();

    sys.run_until(SimTime::from_secs(10));
    let log = sys.client_log(consumer).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(producer),
        (1..=30).collect::<Vec<u64>>()
    );
}

/// A client that returns to the broker it previously left gets the buffered
/// notifications replayed locally (no relocation round-trip needed).
#[test]
fn reconnecting_to_the_same_broker_replays_locally() {
    let topo = Topology::line(3);
    let mut sys = SystemBuilder::new(&topo)
        .config(config(RoutingStrategyKind::Covering))
        .link_delay(DelayModel::constant_millis(5))
        .seed(5)
        .build()
        .unwrap();
    let consumer = ClientId::new(1);
    let producer = ClientId::new(2);
    let home = sys.broker_node(0).unwrap();

    sys.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[0],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach { broker: home },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(parking_filter()),
            ),
            // Disconnect (detected by the broker), then come back to the same
            // broker later.
            (
                SimTime::from_millis(300),
                ClientAction::MoveTo { broker: home },
            ),
        ],
    )
    .unwrap();
    let mut producer_script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(2).unwrap(),
        },
    )];
    for i in 0..20u64 {
        producer_script.push((
            SimTime::from_millis(50 + i * 20),
            ClientAction::Publish(vacancy(i as i64)),
        ));
    }
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[2],
        producer_script,
    )
    .unwrap();

    sys.run_until(SimTime::from_secs(5));
    let log = sys.client_log(consumer).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(producer),
        (1..=20).collect::<Vec<u64>>()
    );
}

/// The naive hand-off baseline of Section 3.2 / Figure 2: without the
/// relocation protocol, a client that signs off and re-subscribes from
/// scratch misses the notifications published while its new subscription
/// propagates.
#[test]
fn naive_handoff_with_sign_off_loses_notifications() {
    let publications = 40;
    let (mut sys, consumer, producer) = figure5_scenario(
        RoutingStrategyKind::Covering,
        SimTime::from_millis(500),
        publications,
        25,
        Some(true),
    );
    sys.run_until(SimTime::from_secs(10));
    let log = sys.client_log(consumer).unwrap();
    let missing = log.missing_from(producer, 1..=publications);
    assert!(
        !missing.is_empty(),
        "the naive hand-off must lose at least one notification (blackout while the \
         new subscription propagates)"
    );
}

/// The naive hand-off without sign-off under flooding routing: the old broker
/// keeps delivering (it never learns the client left), so publications are
/// delivered twice once the client also subscribes at the new broker —
/// exactly the duplicate delivery of Figure 2.
#[test]
fn naive_handoff_without_sign_off_duplicates_notifications_under_flooding() {
    let publications = 40;
    let (mut sys, consumer, producer) = figure5_scenario(
        RoutingStrategyKind::Flooding,
        SimTime::from_millis(500),
        publications,
        25,
        Some(false),
    );
    sys.run_until(SimTime::from_secs(10));
    let log = sys.client_log(consumer).unwrap();
    assert!(
        log.duplicate_publications(producer) > 0,
        "without a sign-off the client must receive some publications twice"
    );
}

/// The relocation protocol under flooding routing still delivers every
/// publication (completeness).  Unlike the routed strategies, flooding sends
/// every notification to *both* border brokers during the hand-over window,
/// so a notification that is in flight on the old client link at the instant
/// of the move may reach the client twice — a property of flooding hand-over
/// the paper's protocol does not (and cannot) remove.  The test therefore
/// asserts completeness and bounds the duplication to that single hand-over
/// window.
#[test]
fn relocation_under_flooding_is_complete_with_bounded_handover_duplicates() {
    let publications = 30;
    let (mut sys, consumer, producer) = figure5_scenario(
        RoutingStrategyKind::Flooding,
        SimTime::from_millis(500),
        publications,
        25,
        None,
    );
    sys.run_until(SimTime::from_secs(10));
    let log = sys.client_log(consumer).unwrap();
    assert_eq!(
        log.distinct_publisher_seqs(producer),
        (1..=publications).collect::<Vec<u64>>(),
        "flooding hand-over must still be complete"
    );
    assert!(
        log.duplicate_publications(producer) <= 2,
        "duplicates must be confined to the hand-over window, got {}",
        log.duplicate_publications(producer)
    );
}

/// Two producers on different sides of the junction (the right-hand scenario
/// of Figure 5): completeness and exactly-once delivery hold for both
/// streams.
#[test]
fn relocation_with_multiple_producers() {
    let topo = Topology::figure5();
    let mut sys = SystemBuilder::new(&topo)
        .config(config(RoutingStrategyKind::Covering))
        .link_delay(DelayModel::constant_millis(5))
        .seed(11)
        .build()
        .unwrap();
    let consumer = ClientId::new(1);
    let producer_far = ClientId::new(2); // at B8 (index 7), beyond the junction
    let producer_near = ClientId::new(3); // at B2 (index 1), on the new path

    sys.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[5, 0],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(5).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(parking_filter()),
            ),
            (
                SimTime::from_millis(500),
                ClientAction::MoveTo {
                    broker: sys.broker_node(0).unwrap(),
                },
            ),
        ],
    )
    .unwrap();
    for (client, broker_index) in [(producer_far, 7usize), (producer_near, 1usize)] {
        let mut script = vec![(
            SimTime::from_millis(1),
            ClientAction::Attach {
                broker: sys.broker_node(broker_index).unwrap(),
            },
        )];
        for i in 0..30u64 {
            script.push((
                SimTime::from_millis(60 + i * 30),
                ClientAction::Publish(vacancy(i as i64)),
            ));
        }
        sys.add_client(
            client,
            LogicalMobilityMode::LocationDependent,
            &[broker_index],
            script,
        )
        .unwrap();
    }

    sys.run_until(SimTime::from_secs(10));
    let log = sys.client_log(consumer).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    for producer in [producer_far, producer_near] {
        assert_eq!(
            log.distinct_publisher_seqs(producer),
            (1..=30).collect::<Vec<u64>>(),
            "stream of {producer} must be complete and duplicate free"
        );
    }
}

/// A client that moves twice in a row (B6 → B1 → B3) is still served
/// completely and in order.
#[test]
fn repeated_relocations_preserve_the_stream() {
    let topo = Topology::figure5();
    let mut sys = SystemBuilder::new(&topo)
        .config(config(RoutingStrategyKind::Covering))
        .link_delay(DelayModel::constant_millis(5))
        .seed(13)
        .build()
        .unwrap();
    let consumer = ClientId::new(1);
    let producer = ClientId::new(2);

    sys.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[5, 0, 2],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(5).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(parking_filter()),
            ),
            (
                SimTime::from_millis(400),
                ClientAction::MoveTo {
                    broker: sys.broker_node(0).unwrap(),
                },
            ),
            (
                SimTime::from_millis(900),
                ClientAction::MoveTo {
                    broker: sys.broker_node(2).unwrap(),
                },
            ),
        ],
    )
    .unwrap();
    let mut producer_script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(7).unwrap(),
        },
    )];
    for i in 0..50u64 {
        producer_script.push((
            SimTime::from_millis(50 + i * 25),
            ClientAction::Publish(vacancy(i as i64)),
        ));
    }
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[7],
        producer_script,
    )
    .unwrap();

    sys.run_until(SimTime::from_secs(15));
    let log = sys.client_log(consumer).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(producer),
        (1..=50).collect::<Vec<u64>>()
    );
}
