//! Equivalence of the sharded index and the batch matcher with the
//! sequential [`FilterIndex`] oracle (which is itself property-tested
//! against the linear scan in `equivalence.rs`).
//!
//! These tests are the exactness contract of the sharding and batching
//! layers: at 1, 2 and 8 shards, and for every batch size and worker
//! count, [`ShardedFilterIndex`] must return **byte-identical** results
//! (canonicalized to insertion order) to the sequential index and to the
//! linear scan — across randomized filters, notifications and removal
//! churn.  A compile-time check pins the `Send + Sync` bounds the parallel
//! paths rely on, and a smoke test hammers one shared index from several
//! threads at once.

use proptest::prelude::*;
use rebeca_filter::{Constraint, Filter, Notification, Value};
use rebeca_matcher::{FilterIndex, MatchScratch, ShardedFilterIndex};

const SHARD_COUNTS: [usize; 3] = [1, 2, 8];

/// Values over a small shared domain so filters and notifications interact
/// often; includes every `Value` kind plus int/float aliasing (`3` vs `3.0`).
fn small_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-12i64..12).prop_map(Value::Int),
        (-12i64..12).prop_map(|i| Value::Float(i as f64 / 2.0)),
        (0u32..8).prop_map(Value::Location),
        prop_oneof![
            Just("parking"),
            Just("weather"),
            Just("Rebeca Drive"),
            Just("Re"),
            Just("stock")
        ]
        .prop_map(|s| Value::Str(s.to_string())),
        prop_oneof![Just(true), Just(false)].prop_map(Value::Bool),
    ]
}

fn ordered_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-12i64..12).prop_map(Value::Int),
        (-12i64..12).prop_map(|i| Value::Float(i as f64 / 2.0)),
        prop_oneof![Just("m"), Just("Re"), Just("parking")].prop_map(|s| Value::Str(s.to_string())),
    ]
}

/// Every constraint kind, so all index partitions are exercised.
fn constraint() -> impl Strategy<Value = Constraint> {
    prop_oneof![
        small_value().prop_map(Constraint::Eq),
        small_value().prop_map(Constraint::Ne),
        ordered_value().prop_map(Constraint::Lt),
        ordered_value().prop_map(Constraint::Le),
        ordered_value().prop_map(Constraint::Gt),
        ordered_value().prop_map(Constraint::Ge),
        (-12i64..12, 0i64..10)
            .prop_map(|(lo, len)| Constraint::Between(Value::Int(lo), Value::Int(lo + len))),
        // `0..4` includes the empty set: `In(∅)` matches nothing but is
        // covered vacuously by every `In`/`Between`, which once slipped
        // past the range-partitioned covering walk.
        prop::collection::btree_set(small_value(), 0..4).prop_map(Constraint::In),
        prop_oneof![Just("Re"), Just("park"), Just("e")]
            .prop_map(|p| Constraint::Prefix(p.to_string())),
        prop_oneof![Just("Drive"), Just("ing")].prop_map(|p| Constraint::Suffix(p.to_string())),
        prop_oneof![Just("bec"), Just("a")].prop_map(|p| Constraint::Contains(p.to_string())),
        Just(Constraint::Exists),
    ]
}

/// Filters over a small attribute alphabet (several attributes, so at 2 and
/// 8 shards a filter's constraints really spread over multiple shards).
fn filter() -> impl Strategy<Value = Filter> {
    prop::collection::btree_map(
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("d"), Just("location")],
        constraint(),
        0..4,
    )
    .prop_map(|m| {
        m.into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<Filter>()
    })
}

fn notification() -> impl Strategy<Value = Notification> {
    prop::collection::btree_map(
        prop_oneof![Just("a"), Just("b"), Just("c"), Just("d"), Just("location")],
        small_value(),
        0..5,
    )
    .prop_map(|m| {
        let mut b = Notification::builder();
        for (k, v) in m {
            b = b.attr(k, v);
        }
        b.build()
    })
}

/// A filter workload with interleaved removals: `(filters, removal mask)`.
fn workload() -> impl Strategy<Value = (Vec<Filter>, Vec<bool>)> {
    (
        prop::collection::vec(filter(), 0..24),
        prop::collection::vec(prop_oneof![Just(false), Just(true)], 24..25),
    )
}

/// Builds the sequential oracle index and one sharded index per shard
/// count, applying the same insertion/removal history to all of them.
fn build(
    filters: &[Filter],
    removed: &[bool],
) -> (FilterIndex<usize>, Vec<ShardedFilterIndex<usize>>) {
    let mut oracle = FilterIndex::new();
    let mut sharded: Vec<ShardedFilterIndex<usize>> = SHARD_COUNTS
        .iter()
        .map(|&s| ShardedFilterIndex::with_shards(s))
        .collect();
    for (i, f) in filters.iter().enumerate() {
        oracle.insert(i, f);
        for idx in &mut sharded {
            idx.insert(i, f);
        }
    }
    for (i, _) in filters.iter().enumerate() {
        if removed[i % removed.len()] {
            oracle.remove(&i);
            for idx in &mut sharded {
                idx.remove(&i);
            }
        }
    }
    (oracle, sharded)
}

/// Canonicalizes a key list to insertion order.
fn sorted(keys: Vec<&usize>) -> Vec<usize> {
    let mut v: Vec<usize> = keys.into_iter().copied().collect();
    v.sort_unstable();
    v
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Sharded matching at every shard count is byte-identical (canonical
    /// order) to the sequential index.
    #[test]
    fn sharded_matching_equals_sequential((filters, removed) in workload(), n in notification()) {
        let (oracle, sharded) = build(&filters, &removed);
        let expected = sorted(oracle.matching_keys(&n));
        for idx in &sharded {
            prop_assert_eq!(
                sorted(idx.matching_keys(&n)),
                expected.clone(),
                "{} shards disagree on {}", idx.shard_count(), n
            );
            prop_assert_eq!(idx.any_match(&n), !expected.is_empty());
        }
    }

    /// `match_batch` — sequential and with forced workers — returns, per
    /// lane, exactly the sequential per-notification result.
    #[test]
    fn match_batch_equals_sequential(
        (filters, removed) in workload(),
        ns in prop::collection::vec(notification(), 0..80),
        workers in 0usize..4,
    ) {
        let (oracle, sharded) = build(&filters, &removed);
        let expected: Vec<Vec<usize>> = ns
            .iter()
            .map(|n| sorted(oracle.matching_keys(n)))
            .collect();
        // The sequential index's own batch kernel…
        let got: Vec<Vec<usize>> = oracle
            .match_batch_with_workers(&ns, workers)
            .into_iter()
            .map(|ks| ks.into_iter().copied().collect())
            .collect();
        prop_assert_eq!(&got, &expected, "FilterIndex::match_batch disagrees");
        // …and every sharded layout.
        for idx in &sharded {
            let got: Vec<Vec<usize>> = idx
                .match_batch_with_workers(&ns, workers)
                .into_iter()
                .map(|ks| ks.into_iter().copied().collect())
                .collect();
            prop_assert_eq!(&got, &expected, "{} shards disagree", idx.shard_count());
        }
    }

    /// The covering-domain queries are shard-count independent.
    #[test]
    fn sharded_covering_queries_equal_sequential((filters, removed) in workload(), probe in filter()) {
        let (oracle, sharded) = build(&filters, &removed);
        let covering = sorted(oracle.covering_keys(&probe));
        let covered = sorted(oracle.covered_keys(&probe));
        let same_attr = sorted(oracle.same_attr_keys(&probe));
        for idx in &sharded {
            let s = idx.shard_count();
            prop_assert_eq!(sorted(idx.covering_keys(&probe)), covering.clone(), "{} shards", s);
            prop_assert_eq!(idx.covers_any(&probe), !covering.is_empty(), "{} shards", s);
            prop_assert_eq!(sorted(idx.covered_keys(&probe)), covered.clone(), "{} shards", s);
            prop_assert_eq!(sorted(idx.same_attr_keys(&probe)), same_attr.clone(), "{} shards", s);
        }
    }
}

/// The parallel paths require the indexes to be shareable across threads;
/// pin that at compile time so a reintroduced `RefCell` (or any other
/// interior mutability) fails the build, not a race.
#[test]
fn indexes_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<FilterIndex<u64>>();
    assert_send_sync::<ShardedFilterIndex<u64>>();
    assert_send_sync::<MatchScratch>();
}

/// Several threads match concurrently against one shared `&index`, each
/// with its own scratch, while the main thread runs batch matching with
/// forced workers — results must all agree with the sequential walk.
#[test]
fn concurrent_matching_smoke() {
    let mut index: ShardedFilterIndex<u32> = ShardedFilterIndex::with_shards(8);
    for i in 0..2000u32 {
        let service = ["parking", "weather", "traffic", "stock"][(i % 4) as usize];
        let mut f = Filter::new().with("service", Constraint::Eq(service.into()));
        if i % 3 == 0 {
            f = f.with("cost", Constraint::Lt(Value::Int((i % 40) as i64)));
        }
        if i % 2 == 0 {
            f = f.with(
                "location",
                Constraint::any_location_of([i % 50, (i + 7) % 50]),
            );
        }
        index.insert(i, &f);
    }
    let notifications: Vec<Notification> = (0..256)
        .map(|i| {
            Notification::builder()
                .attr(
                    "service",
                    ["parking", "weather", "traffic", "stock"][(i % 4) as usize],
                )
                .attr("cost", (i % 45) as i64)
                .attr("location", Value::Location(i % 50))
                .build()
        })
        .collect();
    let expected: Vec<Vec<u32>> = notifications
        .iter()
        .map(|n| {
            let mut v: Vec<u32> = index.matching_keys(n).into_iter().copied().collect();
            v.sort_unstable();
            v
        })
        .collect();

    std::thread::scope(|scope| {
        for t in 0..4 {
            let index = &index;
            let notifications = &notifications;
            let expected = &expected;
            scope.spawn(move || {
                let mut scratch = MatchScratch::new();
                for (i, n) in notifications.iter().enumerate().skip(t).step_by(4) {
                    let mut got: Vec<u32> = index
                        .matching_keys_with(n, &mut scratch)
                        .into_iter()
                        .copied()
                        .collect();
                    got.sort_unstable();
                    assert_eq!(got, expected[i], "thread {t} disagrees on {n}");
                }
            });
        }
        // Meanwhile: batch matching with forced parallel workers.
        let batched = index.match_batch_with_workers(&notifications, 4);
        for (i, keys) in batched.into_iter().enumerate() {
            let got: Vec<u32> = keys.into_iter().copied().collect();
            assert_eq!(got, expected[i], "batch lane {i} disagrees");
        }
    });
}
