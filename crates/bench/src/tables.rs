//! Regeneration of Tables 1–4 of the paper.
//!
//! All four tables are deterministic outputs of the `ploc` function and the
//! adaptivity scheme over the Figure 7 movement graph, so the experiment
//! simply evaluates the same functions the middleware uses and formats them
//! the way the paper prints them.

use std::collections::BTreeSet;

use rebeca_location::{AdaptivityPlan, LocationId, MovementGraph};
use serde::Serialize;

/// One row of a ploc table: the time / filter index and the location sets per
/// column (one column per location of the movement graph, in name order).
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PlocRow {
    /// The row index (`t` in the paper).
    pub t: usize,
    /// One rendered location set per column, e.g. `"{a, b, c}"`.
    pub sets: Vec<String>,
}

/// A regenerated table: caption, column headers and rows.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct PlocTable {
    /// Which paper artefact the table reproduces.
    pub caption: String,
    /// Column headers (`x = a`, `x = b`, …).
    pub columns: Vec<String>,
    /// The rows in increasing `t`.
    pub rows: Vec<PlocRow>,
}

impl PlocTable {
    /// Renders the table as fixed-width text, mirroring the paper's layout.
    pub fn render(&self) -> String {
        let mut width = self.columns.iter().map(String::len).max().unwrap_or(0);
        for row in &self.rows {
            for s in &row.sets {
                width = width.max(s.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("{}\n", self.caption));
        out.push_str(&format!("{:>3} ", "t"));
        for c in &self.columns {
            out.push_str(&format!(" {c:width$}"));
        }
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format!("{:>3} ", row.t));
            for s in &row.sets {
                out.push_str(&format!(" {s:width$}"));
            }
            out.push('\n');
        }
        out
    }
}

fn render_set(graph: &MovementGraph, set: &BTreeSet<LocationId>) -> String {
    let names: Vec<&str> = set.iter().filter_map(|l| graph.space().name(*l)).collect();
    format!("{{{}}}", names.join(", "))
}

fn column_headers(graph: &MovementGraph) -> Vec<String> {
    graph
        .space()
        .iter()
        .map(|(_, name)| format!("x = {name}"))
        .collect()
}

/// Table 1: `ploc(x, t)` over the Figure 7 movement graph for `t = 0..=3`.
pub fn table1() -> PlocTable {
    let graph = MovementGraph::paper_example();
    let rows = (0..=3)
        .map(|t| PlocRow {
            t,
            sets: graph
                .space()
                .ids()
                .map(|x| render_set(&graph, &graph.ploc(x, t)))
                .collect(),
        })
        .collect();
    PlocTable {
        caption: "Table 1: values of ploc(x, t) for the example movement graph (Fig. 7)".into(),
        columns: column_headers(&graph),
        rows,
    }
}

/// One row of Table 2: the per-hop filters `F_3 … F_0` at a point in time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize)]
pub struct FilterRow {
    /// The time step (0, 1, 2 — client at a, b, d).
    pub t: usize,
    /// The client's location at that time (by name).
    pub location: String,
    /// Rendered filters, ordered `F_k … F_0` like the paper prints them.
    pub filters: Vec<String>,
}

/// Table 2: the filters `F_0 … F_3` along the Figure 6 path while the client
/// moves a → b → d, with one additional step of uncertainty per hop.
pub fn table2() -> Vec<FilterRow> {
    let graph = MovementGraph::paper_example();
    let plan = AdaptivityPlan::one_step_per_hop(3);
    let itinerary = ["a", "b", "d"];
    itinerary
        .iter()
        .enumerate()
        .map(|(t, name)| {
            let x = graph.space().id(name).expect("location exists");
            let sets = plan.location_sets(&graph, x);
            // The paper prints F3 F2 F1 F0 (left to right).
            let filters = sets.iter().rev().map(|s| render_set(&graph, s)).collect();
            FilterRow {
                t,
                location: (*name).to_string(),
                filters,
            }
        })
        .collect()
}

/// Renders Table 2 as text.
pub fn render_table2(rows: &[FilterRow]) -> String {
    let mut out = String::new();
    out.push_str("Table 2: values of filters in the example setting (client moves a -> b -> d)\n");
    out.push_str(&format!(
        "{:>6} {:>20} {:>20} {:>15} {:>8}\n",
        "time t", "F3", "F2", "F1", "F0"
    ));
    for row in rows {
        out.push_str(&format!(
            "{:>6} {:>20} {:>20} {:>15} {:>8}\n",
            row.t, row.filters[0], row.filters[1], row.filters[2], row.filters[3]
        ));
    }
    out
}

/// Table 3: `ploc(x, t)` for the two trivial schemes — global sub/unsub (top)
/// and flooding with client-side filtering (bottom).  Returns `(top, bottom)`.
pub fn table3() -> (PlocTable, PlocTable) {
    let graph = MovementGraph::paper_example();
    let columns = column_headers(&graph);

    let build = |caption: &str, plan: &AdaptivityPlan| PlocTable {
        caption: caption.to_string(),
        columns: columns.clone(),
        rows: (0..=3)
            .map(|t| PlocRow {
                t,
                sets: graph
                    .space()
                    .ids()
                    .map(|x| render_set(&graph, &plan.location_set_at(&graph, x, t)))
                    .collect(),
            })
            .collect(),
    };

    let top = build(
        "Table 3 (top): ploc(x, t) for the trivial global sub/unsub implementation",
        &AdaptivityPlan::global_sub_unsub(3),
    );
    let bottom = build(
        "Table 3 (bottom): ploc(x, t) for flooding with client-side filtering",
        &AdaptivityPlan::flooding(3),
    );
    (top, bottom)
}

/// Table 4 (and Figure 8): `ploc(x, t)` for the concrete timing values of
/// Section 5.3 — `Δ = 100 ms`, `δ = [120, 50, 50] ms` along the path — plus
/// the per-hop uncertainty steps derived by the adaptivity rule.
pub fn table4() -> (PlocTable, Vec<usize>) {
    let graph = MovementGraph::paper_example();
    let plan = AdaptivityPlan::adaptive(100_000, &[120_000, 50_000, 50_000]);
    let table = PlocTable {
        caption: "Table 4: ploc(x, t) for Δ = 100 ms, δ = [120, 50, 50] ms (Fig. 8)".into(),
        columns: column_headers(&graph),
        rows: (0..plan.steps().len())
            .map(|t| PlocRow {
                t,
                sets: graph
                    .space()
                    .ids()
                    .map(|x| render_set(&graph, &plan.location_set_at(&graph, x, t)))
                    .collect(),
            })
            .collect(),
    };
    (table, plan.steps().to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_the_paper() {
        let t = table1();
        assert_eq!(t.rows.len(), 4);
        // Row t = 0: singletons.
        assert_eq!(t.rows[0].sets, vec!["{a}", "{b}", "{c}", "{d}"]);
        // Row t = 1 as printed in the paper.
        assert_eq!(
            t.rows[1].sets,
            vec!["{a, b, c}", "{a, b, d}", "{a, c, d}", "{b, c, d}"]
        );
        // Rows t = 2 and t = 3: the full location set.
        for r in 2..=3 {
            assert!(t.rows[r].sets.iter().all(|s| s == "{a, b, c, d}"));
        }
    }

    #[test]
    fn table2_matches_the_paper() {
        let rows = table2();
        assert_eq!(rows.len(), 3);
        // t = 0, client at a: F3..F0 = {a,b,c,d}, {a,b,c,d}, {a,b,c}, {a}
        assert_eq!(
            rows[0].filters,
            vec!["{a, b, c, d}", "{a, b, c, d}", "{a, b, c}", "{a}"]
        );
        // t = 1, client at b.
        assert_eq!(
            rows[1].filters,
            vec!["{a, b, c, d}", "{a, b, c, d}", "{a, b, d}", "{b}"]
        );
        // t = 2, client at d.
        assert_eq!(
            rows[2].filters,
            vec!["{a, b, c, d}", "{a, b, c, d}", "{b, c, d}", "{d}"]
        );
    }

    #[test]
    fn table3_matches_the_paper() {
        let (top, bottom) = table3();
        // Global sub/unsub: t = 0 singletons, every t >= 1 equals the t = 1 ball.
        assert_eq!(top.rows[0].sets, vec!["{a}", "{b}", "{c}", "{d}"]);
        for r in 1..=3 {
            assert_eq!(
                top.rows[r].sets,
                vec!["{a, b, c}", "{a, b, d}", "{a, c, d}", "{b, c, d}"]
            );
        }
        // Flooding: t = 0 singletons, everything else the full set.
        assert_eq!(bottom.rows[0].sets, vec!["{a}", "{b}", "{c}", "{d}"]);
        for r in 1..=3 {
            assert!(bottom.rows[r].sets.iter().all(|s| s == "{a, b, c, d}"));
        }
    }

    #[test]
    fn table4_matches_the_paper() {
        let (table, steps) = table4();
        assert_eq!(steps, vec![0, 1, 1, 2]);
        assert_eq!(table.rows[0].sets, vec!["{a}", "{b}", "{c}", "{d}"]);
        assert_eq!(
            table.rows[1].sets,
            vec!["{a, b, c}", "{a, b, d}", "{a, c, d}", "{b, c, d}"]
        );
        assert_eq!(table.rows[2].sets, table.rows[1].sets);
        assert!(table.rows[3].sets.iter().all(|s| s == "{a, b, c, d}"));
    }

    #[test]
    fn rendering_produces_readable_text() {
        let t = table1();
        let text = t.render();
        assert!(text.contains("Table 1"));
        assert!(text.contains("{a, b, c}"));
        let rows = table2();
        assert!(render_table2(&rows).contains("F0"));
    }
}
