//! Broker-side batch draining: with [`BrokerConfig::drain_interval`] set,
//! transit notifications are coalesced and flushed through the batch
//! matching path, so the same deliveries reach consumers with fewer link
//! messages.

use rebeca_broker::ClientId;
use rebeca_core::{BrokerConfig, ClientAction, LogicalMobilityMode, SystemBuilder};
use rebeca_filter::{Constraint, Filter, Notification};
use rebeca_location::MovementGraph;
use rebeca_routing::RoutingStrategyKind;
use rebeca_sim::{DelayModel, SimDuration, SimTime, Topology};

fn telemetry_filter() -> Filter {
    Filter::new().with("service", Constraint::Eq("telemetry".into()))
}

fn reading(i: u64) -> Notification {
    Notification::builder()
        .attr("service", "telemetry")
        .attr("reading", i as i64)
        .build()
}

/// A 5-broker line with the consumer at one end and a fast producer at the
/// other; returns `(delivered publisher seqs, total link messages,
/// drain flushes)`.
fn run_line(drain_interval: Option<SimDuration>) -> (Vec<u64>, u64, u64) {
    let config = BrokerConfig::default()
        .with_strategy(RoutingStrategyKind::Covering)
        .with_movement_graph(MovementGraph::paper_example())
        .with_relocation_timeout(SimDuration::from_secs(10))
        .with_drain_interval(drain_interval);
    let mut sys = SystemBuilder::new(&Topology::line(5))
        .config(config)
        .link_delay(DelayModel::constant_millis(5))
        .seed(42)
        .build()
        .unwrap();
    let consumer = ClientId::new(1);
    let producer = ClientId::new(2);
    sys.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[0],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(0).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(telemetry_filter()),
            ),
        ],
    )
    .unwrap();
    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(4).unwrap(),
        },
    )];
    // 60 publications, 2 ms apart: with a 10 ms drain interval several
    // notifications arrive per flush window on every hop.
    for i in 0..60u64 {
        script.push((
            SimTime::from_millis(50 + i * 2),
            ClientAction::Publish(reading(i)),
        ));
    }
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[4],
        script,
    )
    .unwrap();
    sys.run_until(SimTime::from_secs(5));

    let log = sys.client_log(consumer).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    (
        log.publisher_seqs(producer),
        sys.total_messages(),
        sys.metrics().counter("broker.drain_flush"),
    )
}

/// The ROADMAP item end to end: the drain timer coalesces queued transit
/// notifications into `route_envelope_batch` calls, producing measurably
/// fewer link messages at exactly equal deliveries.
#[test]
fn draining_reduces_link_messages_at_equal_deliveries() {
    let (immediate_seqs, immediate_messages, _) = run_line(None);
    let (drained_seqs, drained_messages, flushes) = run_line(Some(SimDuration::from_millis(10)));

    assert_eq!(
        immediate_seqs,
        (1..=60).collect::<Vec<u64>>(),
        "baseline delivers the full stream in order"
    );
    assert_eq!(
        drained_seqs, immediate_seqs,
        "draining must not change what consumers receive, nor the order"
    );
    assert!(flushes > 0, "the drain timer must actually fire");
    assert!(
        drained_messages < immediate_messages,
        "coalescing must reduce link messages: drained {drained_messages} vs \
         immediate {immediate_messages}"
    );
    // The reduction is substantial, not incidental: each 10 ms window holds
    // ~5 publications, so transit hops shrink by whole batches.
    assert!(
        (drained_messages as f64) < 0.8 * immediate_messages as f64,
        "expected >20% fewer link messages, got {drained_messages} vs {immediate_messages}"
    );
}

/// Draining composes with relocation: a client that moves mid-stream under
/// an active drain queue still gets a complete, ordered stream.
#[test]
fn draining_composes_with_relocation() {
    let config = BrokerConfig::default()
        .with_strategy(RoutingStrategyKind::Covering)
        .with_movement_graph(MovementGraph::paper_example())
        .with_relocation_timeout(SimDuration::from_secs(30))
        .with_drain_interval(Some(SimDuration::from_millis(10)));
    let mut sys = SystemBuilder::new(&Topology::figure5())
        .config(config)
        .link_delay(DelayModel::constant_millis(5))
        .seed(7)
        .build()
        .unwrap();
    let consumer = ClientId::new(1);
    let producer = ClientId::new(2);
    sys.add_client(
        consumer,
        LogicalMobilityMode::LocationDependent,
        &[5, 0],
        vec![
            (
                SimTime::from_millis(1),
                ClientAction::Attach {
                    broker: sys.broker_node(5).unwrap(),
                },
            ),
            (
                SimTime::from_millis(2),
                ClientAction::Subscribe(telemetry_filter()),
            ),
            (
                SimTime::from_millis(300),
                ClientAction::MoveTo {
                    broker: sys.broker_node(0).unwrap(),
                },
            ),
        ],
    )
    .unwrap();
    let mut script = vec![(
        SimTime::from_millis(1),
        ClientAction::Attach {
            broker: sys.broker_node(7).unwrap(),
        },
    )];
    for i in 0..80u64 {
        script.push((
            SimTime::from_millis(50 + i * 8),
            ClientAction::Publish(reading(i)),
        ));
    }
    sys.add_client(
        producer,
        LogicalMobilityMode::LocationDependent,
        &[7],
        script,
    )
    .unwrap();
    sys.run_until(SimTime::from_secs(10));

    let log = sys.client_log(consumer).unwrap();
    assert!(log.is_clean(), "violations: {:?}", log.violations());
    assert_eq!(
        log.distinct_publisher_seqs(producer),
        (1..=80).collect::<Vec<u64>>(),
        "every publication must survive the drained hand-over exactly once"
    );
    assert!(
        sys.metrics().counter("broker.drain_flush") > 0,
        "drain flushes must have happened during the run"
    );
}
