//! Content-based routing strategies.
//!
//! Section 2.2 of the paper distinguishes *flooding*, *simple routing*,
//! *identity-based routing* (combining equal filters), *covering routing*
//! (Siena-style covering tests) and *merging routing* (creating covers of
//! existing filters).  A [`RoutingEngine`] bundles a
//! [`RoutingTable`](crate::RoutingTable) with one of these strategies and
//! answers the two questions every broker has to decide:
//!
//! 1. to which links must a notification be forwarded
//!    ([`RoutingEngine::route`]), and
//! 2. must an incoming (un)subscription be propagated to the remaining
//!    neighbours, and if so with which filter
//!    ([`RoutingEngine::handle_subscribe`] /
//!    [`RoutingEngine::handle_unsubscribe`]).
//!
//! The propagation decision is tracked **per neighbouring link**: a
//! subscription is suppressed towards a neighbour only when a filter covering
//! it has already been propagated *to that neighbour*.  (A broker never
//! propagates a subscription back over the link it came from, so a second
//! subscriber with an identical filter behind a different link still causes
//! the subscription to be propagated in its direction — getting this wrong
//! silently cuts delivery paths in multi-consumer deployments.)
//!
//! The routing decision itself always uses the full subscription information
//! and is therefore exact under every strategy; the strategies only differ in
//! how aggressively administration traffic is suppressed and how compact the
//! *forwarded* filters are — exactly the trade-off the paper's mobility
//! algorithms exploit ("covering and merging can be exploited, too").

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rebeca_filter::{Filter, Notification};
use rebeca_matcher::FilterSet;

use crate::table::RoutingTable;

/// The routing strategy used by a broker.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize, Default)]
pub enum RoutingStrategyKind {
    /// Notifications are forwarded on every link; subscriptions are never
    /// propagated.
    Flooding,
    /// Every subscription is stored and propagated unchanged.
    Simple,
    /// Identical subscriptions are combined: a subscription is propagated
    /// towards a neighbour only when no identical filter has been propagated
    /// to that neighbour before.
    Identity,
    /// Covered subscriptions are suppressed: a subscription is propagated
    /// towards a neighbour only when no filter covering it has been
    /// propagated to that neighbour before (default, matches the Rebeca
    /// deployment assumed by the paper).
    #[default]
    Covering,
    /// Like covering, but additionally tries to propagate perfect mergers of
    /// filters instead of the individual filters.
    Merging,
}

/// What a broker must do after processing an unsubscription.
#[derive(Debug, Clone, PartialEq)]
pub struct UnsubscriptionEffect<D> {
    /// Unsubscriptions to propagate, as `(neighbour, filter)` pairs.
    pub forwards: Vec<(D, Filter)>,
    /// `true` when the filter was actually found and removed locally.
    pub removed: bool,
}

/// A routing table plus the propagation logic of one routing strategy.
#[derive(Debug, Clone)]
pub struct RoutingEngine<D> {
    kind: RoutingStrategyKind,
    table: RoutingTable<D>,
    /// Filters this broker has already propagated to each neighbour (and not
    /// yet retracted), reduced under the strategy's redundancy notion.  Used
    /// to suppress duplicate administration traffic per link.
    forwarded: BTreeMap<D, FilterSet>,
}

impl<D: Ord + Clone> RoutingEngine<D> {
    /// Creates an engine with the given strategy and an empty table.
    pub fn new(kind: RoutingStrategyKind) -> Self {
        Self {
            kind,
            table: RoutingTable::new(),
            forwarded: BTreeMap::new(),
        }
    }

    /// The strategy in use.
    pub fn kind(&self) -> RoutingStrategyKind {
        self.kind
    }

    /// Read access to the underlying routing table.
    pub fn table(&self) -> &RoutingTable<D> {
        &self.table
    }

    /// Mutable access to the underlying routing table (used by the mobility
    /// protocols, which re-point entries during relocation).
    pub fn table_mut(&mut self) -> &mut RoutingTable<D> {
        &mut self.table
    }

    /// Destinations a notification must be forwarded to.
    ///
    /// Under [`RoutingStrategyKind::Flooding`] this is every destination the
    /// broker knows (`all_links`) except the one the notification came from;
    /// under every other strategy it is the set of links with a matching
    /// subscription.
    pub fn route(&self, notification: &Notification, from: Option<&D>, all_links: &[D]) -> Vec<D> {
        match self.kind {
            RoutingStrategyKind::Flooding => all_links
                .iter()
                .filter(|l| Some(*l) != from)
                .cloned()
                .collect(),
            _ => self.table.matching_destinations(notification, from),
        }
    }

    /// Visits each destination a notification must be forwarded to, exactly
    /// once, in ascending destination order — the visitor variant of
    /// [`RoutingEngine::route`] used on the broker's forwarding hot path:
    /// no matching-key vector and no cloned destination vector are built
    /// (the table still keeps a small per-call deduplication set).
    pub fn for_each_route(
        &self,
        notification: &Notification,
        from: Option<&D>,
        all_links: &[D],
        mut visit: impl FnMut(&D),
    ) {
        match self.kind {
            RoutingStrategyKind::Flooding => {
                for l in all_links.iter().filter(|l| Some(*l) != from) {
                    visit(l);
                }
            }
            _ => self
                .table
                .for_each_matching_destination(notification, from, visit),
        }
    }

    /// Routes a whole queue of notifications at once via the routing
    /// table's batch matcher.  Equivalent to calling
    /// [`RoutingEngine::route`] per notification; under
    /// [`RoutingStrategyKind::Flooding`] every notification floods to all
    /// links except `from`.
    pub fn route_batch<N>(&self, ns: &[N], from: Option<&D>, all_links: &[D]) -> Vec<Vec<D>>
    where
        N: std::borrow::Borrow<Notification> + Sync,
        D: Sync,
    {
        match self.kind {
            RoutingStrategyKind::Flooding => {
                let flood: Vec<D> = all_links
                    .iter()
                    .filter(|l| Some(*l) != from)
                    .cloned()
                    .collect();
                ns.iter().map(|_| flood.clone()).collect()
            }
            _ => self.table.matching_destinations_batch(ns, from),
        }
    }

    /// Processes a subscription received from `from` and decides towards
    /// which of the `neighbours` it has to be propagated, and as what filter.
    ///
    /// Returns `(neighbour, filter)` pairs; under merging routing the filter
    /// may be a perfect merger covering the original subscription.
    pub fn handle_subscribe(
        &mut self,
        filter: Filter,
        from: D,
        neighbours: &[D],
    ) -> Vec<(D, Filter)> {
        // The table always records the precise subscription so that routing
        // stays exact and unsubscription can later remove exactly one
        // instance.
        self.table.insert(filter.clone(), from.clone());

        if self.kind == RoutingStrategyKind::Flooding {
            return Vec::new();
        }

        let mut forwards = Vec::new();
        for target in neighbours {
            if *target == from {
                continue;
            }
            let sent = self.forwarded.entry(target.clone()).or_default();
            match self.kind {
                RoutingStrategyKind::Flooding => unreachable!("handled above"),
                RoutingStrategyKind::Simple => {
                    sent.insert_simple(filter.clone());
                    forwards.push((target.clone(), filter.clone()));
                }
                RoutingStrategyKind::Identity => {
                    if !sent.contains(&filter) {
                        sent.insert_simple(filter.clone());
                        forwards.push((target.clone(), filter.clone()));
                    }
                }
                RoutingStrategyKind::Covering => {
                    if !sent.covers(&filter) {
                        sent.insert_covering(filter.clone());
                        forwards.push((target.clone(), filter.clone()));
                    }
                }
                RoutingStrategyKind::Merging => {
                    if !sent.covers(&filter) {
                        sent.insert_merging(filter.clone());
                        let cover = sent
                            .iter()
                            .find(|f| f.covers(&filter))
                            .cloned()
                            .unwrap_or_else(|| filter.clone());
                        forwards.push((target.clone(), cover));
                    }
                }
            }
        }
        forwards
    }

    /// Processes an unsubscription received from `from`.
    ///
    /// The unsubscription is propagated towards a neighbour only when no
    /// remaining subscription (from any other link) still needs the
    /// previously propagated path.  The check is conservative: keeping a
    /// stale upstream subscription is safe (it only costs traffic), while
    /// retracting one that is still needed would cut a delivery path.
    pub fn handle_unsubscribe(
        &mut self,
        filter: &Filter,
        from: &D,
        neighbours: &[D],
    ) -> UnsubscriptionEffect<D> {
        let removed = self.table.remove(filter, from);
        if !removed || self.kind == RoutingStrategyKind::Flooding {
            return UnsubscriptionEffect {
                forwards: Vec::new(),
                removed,
            };
        }

        // Remaining subscriptions the retracted filter still pays for,
        // pruned through the index instead of a full table scan (identical
        // filters cover each other, so `covered_entries` subsumes the
        // equality case used by simple/identity routing).
        let dependants: Vec<D> = match self.kind {
            RoutingStrategyKind::Covering | RoutingStrategyKind::Merging => self
                .table
                .covered_entries(filter)
                .into_iter()
                .map(|(link, _)| link.clone())
                .collect(),
            _ => self.table.destinations_with_identical(filter, None),
        };
        let mut forwards = Vec::new();
        for target in neighbours {
            if target == from {
                continue;
            }
            // Is the path towards `target`'s subscribers... (no: towards *us*
            // from target) still required?  It is, when some remaining
            // subscription from a link other than `target` is covered by the
            // retracted filter (identity/simple: is identical to it).
            let still_needed = dependants.iter().any(|link| link != target);
            if still_needed {
                continue;
            }
            let sent = self.forwarded.entry(target.clone()).or_default();
            let had_forwarded = sent.contains(filter) || sent.covers(filter);
            if had_forwarded {
                sent.remove(filter);
                sent.remove_covered_by(filter);
                forwards.push((target.clone(), filter.clone()));
            }
        }
        UnsubscriptionEffect { forwards, removed }
    }

    /// Number of `(filter, destination)` entries in the routing table.
    pub fn table_size(&self) -> usize {
        self.table.len()
    }

    /// Number of subscription subgroups (distinct filters) in the routing
    /// table — the size the predicate index actually pays.
    pub fn subgroup_count(&self) -> usize {
        self.table.subgroup_count()
    }

    /// Number of distinct filters this broker has propagated towards the
    /// given neighbour and not yet retracted (the size the *neighbour's*
    /// routing table pays for this broker).
    pub fn forwarded_size(&self, target: &D) -> usize {
        self.forwarded.get(target).map(FilterSet::len).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_filter::Constraint;

    fn parking(max: i64) -> Filter {
        Filter::new()
            .with("service", Constraint::Eq("parking".into()))
            .with("cost", Constraint::Lt(max.into()))
    }

    fn loc(l: &[u32]) -> Filter {
        Filter::new().with("location", Constraint::any_location_of(l.iter().copied()))
    }

    fn vacancy(cost: i64) -> Notification {
        Notification::builder()
            .attr("service", "parking")
            .attr("cost", cost)
            .build()
    }

    const LINKS: &[u32] = &[1, 2, 3];

    #[test]
    fn flooding_routes_everywhere_and_never_forwards_subs() {
        let mut e: RoutingEngine<u32> = RoutingEngine::new(RoutingStrategyKind::Flooding);
        let forwards = e.handle_subscribe(parking(3), 1, LINKS);
        assert!(forwards.is_empty());
        let dests = e.route(&vacancy(2), Some(&2), &[1, 2, 3]);
        assert_eq!(dests, vec![1, 3]);
    }

    #[test]
    fn simple_routing_forwards_every_subscription_to_every_other_link() {
        let mut e: RoutingEngine<u32> = RoutingEngine::new(RoutingStrategyKind::Simple);
        let forwards = e.handle_subscribe(parking(3), 1, LINKS);
        assert_eq!(forwards.len(), 2);
        assert!(forwards.iter().all(|(d, _)| *d != 1));
        let forwards = e.handle_subscribe(parking(3), 2, LINKS);
        assert_eq!(forwards.len(), 2);
        assert_eq!(e.table_size(), 2);
    }

    #[test]
    fn identity_routing_suppresses_identical_filters_per_target() {
        let mut e: RoutingEngine<u32> = RoutingEngine::new(RoutingStrategyKind::Identity);
        // First subscription from link 1: forwarded to links 2 and 3.
        assert_eq!(e.handle_subscribe(parking(3), 1, LINKS).len(), 2);
        // Identical subscription from link 2: link 3 already knows it, but
        // link 1 does not — exactly one forward, towards link 1.
        let forwards = e.handle_subscribe(parking(3), 2, LINKS);
        assert_eq!(forwards.len(), 1);
        assert_eq!(forwards[0].0, 1);
        // A different filter is forwarded everywhere again.
        assert_eq!(e.handle_subscribe(parking(5), 2, LINKS).len(), 2);
    }

    #[test]
    fn covering_routing_suppresses_covered_filters_per_target() {
        let mut e: RoutingEngine<u32> = RoutingEngine::new(RoutingStrategyKind::Covering);
        assert_eq!(e.handle_subscribe(parking(10), 1, LINKS).len(), 2);
        // Covered filter from link 2: only link 1 still needs to learn about
        // a path in that direction.
        let forwards = e.handle_subscribe(parking(3), 2, LINKS);
        assert_eq!(forwards.len(), 1);
        assert_eq!(forwards[0].0, 1);
        // A wider filter is not covered and propagates to the other links.
        let forwards = e.handle_subscribe(parking(20), 2, LINKS);
        assert_eq!(forwards.len(), 2);
        // Routing stays exact: only link 2 subscribed to vacancies this
        // expensive; cheaper ones reach both subscriber links.
        assert_eq!(e.route(&vacancy(15), None, LINKS), vec![2]);
        assert_eq!(e.route(&vacancy(5), None, LINKS), vec![1, 2]);
        assert_eq!(e.route(&vacancy(1), None, LINKS), vec![1, 2]);
    }

    #[test]
    fn merging_routing_forwards_mergers() {
        let mut e: RoutingEngine<u32> = RoutingEngine::new(RoutingStrategyKind::Merging);
        let forwards = e.handle_subscribe(loc(&[1]), 1, &[1, 2]);
        assert_eq!(forwards, vec![(2, loc(&[1]))]);
        let forwards = e.handle_subscribe(loc(&[2]), 1, &[1, 2]);
        // The forwarded filter towards link 2 is the merger {1, 2}.
        assert_eq!(forwards, vec![(2, loc(&[1, 2]))]);
        assert_eq!(e.forwarded_size(&2), 1);
        // A third subscription covered by the merger is suppressed.
        assert!(e.handle_subscribe(loc(&[1, 2]), 1, &[1, 2]).is_empty());
    }

    #[test]
    fn routing_is_exact_under_every_strategy() {
        for kind in [
            RoutingStrategyKind::Simple,
            RoutingStrategyKind::Identity,
            RoutingStrategyKind::Covering,
            RoutingStrategyKind::Merging,
        ] {
            let mut e: RoutingEngine<u32> = RoutingEngine::new(kind);
            e.handle_subscribe(parking(3), 1, LINKS);
            e.handle_subscribe(parking(10), 2, LINKS);
            assert_eq!(e.route(&vacancy(5), None, LINKS), vec![2], "{kind:?}");
            assert_eq!(e.route(&vacancy(1), None, LINKS), vec![1, 2], "{kind:?}");
        }
    }

    #[test]
    fn unsubscribe_forwards_only_when_no_other_link_needs_the_path() {
        let mut e: RoutingEngine<u32> = RoutingEngine::new(RoutingStrategyKind::Simple);
        e.handle_subscribe(parking(3), 1, LINKS);
        e.handle_subscribe(parking(3), 2, LINKS);
        // Removing link 1's subscription: link 3 still serves link 2's
        // identical subscription, so nothing is retracted towards link 3; the
        // path towards link 2 itself is no longer needed for link 1... but
        // link 2's own subscription never required a forward towards link 2,
        // so only the forward towards link 2 that served link 1 is retracted.
        let eff = e.handle_unsubscribe(&parking(3), &1, LINKS);
        assert!(eff.removed);
        assert!(eff.forwards.iter().all(|(d, _)| *d == 2));
        // Removing the last instance retracts the remaining forwards.
        let eff = e.handle_unsubscribe(&parking(3), &2, LINKS);
        assert!(eff.removed);
        assert!(!eff.forwards.is_empty());
        assert_eq!(e.table_size(), 0);
    }

    #[test]
    fn unsubscribe_of_unknown_filter_is_a_noop() {
        let mut e: RoutingEngine<u32> = RoutingEngine::new(RoutingStrategyKind::Covering);
        let eff = e.handle_unsubscribe(&parking(3), &1, LINKS);
        assert!(!eff.removed);
        assert!(eff.forwards.is_empty());
    }

    #[test]
    fn covering_unsubscribe_keeps_cover_while_covered_subs_remain() {
        let mut e: RoutingEngine<u32> = RoutingEngine::new(RoutingStrategyKind::Covering);
        e.handle_subscribe(parking(10), 1, LINKS);
        e.handle_subscribe(parking(3), 2, LINKS);
        // Removing the wide filter: the narrow subscription from link 2 is
        // still covered by it, so the forward towards link 3 must stay.
        let eff = e.handle_unsubscribe(&parking(10), &1, LINKS);
        assert!(eff.removed);
        assert!(eff.forwards.iter().all(|(d, _)| *d != 3));
    }

    #[test]
    fn flooding_never_forwards_unsubscriptions() {
        let mut e: RoutingEngine<u32> = RoutingEngine::new(RoutingStrategyKind::Flooding);
        e.handle_subscribe(parking(3), 1, LINKS);
        let eff = e.handle_unsubscribe(&parking(3), &1, LINKS);
        assert!(eff.removed);
        assert!(eff.forwards.is_empty());
    }

    #[test]
    fn second_subscriber_behind_a_different_link_gets_a_path() {
        // Regression test for the multi-consumer propagation bug: after a
        // subscription from link 1 has been propagated, an identical
        // subscription arriving from link 2 must still be propagated towards
        // link 1 (otherwise producers behind link 1 would never route
        // notifications towards link 2's subscriber).
        for kind in [
            RoutingStrategyKind::Identity,
            RoutingStrategyKind::Covering,
            RoutingStrategyKind::Merging,
        ] {
            let mut e: RoutingEngine<u32> = RoutingEngine::new(kind);
            e.handle_subscribe(parking(3), 1, &[1, 2]);
            let forwards = e.handle_subscribe(parking(3), 2, &[1, 2]);
            assert_eq!(forwards.len(), 1, "{kind:?}");
            assert_eq!(forwards[0].0, 1, "{kind:?}");
        }
    }

    #[test]
    fn route_batch_and_visitor_agree_with_route() {
        for kind in [
            RoutingStrategyKind::Flooding,
            RoutingStrategyKind::Simple,
            RoutingStrategyKind::Covering,
        ] {
            let mut e: RoutingEngine<u32> = RoutingEngine::new(kind);
            e.handle_subscribe(parking(3), 1, LINKS);
            e.handle_subscribe(parking(10), 2, LINKS);
            let ns: Vec<Notification> = (0..5).map(|i| vacancy(i * 3)).collect();
            let batch = e.route_batch(&ns, Some(&3), LINKS);
            for (n, dests) in ns.iter().zip(&batch) {
                assert_eq!(dests, &e.route(n, Some(&3), LINKS), "{kind:?}");
                let mut visited = Vec::new();
                e.for_each_route(n, Some(&3), LINKS, |d| visited.push(*d));
                assert_eq!(&visited, dests, "{kind:?}");
            }
        }
    }

    #[test]
    fn default_strategy_is_covering() {
        assert_eq!(
            RoutingStrategyKind::default(),
            RoutingStrategyKind::Covering
        );
    }
}
