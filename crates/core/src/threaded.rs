//! A wall-clock, in-process driver: one thread per node, std channels as
//! FIFO links, real `Instant` timers — no async runtime required.
//!
//! [`ThreadedDriver`] is the first deployment mode that runs the mobility
//! runtime outside the discrete-event simulator and thereby *proves* the
//! sans-IO [`Driver`] boundary: the protocol code (brokers, clients, the
//! relocation machine) is byte-for-byte the same code the simulator runs;
//! only the event loop differs.  The event-ordering pieces (due-time heap
//! with insertion-order tie-break, per-direction FIFO clamp, wall ↔ sim
//! time mapping) live in [`driver_util`](crate::driver_util) and are shared
//! with the TCP transport of `rebeca-net`.
//!
//! # How a run phase works
//!
//! Time is modelled as elapsed wall time since the driver was constructed,
//! reported as a [`SimTime`] so the two drivers share one clock vocabulary.
//! [`Driver::run_until`] executes one *phase*:
//!
//! 1. every node is moved into a worker thread together with its pending
//!    events (undelivered messages and unfired timers carried over from
//!    earlier phases),
//! 2. workers deliver events when their deadline is reached on the wall
//!    clock, dispatch them into the node, sample link delays for the
//!    harvested sends and push them into the destination's channel
//!    (clamped monotonically per link direction, preserving the FIFO link
//!    contract even under random delay models),
//! 3. when the phase deadline passes, a stop flag is raised; workers stop
//!    dispatching, meet at a panic-tolerant rendezvous (after which no
//!    further sends can happen), drain their inboxes into their pending
//!    sets and return the node plus leftovers to the driver.
//!
//! Between phases the nodes are parked in the driver, so sessions can poll
//! mailboxes, enqueue actions and inspect broker state exactly as under the
//! simulator.  Unlike [`SimDriver`](crate::SimDriver), runs are *not*
//! deterministic: scheduling jitter reorders concurrent events, which is
//! precisely the point of a wall-clock smoke deployment.

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, RecvTimeoutError, Sender};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use rebeca_broker::Message;
use rebeca_sim::{Context, DelayModel, Incoming, Metrics, Node, NodeId, SimDuration, SimTime};

use crate::driver::Driver;
use crate::driver_util::{FifoClamp, PendingQueue, WallClock};
use crate::system::SystemNode;

/// Upper bound on how long a worker blocks waiting for channel traffic
/// before re-checking the stop flag and its timer heap.
const MAX_WAIT: Duration = Duration::from_millis(1);

/// A message in flight over a channel link.
struct Wire {
    from: NodeId,
    due: SimTime,
    message: Message,
}

/// What a worker thread hands back at the end of a phase.
struct WorkerReturn {
    node: SystemNode,
    pending: PendingQueue,
    clamp: FifoClamp<NodeId>,
    metrics: Metrics,
}

/// The wall-clock driver.  See the module docs for the execution model.
pub struct ThreadedDriver {
    nodes: Vec<Option<SystemNode>>,
    neighbours: Vec<Vec<NodeId>>,
    delays: HashMap<(NodeId, NodeId), DelayModel>,
    /// FIFO clamp per directed link, carried across phases.
    clamp: FifoClamp<(NodeId, NodeId)>,
    /// Events not yet delivered, per node, carried across phases.  Each
    /// queue owns its tie-break counter, which travels with the queue into
    /// the phase worker and back — so events pushed in a later phase always
    /// tie-break after events carried over from an earlier one.
    pending: Vec<PendingQueue>,
    now: SimTime,
    seed: u64,
    phase: u64,
    metrics: Metrics,
}

impl ThreadedDriver {
    /// Creates an empty wall-clock driver; `seed` feeds the per-link delay
    /// sampling.
    pub fn new(seed: u64) -> Self {
        Self {
            nodes: Vec::new(),
            neighbours: Vec::new(),
            delays: HashMap::new(),
            clamp: FifoClamp::new(),
            pending: Vec::new(),
            now: SimTime::ZERO,
            seed,
            phase: 0,
            metrics: Metrics::new(),
        }
    }

    /// The earliest due time over every pending event, if any.
    fn next_due(&self) -> Option<SimTime> {
        self.pending.iter().filter_map(|q| q.next_due()).min()
    }

    /// Executes one wall-clock phase up to absolute driver time `until`.
    fn run_phase(&mut self, until: SimTime) -> u64 {
        if until <= self.now {
            return 0;
        }
        let n = self.nodes.len();
        if n == 0 {
            self.now = until;
            return 0;
        }
        self.phase += 1;

        // Channels: one inbox per node; senders handed to every node (the
        // link topology is enforced by the send path, which only knows the
        // delay models of existing links).
        let mut inboxes: Vec<Option<Receiver<Wire>>> = Vec::with_capacity(n);
        let mut senders: Vec<Sender<Wire>> = Vec::with_capacity(n);
        for _ in 0..n {
            let (tx, rx) = channel();
            inboxes.push(Some(rx));
            senders.push(tx);
        }

        let clock = WallClock::anchored_now(self.now);
        let stop = AtomicBool::new(false);
        let rendezvous = Rendezvous::new(n);
        let processed = AtomicU64::new(0);

        // Move per-node state into the workers.
        let mut workers: Vec<Worker> = (0..n)
            .map(|i| {
                let id = NodeId::new(i);
                Worker {
                    id,
                    node: self.nodes[i].take().expect("node parked between phases"),
                    pending: std::mem::take(&mut self.pending[i]),
                    inbox: inboxes[i].take().expect("inbox unclaimed"),
                    senders: senders.clone(),
                    neighbours: self.neighbours[i].clone(),
                    delays: self.neighbours[i]
                        .iter()
                        .map(|&to| (to, self.delays[&(id, to)]))
                        .collect(),
                    clamp: self.neighbours[i]
                        .iter()
                        .map(|&to| (to, self.clamp.watermark(&(id, to))))
                        .collect(),
                    rng: StdRng::seed_from_u64(self.seed ^ (self.phase << 20) ^ (i as u64)),
                    metrics: Metrics::new(),
                }
            })
            .collect();
        drop(senders);

        let returns: Vec<WorkerReturn> = std::thread::scope(|scope| {
            let handles: Vec<_> = workers
                .drain(..)
                .map(|worker| {
                    let stop = &stop;
                    let rendezvous = &rendezvous;
                    let processed = &processed;
                    scope.spawn(move || worker.run(clock, stop, rendezvous, processed))
                })
                .collect();

            // The main thread owns the phase clock: sleep until the
            // deadline, then raise the stop flag.
            let deadline = clock.to_wall(until);
            let now = Instant::now();
            if deadline > now {
                std::thread::sleep(deadline - now);
            }
            stop.store(true, Ordering::SeqCst);

            handles
                .into_iter()
                .map(|h| h.join().expect("worker thread panicked"))
                .collect()
        });

        // Merge per-node state back.
        for (i, ret) in returns.into_iter().enumerate() {
            let id = NodeId::new(i);
            self.nodes[i] = Some(ret.node);
            self.pending[i] = ret.pending;
            for (to, due) in ret.clamp.into_watermarks() {
                self.clamp.raise((id, to), due);
            }
            self.metrics.merge(&ret.metrics);
        }
        self.now = until;
        processed.load(Ordering::SeqCst)
    }
}

/// A panic-tolerant end-of-phase barrier.  A worker *arrives* when it has
/// stopped dispatching (and can therefore no longer send); a worker that
/// unwinds instead *defects* via its [`RendezvousGuard`].  Waiting
/// completes once every live worker has arrived, so a panicking node never
/// parks its peers forever — the panic propagates through the scope join.
struct Rendezvous {
    arrived: AtomicU64,
    active: AtomicU64,
}

impl Rendezvous {
    fn new(n: usize) -> Self {
        Self {
            arrived: AtomicU64::new(0),
            active: AtomicU64::new(n as u64),
        }
    }

    /// Marks the calling worker as arrived and waits until every worker
    /// still alive has arrived too.
    fn arrive_and_wait(&self) {
        self.arrived.fetch_add(1, Ordering::SeqCst);
        while self.arrived.load(Ordering::SeqCst) < self.active.load(Ordering::SeqCst) {
            std::thread::sleep(Duration::from_micros(100));
        }
    }
}

/// Drop guard registering a worker's defection when its thread unwinds
/// before reaching the rendezvous.
struct RendezvousGuard<'a> {
    rendezvous: &'a Rendezvous,
    arrived: bool,
}

impl Drop for RendezvousGuard<'_> {
    fn drop(&mut self) {
        if !self.arrived {
            self.rendezvous.active.fetch_sub(1, Ordering::SeqCst);
        }
    }
}

/// Per-node worker state for one phase.
struct Worker {
    id: NodeId,
    node: SystemNode,
    pending: PendingQueue,
    inbox: Receiver<Wire>,
    senders: Vec<Sender<Wire>>,
    neighbours: Vec<NodeId>,
    delays: HashMap<NodeId, DelayModel>,
    clamp: FifoClamp<NodeId>,
    rng: StdRng,
    metrics: Metrics,
}

impl Worker {
    fn run(
        mut self,
        clock: WallClock,
        stop: &AtomicBool,
        rendezvous: &Rendezvous,
        processed: &AtomicU64,
    ) -> WorkerReturn {
        // If this worker unwinds (a node handler panic), the guard defects
        // from the rendezvous so the other workers do not wait forever.
        let mut guard = RendezvousGuard {
            rendezvous,
            arrived: false,
        };

        while !stop.load(Ordering::SeqCst) {
            let wall_now = Instant::now();
            let sim_now = clock.to_sim(wall_now);

            // Dispatch everything that is due.
            if let Some(pending) = self.pending.pop_due(sim_now) {
                // A node observes its event no earlier than the event's
                // deadline, even if the thread woke early.
                let at = pending.due.max(sim_now);
                let mut ctx = Context::external(at, self.id, &self.neighbours, &mut self.metrics);
                self.node.handle(&mut ctx, pending.event);
                let (outgoing, timers) = ctx.into_harvest();
                processed.fetch_add(1, Ordering::Relaxed);
                for (to, message) in outgoing {
                    let delay = self
                        .delays
                        .get(&to)
                        .unwrap_or_else(|| panic!("no link {} -> {}", self.id, to))
                        .sample(&mut self.rng);
                    let due = self.clamp.clamp(to, at + delay);
                    self.metrics.incr("network.messages");
                    // A send only fails when the destination worker died
                    // mid-phase (a node handler panic); propagate — the
                    // rendezvous guards keep the teardown deadlock-free and
                    // the scope join surfaces the original panic.
                    self.senders[to.index()]
                        .send(Wire {
                            from: self.id,
                            due,
                            message,
                        })
                        .expect("destination worker died mid-phase");
                }
                for (delay, tag) in timers {
                    self.pending.push(at + delay, Incoming::Timer { tag });
                }
                continue;
            }

            // Nothing due: wait for traffic, capped so the stop flag and the
            // next local deadline are honoured.
            let mut wait = MAX_WAIT;
            if let Some(due) = self.pending.next_due() {
                wait = wait.min(clock.to_wall(due).saturating_duration_since(wall_now));
            }
            let wait = wait.max(Duration::from_micros(20));
            match self.inbox.recv_timeout(wait) {
                Ok(wire) => {
                    self.pending.push(
                        wire.due,
                        Incoming::Message {
                            from: wire.from,
                            message: wire.message,
                        },
                    );
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => {
                    // All senders dropped: only possible at teardown.
                    break;
                }
            }
        }

        // After every live worker has arrived here, no thread dispatches any
        // more, so no further sends can happen and draining the inbox below
        // observes the final traffic of the phase.
        drop(self.senders);
        guard.arrived = true;
        rendezvous.arrive_and_wait();
        while let Ok(wire) = self.inbox.try_recv() {
            self.pending.push(
                wire.due,
                Incoming::Message {
                    from: wire.from,
                    message: wire.message,
                },
            );
        }

        WorkerReturn {
            node: self.node,
            pending: self.pending,
            clamp: self.clamp,
            metrics: self.metrics,
        }
    }
}

impl Driver for ThreadedDriver {
    fn add_node(&mut self, node: SystemNode) -> NodeId {
        let id = NodeId::new(self.nodes.len());
        self.nodes.push(Some(node));
        self.neighbours.push(Vec::new());
        self.pending.push(PendingQueue::new());
        id
    }

    fn ensure_link(&mut self, a: NodeId, b: NodeId, delay: DelayModel) -> bool {
        if self.delays.contains_key(&(a, b)) {
            return false;
        }
        self.delays.insert((a, b), delay);
        self.delays.insert((b, a), delay);
        self.neighbours[a.index()].push(b);
        self.neighbours[b.index()].push(a);
        true
    }

    fn schedule_timer(&mut self, node: NodeId, at: SimTime, tag: u64) {
        let due = at.max(self.now);
        self.pending[node.index()].push(due, Incoming::Timer { tag });
    }

    fn now(&self) -> SimTime {
        self.now
    }

    fn step(&mut self) -> bool {
        match self.next_due() {
            Some(due) => {
                let target = due.max(self.now) + SimDuration::from_micros(1);
                self.run_phase(target) > 0
            }
            None => false,
        }
    }

    fn run_until(&mut self, until: SimTime) -> u64 {
        self.run_phase(until)
    }

    fn run_to_idle(&mut self, max_events: u64) -> u64 {
        let mut processed = 0;
        while processed < max_events {
            let Some(due) = self.next_due() else { break };
            // Jump to the next deadline plus a small settling window so
            // cascades of immediate follow-up events drain in one phase.
            let target = due.max(self.now) + SimDuration::from_millis(20);
            processed += self.run_phase(target);
        }
        processed
    }

    fn node(&self, id: NodeId) -> &SystemNode {
        self.nodes[id.index()]
            .as_ref()
            .expect("node parked between phases")
    }

    fn node_mut(&mut self, id: NodeId) -> &mut SystemNode {
        self.nodes[id.index()]
            .as_mut()
            .expect("node parked between phases")
    }

    fn replace_node(&mut self, id: NodeId, node: SystemNode) -> SystemNode {
        self.nodes[id.index()]
            .replace(node)
            .expect("node parked between phases")
    }

    fn node_count(&self) -> usize {
        self.nodes.len()
    }

    fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    fn metrics_mut(&mut self) -> &mut Metrics {
        &mut self.metrics
    }

    fn status(&self) -> rebeca_obs::StatusReport {
        let brokers = self
            .nodes
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| match slot {
                Some(SystemNode::Broker(broker)) => Some(crate::driver_util::broker_status(
                    i as u64,
                    broker,
                    &self.metrics,
                    self.now,
                    broker.machine().generation(),
                    crate::driver_util::in_process_links(broker),
                )),
                _ => None,
            })
            .collect();
        rebeca_obs::StatusReport {
            now_micros: self.now.as_micros(),
            node_count: self.nodes.len() as u64,
            brokers,
            events: Vec::new(),
        }
    }
}

impl std::fmt::Debug for ThreadedDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadedDriver")
            .field("nodes", &self.nodes.len())
            .field("links", &(self.delays.len() / 2))
            .field("now", &self.now)
            .field(
                "pending",
                &self.pending.iter().map(|q| q.len()).sum::<usize>(),
            )
            .finish()
    }
}
