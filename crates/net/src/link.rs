//! The link layer: blocking sockets, one thread per connection direction,
//! self-healing across connection losses.
//!
//! A TCP link between two nodes is made of up to two *directed*
//! connections, each owned by the sending side:
//!
//! * the **writer thread** ([`spawn_writer`]) dials the peer's listen
//!   endpoint (retrying until the peer process is up), sends the
//!   [`Frame::Hello`] handshake, then pumps queued frames onto the socket —
//!   interleaving [`Frame::Heartbeat`]s whenever the link has been idle for
//!   the configured interval.  When the connection breaks it *redials* with
//!   exponential backoff + jitter, replays its unacknowledged frames, and
//!   resumes — frames queued while the link was down are retained, never
//!   dropped.  A companion **ack pump** thread reads the cumulative
//!   [`Frame::Ack`]s the peer writes back and prunes the writer's bounded
//!   resend window; window overflow fails the link loudly
//!   ([`LinkEvent::Failed`]) rather than ever losing a frame silently.
//! * the **reader thread** ([`spawn_reader`]) serves one accepted
//!   connection: it decodes frames off the socket and forwards them as
//!   [`Inbound`] events into the driver's event loop channel, suppressing
//!   duplicate sequence numbers (replays of frames that did arrive before
//!   the crash) and acknowledging progress.  A corrupt stream (checksum
//!   mismatch, unknown tag) closes the connection with a typed error —
//!   never a panic.
//!
//! Epoch fencing makes the `Hello` restart epoch load-bearing: the shared
//! [`LinkRegistry`] records the newest epoch seen per peer node, a reader
//! rejects a `Hello` that regresses it (answering [`Frame::Fenced`]), and
//! established connections from a superseded epoch are torn down — a
//! zombie pre-crash incarnation can never interleave with its successor.
//!
//! TCP guarantees per-connection FIFO, and the resend window replays the
//! unacknowledged suffix in order on the *same* (new) connection, so
//! per-direction FIFO — the link contract of the paper's Section 2.1 —
//! holds across connection generations: driver send order → writer channel
//! order → socket order (replayed prefix first) → reader order (duplicates
//! dropped) → event channel order.

use std::collections::{HashMap, VecDeque};
use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

use rebeca_broker::Message;
use rebeca_sim::{DelayModel, NodeId, SimDuration};

use crate::endpoint::Endpoint;
use crate::wire::{Frame, WireError, FRAME_HEADER_LEN, MAX_FRAME_LEN};

/// How long a reader blocks on the socket before re-checking the shutdown
/// flag.
const READ_POLL: Duration = Duration::from_millis(100);

/// How long the acceptor sleeps between polls of its non-blocking listener.
const ACCEPT_POLL: Duration = Duration::from_millis(10);

/// An event arriving over the network, forwarded into the driver loop.
#[derive(Debug)]
pub(crate) enum Inbound {
    /// A peer introduced itself on a fresh connection.
    Hello {
        /// The dialing node.
        from: NodeId,
        /// The local node the connection feeds.
        to: NodeId,
        /// The dialer's restart epoch.
        epoch: u64,
        /// Where the dialer's process can be dialled back.
        listen: Endpoint,
        /// The link's delay model.
        delay: DelayModel,
    },
    /// A protocol message for a local node.
    Message {
        /// The sending node.
        from: NodeId,
        /// The destination node.
        to: NodeId,
        /// The sender-sampled link delay to apply on top of the transfer.
        delay: SimDuration,
        /// The message.
        message: Message,
    },
    /// A liveness beacon from an identified peer (a heartbeat before the
    /// connection's `Hello` has no sender and is dropped at the reader).
    Heartbeat {
        /// The peer the connection was introduced by.
        from: NodeId,
        /// The peer's restart epoch.
        epoch: u64,
    },
    /// An admin status request; the driver answers by writing a
    /// [`Frame::StatusReport`] straight back onto `reply`.
    Status {
        /// A clone of the requesting connection's stream to answer on.
        reply: TcpStream,
        /// Journal cursor: when set, include events with sequence numbers
        /// strictly greater than this.
        events_after: Option<u64>,
    },
    /// An admin trace request; the driver answers by writing a
    /// [`Frame::TraceReport`] straight back onto `reply`.
    Trace {
        /// A clone of the requesting connection's stream to answer on.
        reply: TcpStream,
        /// Span cursor: when set, include spans with buffer sequence
        /// numbers strictly greater than this.
        spans_after: Option<u64>,
    },
    /// A writer's outbound connection changed state.
    Link {
        /// The peer the writer dials.
        peer: NodeId,
        /// What happened to the connection.
        event: LinkEvent,
    },
    /// A reader rejected (or tore down) a connection whose restart epoch
    /// regressed below the newest epoch seen from that node.
    Stale {
        /// The fenced node.
        from: NodeId,
        /// The stale epoch it presented.
        epoch: u64,
        /// The minimum epoch the registry accepts from it.
        expected: u64,
    },
    /// A reader suppressed a replayed frame it had already received.
    Duplicate {
        /// The sending node.
        from: NodeId,
        /// The duplicate sequence number.
        seq: u64,
    },
    /// An admin [`Frame::LinkDrop`] asked the driver to force-drop its
    /// connections towards `peer` (fault injection).
    AdminDrop {
        /// The peer whose links should be dropped.
        peer: NodeId,
    },
}

/// A state transition of one outbound connection, reported by its writer
/// thread via [`Inbound::Link`].
#[derive(Debug)]
pub(crate) enum LinkEvent {
    /// Dial + handshake succeeded; `resent` unacknowledged frames were
    /// replayed from the resend window (0 on the first connection).
    Up {
        /// Frames replayed from the resend window.
        resent: usize,
    },
    /// An established connection was lost; the writer is redialing.
    Down {
        /// Why the connection dropped.
        reason: String,
    },
    /// One reconnect attempt towards the peer (successful or not).
    Redial {
        /// Lifetime redial attempt count for this link.
        attempt: u64,
    },
    /// The peer fenced this writer's epoch: a newer incarnation of the
    /// local node owns the identity, so the writer exits permanently.
    Fenced {
        /// The minimum epoch the peer accepts.
        expected: u64,
    },
    /// The link failed permanently and loudly (resend window overflow or
    /// an unsplittable oversized frame) — never a silent drop.
    Failed {
        /// Why the link cannot honour its contract any more.
        reason: String,
    },
}

/// A command consumed by a writer thread: an outbound frame from the
/// driver, or feedback from the connection's ack pump.
pub(crate) enum WriterCmd {
    /// Send a protocol frame (sequenced and resend-buffered by the writer).
    Frame(Frame),
    /// The peer acknowledged every sequence number `<= seq`.
    Ack {
        /// Connection generation the ack arrived on (informational:
        /// cumulative acks are monotone, so any generation's ack prunes).
        #[allow(dead_code)]
        generation: u64,
        /// The peer's receive high-water mark.
        seq: u64,
    },
    /// The peer fenced this connection's epoch.
    Fenced {
        /// Connection generation the fence arrived on.
        generation: u64,
        /// The minimum epoch the peer accepts.
        expected: u64,
    },
    /// The connection's read half hit EOF or an error.
    ConnLost {
        /// The generation that died.
        generation: u64,
    },
    /// Force-drop the current connection (admin fault injection); the
    /// writer redials and replays as if the socket had broken.
    Drop,
}

/// Deterministic fault injection for the link layer: drop the connection
/// after a number of data frames have been written, exercising the
/// redial + resend path in tests and benchmarks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPlan {
    /// Restrict the fault to links towards this peer node index
    /// (`None` = every link of the driver).
    pub peer: Option<usize>,
    /// Drop the connection once this many sequenced frames have been
    /// written on the link.
    pub drop_after_frames: u64,
    /// Fire once (`true`) or every `drop_after_frames` frames (`false`).
    pub once: bool,
}

impl FaultPlan {
    /// A one-shot plan: drop every link's connection after `frames`
    /// sequenced frames.
    pub fn drop_after(frames: u64) -> Self {
        Self {
            peer: None,
            drop_after_frames: frames,
            once: true,
        }
    }

    /// Restricts the plan to links towards one peer node index.
    pub fn on_peer(mut self, peer: usize) -> Self {
        self.peer = Some(peer);
        self
    }

    /// Makes the plan recurring: fire every `drop_after_frames` frames.
    pub fn recurring(mut self) -> Self {
        self.once = false;
        self
    }
}

/// The per-connection knob set of one writer thread.
pub(crate) struct LinkConfig {
    /// The peer's listen endpoint to dial.
    pub target: Endpoint,
    /// The peer node the link feeds.
    pub peer: NodeId,
    /// The handshake to (re)send on every fresh connection.
    pub hello: Frame,
    /// Idle interval after which a heartbeat is written.
    pub heartbeat: Duration,
    /// Constant dial cadence for the *first* connection (cluster startup).
    pub dial_retry: Duration,
    /// Backoff cap for redials after a connection loss.
    pub redial_max: Duration,
    /// Maximum unacknowledged frames held for replay; overflow fails the
    /// link loudly.
    pub resend_window: usize,
    /// The local process's restart epoch (stamped on heartbeats).
    pub epoch: u64,
    /// Optional fault injection plan.
    pub fault: Option<FaultPlan>,
}

/// Exponential backoff with deterministic jitter for redial attempt
/// `attempt` (1-based): `base * 2^(attempt-1)` capped at `max`, plus up to
/// 25% jitter derived from `seed` — so a cluster of writers redialing the
/// same crashed peer does not thunder in lockstep.
fn redial_backoff(attempt: u64, base: Duration, max: Duration, seed: u64) -> Duration {
    let base_us = (base.as_micros() as u64).max(1);
    let max_us = (max.as_micros() as u64).max(base_us);
    let shift = (attempt.saturating_sub(1)).min(20) as u32;
    let exp_us = base_us.saturating_mul(1u64 << shift).min(max_us);
    // xorshift64 over (seed, attempt): cheap, deterministic, no rand dep.
    let mut x = (seed ^ attempt.wrapping_mul(0x9E37_79B9_7F4A_7C15)) | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let jitter_bound = exp_us / 4;
    let jitter = if jitter_bound > 0 {
        x % (jitter_bound + 1)
    } else {
        0
    };
    Duration::from_micros(exp_us + jitter)
}

/// Verdict of [`LinkRegistry::admit`].
pub(crate) enum Admit {
    /// The epoch is current (or newer, now recorded); proceed.
    Ok,
    /// The epoch regressed: fence the connection.
    Stale {
        /// The minimum epoch the registry accepts from this node.
        expected: u64,
    },
}

/// Shared per-driver connection bookkeeping: the newest restart epoch seen
/// per peer node (for fencing) and the per-direction receive high-water
/// marks (for duplicate suppression and cumulative acks).  One instance is
/// shared by every reader thread of a driver.
#[derive(Debug, Default)]
pub(crate) struct LinkRegistry {
    inner: Mutex<RegistryInner>,
}

#[derive(Debug, Default)]
struct RegistryInner {
    /// Newest restart epoch seen per peer node index.
    epochs: HashMap<usize, u64>,
    /// Receive high-water mark per `(from, to)` direction.
    recv_high: HashMap<(usize, usize), u64>,
}

impl LinkRegistry {
    /// Judges a `Hello` from node `from` carrying `epoch`.  An epoch newer
    /// than the recorded one resets the node's receive high-water marks:
    /// the successor incarnation restarts its sequence numbers at 1, and
    /// its fresh frames must not be mistaken for the predecessor's
    /// duplicates.
    pub fn admit(&self, from: usize, epoch: u64) -> Admit {
        let mut inner = self.inner.lock().unwrap();
        match inner.epochs.get(&from).copied() {
            Some(known) if epoch < known => Admit::Stale { expected: known },
            Some(known) if epoch > known => {
                inner.epochs.insert(from, epoch);
                inner.recv_high.retain(|(f, _), _| *f != from);
                Admit::Ok
            }
            Some(_) => Admit::Ok,
            None => {
                inner.epochs.insert(from, epoch);
                Admit::Ok
            }
        }
    }

    /// The newest epoch seen from `from` (0 when never heard).
    pub fn current_epoch(&self, from: usize) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .epochs
            .get(&from)
            .copied()
            .unwrap_or(0)
    }

    /// Records `seq` on the `(from, to)` direction.  Returns `true` when
    /// the frame is fresh (forward it) and `false` for a duplicate (drop
    /// it, but still acknowledge).
    pub fn accept_seq(&self, from: usize, to: usize, seq: u64) -> bool {
        let mut inner = self.inner.lock().unwrap();
        let high = inner.recv_high.entry((from, to)).or_insert(0);
        if seq <= *high {
            false
        } else {
            *high = seq;
            true
        }
    }

    /// The receive high-water mark of the `(from, to)` direction.
    pub fn recv_high(&self, from: usize, to: usize) -> u64 {
        self.inner
            .lock()
            .unwrap()
            .recv_high
            .get(&(from, to))
            .copied()
            .unwrap_or(0)
    }
}

/// Spawns the ack pump for one writer connection: it reads the peer's
/// cumulative [`Frame::Ack`]s (and [`Frame::Fenced`] rejections) off the
/// connection's read half and feeds them back into the writer's command
/// channel, tagged with the connection generation.  Exits on EOF, error,
/// fence, or shutdown — reporting [`WriterCmd::ConnLost`] so the writer
/// notices a peer that died silently between writes.
fn spawn_ack_pump(
    stream: TcpStream,
    generation: u64,
    tx: Sender<WriterCmd>,
    shutdown: Arc<AtomicBool>,
) {
    std::thread::spawn(move || {
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let mut stream = stream;
        let mut buf: Vec<u8> = Vec::with_capacity(256);
        let mut chunk = [0u8; 4096];
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            let n = match stream.read(&mut chunk) {
                Ok(0) => {
                    let _ = tx.send(WriterCmd::ConnLost { generation });
                    return;
                }
                Ok(n) => n,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(_) => {
                    let _ = tx.send(WriterCmd::ConnLost { generation });
                    return;
                }
            };
            buf.extend_from_slice(&chunk[..n]);
            let mut consumed = 0;
            loop {
                match Frame::decode_framed(&buf[consumed..]) {
                    Ok((Frame::Ack { seq }, used)) => {
                        consumed += used;
                        if tx.send(WriterCmd::Ack { generation, seq }).is_err() {
                            return;
                        }
                    }
                    Ok((Frame::Fenced { expected }, _)) => {
                        let _ = tx.send(WriterCmd::Fenced {
                            generation,
                            expected,
                        });
                        return;
                    }
                    Ok((_, used)) => consumed += used, // unexpected; ignore
                    Err(WireError::Truncated) => break,
                    Err(_) => {
                        let _ = tx.send(WriterCmd::ConnLost { generation });
                        return;
                    }
                }
            }
            buf.drain(..consumed);
        }
    });
}

/// Spawns the writer thread for one outbound connection: dial (with retry
/// until `shutdown`), handshake with the configured `hello`, replay the
/// resend window, then pump frames from `rx`, heart-beating after idleness.
///
/// On a connection loss the writer reports [`LinkEvent::Down`] and redials
/// with exponential backoff + jitter ([`LinkEvent::Redial`] per attempt),
/// then replays its unacknowledged frames on the fresh connection
/// ([`LinkEvent::Up`] carries the replay count).  The thread exits when the
/// command channel disconnects, `shutdown` is raised, the peer fences its
/// epoch ([`LinkEvent::Fenced`]), or the link fails permanently
/// ([`LinkEvent::Failed`]: resend-window overflow or an unsplittable
/// oversized frame).
///
/// `self_tx` is the sending half of `rx`, handed to each connection's ack
/// pump so peer feedback and driver frames share one ordered queue.
pub(crate) fn spawn_writer(
    cfg: LinkConfig,
    rx: Receiver<WriterCmd>,
    self_tx: Sender<WriterCmd>,
    events: Sender<Inbound>,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let LinkConfig {
            target,
            peer,
            hello,
            heartbeat,
            dial_retry,
            redial_max,
            resend_window,
            epoch,
            fault,
        } = cfg;
        let down = |reason: String| Inbound::Link {
            peer,
            event: LinkEvent::Down { reason },
        };
        let jitter_seed = epoch
            .wrapping_mul(0x1000_0001)
            .wrapping_add(peer.index() as u64);
        let mut fault = fault.filter(|f| f.peer.is_none() || f.peer == Some(peer.index()));
        let mut next_seq: u64 = 1;
        let mut unacked: VecDeque<(u64, Vec<u8>)> = VecDeque::new();
        let mut generation: u64 = 0;
        let mut redials: u64 = 0;
        let mut frames_written: u64 = 0;
        'link: loop {
            // Dial.  The first connection keeps the constant startup
            // cadence (cluster processes come up in arbitrary order); after
            // a loss every attempt is reported and backed off exponentially
            // with jitter, capped at `redial_max`.
            let mut stream = {
                let mut attempt: u64 = 0;
                loop {
                    if shutdown.load(Ordering::SeqCst) {
                        return;
                    }
                    if generation > 0 {
                        attempt += 1;
                        redials += 1;
                        if events
                            .send(Inbound::Link {
                                peer,
                                event: LinkEvent::Redial { attempt: redials },
                            })
                            .is_err()
                        {
                            return;
                        }
                    }
                    match target.socket_addr().and_then(TcpStream::connect) {
                        Ok(stream) => break stream,
                        Err(_) if generation == 0 => std::thread::sleep(dial_retry),
                        Err(_) => std::thread::sleep(redial_backoff(
                            attempt,
                            dial_retry,
                            redial_max,
                            jitter_seed,
                        )),
                    }
                }
            };
            let _ = stream.set_nodelay(true);
            generation += 1;

            // Handshake, then replay the unacknowledged suffix in order —
            // the new connection starts exactly where the old one provably
            // left off, preserving per-direction FIFO.
            let resent = unacked.len();
            let mut wrote = stream.write_all(&hello.encode_framed());
            if wrote.is_ok() {
                for (_, bytes) in &unacked {
                    wrote = stream.write_all(bytes);
                    if wrote.is_err() {
                        break;
                    }
                }
            }
            let pump = wrote
                .is_ok()
                .then(|| stream.try_clone())
                .and_then(Result::ok);
            let Some(pump_stream) = pump else {
                if events
                    .send(down("handshake or replay failed".into()))
                    .is_err()
                {
                    return;
                }
                let _ = stream.shutdown(Shutdown::Both);
                std::thread::sleep(dial_retry);
                continue 'link;
            };
            spawn_ack_pump(pump_stream, generation, self_tx.clone(), shutdown.clone());
            if events
                .send(Inbound::Link {
                    peer,
                    event: LinkEvent::Up { resent },
                })
                .is_err()
            {
                return;
            }

            loop {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let cmd = match rx.recv_timeout(heartbeat) {
                    Ok(cmd) => cmd,
                    Err(RecvTimeoutError::Timeout) => {
                        if let Err(e) =
                            stream.write_all(&Frame::Heartbeat { epoch }.encode_framed())
                        {
                            if events.send(down(format!("heartbeat write: {e}"))).is_err() {
                                return;
                            }
                            let _ = stream.shutdown(Shutdown::Both);
                            continue 'link;
                        }
                        continue;
                    }
                    Err(RecvTimeoutError::Disconnected) => return,
                };
                match cmd {
                    WriterCmd::Ack { seq, .. } => {
                        // Cumulative acks are monotone, so even one from a
                        // dead generation's pump safely prunes the window.
                        while unacked.front().is_some_and(|(s, _)| *s <= seq) {
                            unacked.pop_front();
                        }
                    }
                    WriterCmd::Fenced {
                        generation: g,
                        expected,
                    } if g == generation => {
                        let _ = events.send(Inbound::Link {
                            peer,
                            event: LinkEvent::Fenced { expected },
                        });
                        let _ = stream.shutdown(Shutdown::Both);
                        return;
                    }
                    WriterCmd::Fenced { .. } => {}
                    WriterCmd::ConnLost { generation: g } if g == generation => {
                        if events
                            .send(down("peer closed the connection".into()))
                            .is_err()
                        {
                            return;
                        }
                        let _ = stream.shutdown(Shutdown::Both);
                        continue 'link;
                    }
                    WriterCmd::ConnLost { .. } => {}
                    WriterCmd::Drop => {
                        let _ = stream.shutdown(Shutdown::Both);
                        if events.send(down("admin-injected drop".into())).is_err() {
                            return;
                        }
                        continue 'link;
                    }
                    WriterCmd::Frame(frame) => {
                        // A frame over the receiver's size limit is split
                        // into halves (batch payloads only) until every
                        // piece fits; pieces are sequenced in final order,
                        // so per-direction FIFO — and therefore
                        // exactly-once delivery — is preserved.
                        let mut fresh: Vec<(u64, Vec<u8>)> = Vec::with_capacity(1);
                        let mut worklist = VecDeque::from([frame]);
                        while let Some(frame) = worklist.pop_front() {
                            let (seq, frame) = match frame {
                                Frame::Message {
                                    from,
                                    to,
                                    delay_micros,
                                    seq: _,
                                    message,
                                } => {
                                    let seq = next_seq;
                                    next_seq += 1;
                                    (
                                        seq,
                                        Frame::Message {
                                            from,
                                            to,
                                            delay_micros,
                                            seq,
                                            message,
                                        },
                                    )
                                }
                                other => (0, other),
                            };
                            let bytes = frame.encode_framed();
                            if bytes.len() > MAX_FRAME_LEN as usize + FRAME_HEADER_LEN {
                                match split_frame(frame) {
                                    Some((first, second)) => {
                                        worklist.push_front(second);
                                        worklist.push_front(first);
                                        continue;
                                    }
                                    None => {
                                        // An unsplittable message the peer
                                        // is guaranteed to reject: the link
                                        // cannot honour its error-free
                                        // contract any more — fail it
                                        // loudly rather than silently
                                        // dropping one message.
                                        let _ = events.send(Inbound::Link {
                                            peer,
                                            event: LinkEvent::Failed {
                                                reason: format!(
                                                    "unsplittable frame of {} bytes exceeds \
                                                     the {MAX_FRAME_LEN} payload limit",
                                                    bytes.len()
                                                ),
                                            },
                                        });
                                        return;
                                    }
                                }
                            }
                            fresh.push((seq, bytes));
                        }
                        let mut broke: Option<std::io::Error> = None;
                        for (seq, bytes) in fresh {
                            if broke.is_none() {
                                if let Err(e) = stream.write_all(&bytes) {
                                    broke = Some(e);
                                } else if seq > 0 {
                                    frames_written += 1;
                                }
                            }
                            if seq > 0 {
                                unacked.push_back((seq, bytes));
                            }
                        }
                        if unacked.len() > resend_window {
                            let _ = events.send(Inbound::Link {
                                peer,
                                event: LinkEvent::Failed {
                                    reason: format!(
                                        "resend window overflow: {} unacked frames exceed \
                                         the limit of {resend_window}",
                                        unacked.len()
                                    ),
                                },
                            });
                            let _ = stream.shutdown(Shutdown::Both);
                            return;
                        }
                        if let Some(e) = broke {
                            if events.send(down(format!("write failed: {e}"))).is_err() {
                                return;
                            }
                            let _ = stream.shutdown(Shutdown::Both);
                            continue 'link;
                        }
                        if let Some(plan) = fault {
                            if frames_written >= plan.drop_after_frames {
                                if plan.once {
                                    fault = None;
                                } else {
                                    frames_written = 0;
                                }
                                let _ = stream.shutdown(Shutdown::Both);
                                if events.send(down("fault-injected drop".into())).is_err() {
                                    return;
                                }
                                continue 'link;
                            }
                        }
                    }
                }
            }
        }
    })
}

/// Splits an oversized frame into two halves when its message is a batch
/// (the only unbounded payloads).  `Replay` is deliberately NOT split: the
/// relocation protocol treats one replay message as the complete buffered
/// stream, so halving it would flush the holding merge early.
fn split_frame(frame: Frame) -> Option<(Frame, Frame)> {
    let Frame::Message {
        from,
        to,
        delay_micros,
        seq: _,
        message,
    } = frame
    else {
        return None;
    };
    // Halves are re-sequenced by the writer when they are re-popped, so
    // the placeholder 0 here is never written to a socket.
    let remake = |message: Message| Frame::Message {
        from,
        to,
        delay_micros,
        seq: 0,
        message,
    };
    match message {
        Message::PublishBatch {
            publisher,
            mut notifications,
        } if notifications.len() >= 2 => {
            let tail = notifications.split_off(notifications.len() / 2);
            Some((
                remake(Message::PublishBatch {
                    publisher,
                    notifications,
                }),
                remake(Message::PublishBatch {
                    publisher,
                    notifications: tail,
                }),
            ))
        }
        Message::NotificationBatch(mut envelopes) if envelopes.len() >= 2 => {
            let tail = envelopes.split_off(envelopes.len() / 2);
            Some((
                remake(Message::NotificationBatch(envelopes)),
                remake(Message::NotificationBatch(tail)),
            ))
        }
        Message::DeliverBatch(mut deliveries) if deliveries.len() >= 2 => {
            let tail = deliveries.split_off(deliveries.len() / 2);
            Some((
                remake(Message::DeliverBatch(deliveries)),
                remake(Message::DeliverBatch(tail)),
            ))
        }
        _ => None,
    }
}

/// Spawns the reader thread for one accepted connection: decodes frames
/// and forwards them into `tx`.  Exits on EOF, a corrupt stream, a raised
/// `shutdown`, an epoch fence, or when the driver drops the receiving end.
///
/// Bytes are accumulated in a local buffer and frames decoded off its
/// front, so a read timeout in the *middle* of a frame (slow sender, a
/// large frame spanning many TCP segments) just waits for more bytes — it
/// can never desynchronise the framing boundary.
///
/// The reader enforces the self-healing contract for its direction:
/// sequenced messages are checked against the shared [`LinkRegistry`]
/// (duplicates are suppressed but still acknowledged), one cumulative
/// [`Frame::Ack`] is written back per decoded batch, and a `Hello` whose
/// restart epoch regresses the registry is answered with [`Frame::Fenced`]
/// and the connection closed.  An established connection is torn down the
/// same way as soon as a newer incarnation of its peer introduces itself.
pub(crate) fn spawn_reader(
    stream: TcpStream,
    tx: Sender<Inbound>,
    shutdown: Arc<AtomicBool>,
    registry: Arc<LinkRegistry>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let _ = stream.set_nodelay(true);
        let _ = stream.set_read_timeout(Some(READ_POLL));
        let mut stream = stream;
        let mut buf: Vec<u8> = Vec::with_capacity(4096);
        let mut chunk = [0u8; 16 * 1024];
        // Who is on the other end and with which restart epoch, learned
        // from the connection's Hello — needed to attribute heartbeats and
        // to fence a zombie connection when its peer's epoch is superseded
        // (admin connections never say Hello and stay anonymous).
        let mut conn: Option<(NodeId, u64)> = None;
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            // Zombie fencing: if a newer incarnation of the peer has
            // introduced itself (on any connection of this driver), this
            // pre-crash connection must not interleave with it.
            if let Some((from, epoch)) = conn {
                let current = registry.current_epoch(from.index());
                if current > epoch {
                    let _ = stream.write_all(&Frame::Fenced { expected: current }.encode_framed());
                    let _ = tx.send(Inbound::Stale {
                        from,
                        epoch,
                        expected: current,
                    });
                    let _ = stream.shutdown(Shutdown::Both);
                    return;
                }
            }
            let n = match stream.read(&mut chunk) {
                Ok(0) => return, // EOF
                Ok(n) => n,
                Err(e)
                    if matches!(
                        e.kind(),
                        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                    ) =>
                {
                    continue;
                }
                Err(_) => return, // broken pipe
            };
            buf.extend_from_slice(&chunk[..n]);
            let mut consumed = 0;
            // The direction to acknowledge after this batch, if any
            // sequenced message arrived (duplicates included — the sender
            // prunes its window either way).
            let mut ack_for: Option<(NodeId, NodeId)> = None;
            loop {
                let frame = match Frame::decode_framed(&buf[consumed..]) {
                    Ok((frame, used)) => {
                        consumed += used;
                        frame
                    }
                    Err(WireError::Truncated) => break, // need more bytes
                    Err(e) => {
                        // Corrupt stream: a typed decode error, never a
                        // panic.  Closing the connection is the only safe
                        // reaction — a desynchronised framing boundary
                        // cannot be recovered.
                        eprintln!("rebeca-net: closing corrupt connection: {e}");
                        return;
                    }
                };
                let inbound = match frame {
                    Frame::Hello {
                        from,
                        to,
                        epoch,
                        listen,
                        delay,
                    } => match registry.admit(from.index(), epoch) {
                        Admit::Stale { expected } => {
                            let _ = stream.write_all(&Frame::Fenced { expected }.encode_framed());
                            let _ = tx.send(Inbound::Stale {
                                from,
                                epoch,
                                expected,
                            });
                            let _ = stream.shutdown(Shutdown::Both);
                            return;
                        }
                        Admit::Ok => {
                            conn = Some((from, epoch));
                            Inbound::Hello {
                                from,
                                to,
                                epoch,
                                listen,
                                delay,
                            }
                        }
                    },
                    Frame::Heartbeat { epoch } => match conn {
                        Some((from, _)) => Inbound::Heartbeat { from, epoch },
                        None => continue,
                    },
                    Frame::StatusRequest { events_after } => match stream.try_clone() {
                        Ok(reply) => Inbound::Status {
                            reply,
                            events_after,
                        },
                        Err(e) => {
                            eprintln!("rebeca-net: cannot answer status request: {e}");
                            continue;
                        }
                    },
                    Frame::TraceRequest { spans_after } => match stream.try_clone() {
                        Ok(reply) => Inbound::Trace { reply, spans_after },
                        Err(e) => {
                            eprintln!("rebeca-net: cannot answer trace request: {e}");
                            continue;
                        }
                    },
                    // A report arriving at a serving node is a confused
                    // client; ignore it rather than kill the connection.
                    Frame::StatusReport(_) | Frame::TraceReport(_) => continue,
                    // Writer-side control frames have no business on a
                    // serving connection; ignore them likewise.
                    Frame::Ack { .. } | Frame::Fenced { .. } => continue,
                    Frame::LinkDrop { peer } => Inbound::AdminDrop { peer },
                    Frame::Message {
                        from,
                        to,
                        delay_micros,
                        seq,
                        message,
                    } => {
                        if seq > 0 {
                            ack_for = Some((from, to));
                            if !registry.accept_seq(from.index(), to.index(), seq) {
                                // A replay of a frame that did arrive
                                // before the reconnect: suppress it, but
                                // report it so the driver can count it.
                                if tx.send(Inbound::Duplicate { from, seq }).is_err() {
                                    return;
                                }
                                continue;
                            }
                        }
                        Inbound::Message {
                            from,
                            to,
                            delay: SimDuration::from_micros(delay_micros),
                            message,
                        }
                    }
                };
                if tx.send(inbound).is_err() {
                    return; // driver gone
                }
            }
            if let Some((from, to)) = ack_for {
                let high = registry.recv_high(from.index(), to.index());
                // An ack write failure is not fatal here: if the
                // connection is dying the read path notices next.
                let _ = stream.write_all(&Frame::Ack { seq: high }.encode_framed());
            }
            buf.drain(..consumed);
        }
    })
}

/// Spawns the accept loop: every inbound connection gets its own reader
/// thread sharing the driver's [`LinkRegistry`].  Exits when `shutdown` is
/// raised (the driver wakes the loop by dialling its own listener once).
pub(crate) fn spawn_acceptor(
    listener: TcpListener,
    tx: Sender<Inbound>,
    shutdown: Arc<AtomicBool>,
    registry: Arc<LinkRegistry>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let _ = listener.set_nonblocking(true);
        loop {
            if shutdown.load(Ordering::SeqCst) {
                return;
            }
            match listener.accept() {
                Ok((stream, _)) => {
                    let _ = stream.set_nonblocking(false);
                    // Readers exit on their own via the shutdown flag (or
                    // the read timeout); no join bookkeeping needed.
                    let _ = spawn_reader(stream, tx.clone(), shutdown.clone(), registry.clone());
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => return,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rebeca_broker::{ClientId, Envelope};
    use rebeca_filter::Notification;
    use std::sync::mpsc::channel;

    fn envelope(seq: u64) -> Envelope {
        Envelope::new(
            ClientId::new(1),
            seq,
            Notification::builder().attr("spot", seq as i64).build(),
        )
    }

    fn frame(message: Message) -> Frame {
        Frame::Message {
            from: NodeId::new(0),
            to: NodeId::new(1),
            delay_micros: 7,
            seq: 0,
            message,
        }
    }

    #[test]
    fn oversized_batches_split_in_order_and_keep_the_route() {
        let whole = frame(Message::NotificationBatch(vec![
            envelope(1),
            envelope(2),
            envelope(3),
        ]));
        let (first, second) = split_frame(whole).expect("batches split");
        match (&first, &second) {
            (
                Frame::Message {
                    from,
                    to,
                    delay_micros,
                    message: Message::NotificationBatch(a),
                    ..
                },
                Frame::Message {
                    message: Message::NotificationBatch(b),
                    ..
                },
            ) => {
                assert_eq!(
                    (*from, *to, *delay_micros),
                    (NodeId::new(0), NodeId::new(1), 7)
                );
                let seqs: Vec<u64> = a.iter().chain(b).map(|e| e.publisher_seq).collect();
                assert_eq!(seqs, vec![1, 2, 3], "halves concatenate to the original");
            }
            other => panic!("unexpected split {other:?}"),
        }
    }

    #[test]
    fn singletons_and_protocol_steps_refuse_to_split() {
        // A one-element batch cannot shrink further.
        assert!(split_frame(frame(Message::NotificationBatch(vec![envelope(1)]))).is_none());
        // Replay is one protocol step: halving it would flush the holding
        // merge early.
        assert!(split_frame(frame(Message::Replay {
            client: ClientId::new(1),
            filter: rebeca_filter::Filter::new(),
            deliveries: Vec::new(),
        }))
        .is_none());
        assert!(split_frame(Frame::Heartbeat { epoch: 1 }).is_none());
    }

    #[test]
    fn redial_backoff_is_exponential_capped_and_jittered_within_bounds() {
        let base = Duration::from_millis(50);
        let max = Duration::from_secs(1);
        for seed in [0u64, 7, 0xDEAD_BEEF] {
            for attempt in 1..=12 {
                let exp_us = (base.as_micros() as u64)
                    .saturating_mul(1 << (attempt - 1).min(20))
                    .min(max.as_micros() as u64);
                let d = redial_backoff(attempt, base, max, seed).as_micros() as u64;
                assert!(
                    d >= exp_us,
                    "attempt {attempt}: {d} below exponential floor"
                );
                assert!(
                    d <= exp_us + exp_us / 4,
                    "attempt {attempt}: {d} above the 25% jitter ceiling"
                );
            }
        }
    }

    #[test]
    fn registry_fences_stale_epochs_and_resets_seqs_on_new_incarnations() {
        let registry = LinkRegistry::default();
        assert!(matches!(registry.admit(0, 0), Admit::Ok));
        assert!(registry.accept_seq(0, 1, 1));
        assert!(registry.accept_seq(0, 1, 2));
        assert!(!registry.accept_seq(0, 1, 2), "replay suppressed");
        // A newer incarnation resets the node's receive high-water marks…
        assert!(matches!(registry.admit(0, 1), Admit::Ok));
        assert!(
            registry.accept_seq(0, 1, 1),
            "the successor's fresh seq 1 is not its predecessor's duplicate"
        );
        // …and the predecessor's epoch is fenced from then on.
        match registry.admit(0, 0) {
            Admit::Stale { expected } => assert_eq!(expected, 1),
            Admit::Ok => panic!("stale epoch admitted"),
        }
        assert_eq!(registry.current_epoch(0), 1);
    }

    #[test]
    fn resend_window_overflow_fails_the_link_loudly() {
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
        let port = listener.local_addr().unwrap().port();
        let (cmd_tx, cmd_rx) = channel();
        let (ev_tx, ev_rx) = channel();
        let shutdown = Arc::new(AtomicBool::new(false));
        let cfg = LinkConfig {
            target: Endpoint::new("127.0.0.1", port),
            peer: NodeId::new(1),
            hello: Frame::Hello {
                from: NodeId::new(0),
                to: NodeId::new(1),
                epoch: 0,
                listen: Endpoint::new("127.0.0.1", 1),
                delay: DelayModel::Constant(0),
            },
            heartbeat: Duration::from_secs(5),
            dial_retry: Duration::from_millis(10),
            redial_max: Duration::from_millis(100),
            resend_window: 4,
            epoch: 0,
            fault: None,
        };
        let handle = spawn_writer(cfg, cmd_rx, cmd_tx.clone(), ev_tx, shutdown.clone());
        // Accept the connection but never acknowledge anything.
        let (_conn, _) = listener.accept().expect("accept");
        for i in 0..6u32 {
            cmd_tx
                .send(WriterCmd::Frame(frame(Message::Attach {
                    client: ClientId::new(i),
                })))
                .expect("queue frame");
        }
        let mut saw_up = false;
        loop {
            match ev_rx.recv_timeout(Duration::from_secs(10)) {
                Ok(Inbound::Link {
                    event: LinkEvent::Up { resent },
                    ..
                }) => {
                    assert_eq!(resent, 0, "first connection replays nothing");
                    saw_up = true;
                }
                Ok(Inbound::Link {
                    event: LinkEvent::Failed { reason },
                    ..
                }) => {
                    assert!(
                        reason.contains("resend window overflow"),
                        "unexpected failure: {reason}"
                    );
                    break;
                }
                Ok(_) => {}
                Err(e) => panic!("no loud failure before timeout: {e}"),
            }
        }
        assert!(saw_up, "the link came up before overflowing");
        shutdown.store(true, Ordering::SeqCst);
        drop(cmd_tx);
        let _ = handle.join();
    }
}
