//! Experiment harness for the Rebeca mobility reproduction.
//!
//! One module per group of paper artefacts:
//!
//! * [`tables`] — Tables 1–4 (deterministic `ploc` / adaptivity outputs);
//! * [`scenarios`] — reusable simulation scenarios (the Figure 5 relocation
//!   setting and the logical-mobility line setting);
//! * [`figures`] — Figures 2, 3, 5 and 9.
//!
//! The `exp_*` binaries in `src/bin/` print each artefact in the same layout
//! as the paper; the Criterion benches in `benches/` measure the hot paths
//! (filter matching, covering, routing-table updates, `ploc`, relocation) and
//! run scaled-down versions of the experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
pub mod scenarios;
pub mod tables;
pub mod workload;
